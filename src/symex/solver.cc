#include "src/symex/solver.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <set>
#include <unordered_map>

#include "src/support/env.h"
#include "src/support/trace.h"

namespace overify {

namespace {

const char* KindName(ExprKind k) {
  switch (k) {
    case ExprKind::kConstant: return "const";
    case ExprKind::kSymbol: return "sym";
    case ExprKind::kAdd: return "add";
    case ExprKind::kSub: return "sub";
    case ExprKind::kMul: return "mul";
    case ExprKind::kUDiv: return "udiv";
    case ExprKind::kSDiv: return "sdiv";
    case ExprKind::kURem: return "urem";
    case ExprKind::kSRem: return "srem";
    case ExprKind::kAnd: return "and";
    case ExprKind::kOr: return "or";
    case ExprKind::kXor: return "xor";
    case ExprKind::kShl: return "shl";
    case ExprKind::kLShr: return "lshr";
    case ExprKind::kAShr: return "ashr";
    case ExprKind::kEq: return "eq";
    case ExprKind::kUlt: return "ult";
    case ExprKind::kUle: return "ule";
    case ExprKind::kSlt: return "slt";
    case ExprKind::kSle: return "sle";
    case ExprKind::kSelect: return "select";
    case ExprKind::kZExt: return "zext";
    case ExprKind::kSExt: return "sext";
    case ExprKind::kTrunc: return "trunc";
    case ExprKind::kExtract: return "extract";
    case ExprKind::kConcat: return "concat";
  }
  return "?";
}

void DumpExpr(const Expr* e, int depth) {
  if (depth > 14) { std::fprintf(stderr, "..."); return; }
  if (e->kind() == ExprKind::kConstant) {
    std::fprintf(stderr, "%llu:w%u", (unsigned long long)e->constant_value(), e->width());
    return;
  }
  if (e->kind() == ExprKind::kSymbol) {
    std::fprintf(stderr, "s%u", e->symbol_index());
    return;
  }
  std::fprintf(stderr, "(%s:w%u", KindName(e->kind()), e->width());
  for (const Expr* child : {e->a(), e->b(), e->c()}) {
    if (child != nullptr) {
      std::fprintf(stderr, " ");
      DumpExpr(child, depth + 1);
    }
  }
  if (e->kind() == ExprKind::kExtract) std::fprintf(stderr, " @%u", e->extract_offset());
  std::fprintf(stderr, ")");
}

// Value ordering for the core search: likely-satisfying bytes first (string
// terminators, letters, separators), then everything else. This is the
// solver-side analogue of KLEE trying the all-zero assignment first. The
// per-level candidate lists are this order filtered through the level's
// domain, with the domain endpoints hoisted to the front.
const std::vector<uint8_t>& CandidateOrder() {
  static const std::vector<uint8_t>* kOrder = [] {
    auto* order = new std::vector<uint8_t>();
    const uint8_t preferred[] = {0, 'a', ' ', '0', 'z', 'A', '\n', '\t', 1, 255, '9', '-', '.'};
    std::set<uint8_t> seen;
    for (uint8_t v : preferred) {
      if (seen.insert(v).second) {
        order->push_back(v);
      }
    }
    for (int v = 0; v < 256; ++v) {
      if (seen.insert(static_cast<uint8_t>(v)).second) {
        order->push_back(static_cast<uint8_t>(v));
      }
    }
    return order;
  }();
  return *kOrder;
}

// 256-bit per-symbol domain: bit v set means byte value v is still
// admissible at that decision level.
struct Domain {
  uint64_t w[4];

  static Domain Full() { return Domain{{~uint64_t{0}, ~uint64_t{0}, ~uint64_t{0}, ~uint64_t{0}}}; }
  static Domain None() { return Domain{{0, 0, 0, 0}}; }
  bool Test(uint8_t v) const { return (w[v >> 6] >> (v & 63)) & 1; }
  void Set(uint8_t v) { w[v >> 6] |= uint64_t{1} << (v & 63); }
  void Clear(uint8_t v) { w[v >> 6] &= ~(uint64_t{1} << (v & 63)); }
  void IntersectWith(const Domain& o) {
    w[0] &= o.w[0];
    w[1] &= o.w[1];
    w[2] &= o.w[2];
    w[3] &= o.w[3];
  }
  bool Equals(const Domain& o) const {
    return w[0] == o.w[0] && w[1] == o.w[1] && w[2] == o.w[2] && w[3] == o.w[3];
  }
  bool Empty() const { return (w[0] | w[1] | w[2] | w[3]) == 0; }
  size_t Count() const {
    return static_cast<size_t>(__builtin_popcountll(w[0]) + __builtin_popcountll(w[1]) +
                               __builtin_popcountll(w[2]) + __builtin_popcountll(w[3]));
  }
  // Lowest / highest admissible value; Empty() must be false.
  uint8_t Lo() const {
    for (int i = 0; i < 4; ++i) {
      if (w[i] != 0) {
        return static_cast<uint8_t>(i * 64 + __builtin_ctzll(w[i]));
      }
    }
    return 0;
  }
  uint8_t Hi() const {
    for (int i = 3; i >= 0; --i) {
      if (w[i] != 0) {
        return static_cast<uint8_t>(i * 64 + 63 - __builtin_clzll(w[i]));
      }
    }
    return 0;
  }
  // Intersects with the unsigned interval [lo, hi].
  void ClampTo(uint64_t lo, uint64_t hi) {
    for (unsigned v = 0; v < 256; ++v) {
      if (v < lo || v > hi) {
        Clear(static_cast<uint8_t>(v));
      }
    }
  }
};

// The Luby restart sequence 1,1,2,1,1,2,4,... (i is 0-indexed).
uint64_t LubyUnit(uint64_t i) {
  ++i;
  uint64_t size = 1;
  uint64_t seq = 0;
  while (size < i + 1) {
    ++seq;
    size = 2 * size + 1;
  }
  while (size - 1 != i) {
    size = (size - 1) >> 1;
    --seq;
    i %= size;
  }
  return uint64_t{1} << seq;
}

// A stored nogood in decision-level space: "the assignment taking every
// (level, value) literal below cannot extend to a model". Literals ascend
// by level; the clause is bucketed at its deepest literal's level, so it is
// checked exactly when that level is (re)assigned — every shallower literal
// is already assigned there, making the match test a few byte compares.
struct ActiveClause {
  std::vector<std::pair<uint32_t, uint8_t>> lits;  // (level, value), ascending
  uint64_t mask = 0;                               // 1 << level per literal
  double activity = 1.0;
};

}  // namespace

CdclConfig CdclConfigFromEnv() {
  // Strict parsing (src/support/env.h): a mistyped sweep value used to be
  // silently treated as 0 or partially parsed, which ran a *different*
  // parameter point than the CI matrix claimed. Now anything that is not a
  // complete in-range literal keeps the compiled-in default and reports a
  // structured diagnostic.
  CdclConfig config;
  uint64_t v = 0;
  EnvParse parse = ParseEnvUint64("OVERIFY_CDCL_RESTART_BASE", 1, uint64_t{1} << 32, &v);
  if (parse.ok) {
    config.restart_base = v;
  }
  ReportEnvError(parse);
  double decay = 0;
  parse = ParseEnvDouble("OVERIFY_CDCL_DECAY", 1e-6, 1.0, &decay);
  if (parse.ok) {
    config.activity_decay = decay;
  }
  ReportEnvError(parse);
  parse = ParseEnvUint64("OVERIFY_CDCL_CLAUSES", 1, uint64_t{1} << 24, &v);
  if (parse.ok) {
    config.clause_capacity = static_cast<size_t>(v);
  }
  ReportEnvError(parse);
  return config;
}

SatResult CoreSolver::CheckSat(ExprContext& ctx, const std::vector<const Expr*>& constraints,
                               std::vector<uint8_t>* model, uint64_t candidate_budget,
                               const QueryControl* control, UnknownCause* cause,
                               const SearchExtras* extras) {
  if (cause != nullptr) {
    *cause = UnknownCause::kNone;
  }
  // Interrupt sources, resolved once per query. The candidate loop polls
  // them every 4096 candidates — cheap against the per-candidate evaluation
  // cost, fine-grained against any realistic deadline, and the reason a
  // single pathological search can no longer overshoot the run deadline by
  // its full candidate budget.
  using Clock = std::chrono::steady_clock;
  const bool has_run_deadline = control != nullptr && control->has_deadline;
  const std::atomic<bool>* cancel = control != nullptr ? control->cancel : nullptr;
  bool has_query_deadline = false;
  Clock::time_point query_deadline{};
  if (control != nullptr && control->query_seconds > 0) {
    has_query_deadline = true;
    query_deadline = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                        std::chrono::duration<double>(control->query_seconds));
  }
  const bool polled = has_run_deadline || has_query_deadline || cancel != nullptr;

  // Trivial screening and support collection (bitmask union per constraint).
  SupportSet support;
  std::vector<const Expr*> live;
  for (const Expr* c : constraints) {
    if (c->IsConstant()) {
      if (c->constant_value() == 0) {
        return SatResult::kUnsat;
      }
      continue;
    }
    live.push_back(c);
    support.UnionWith(c->Support());
  }
  if (live.empty()) {
    if (model != nullptr) {
      model->clear();
    }
    return SatResult::kSat;
  }

  std::vector<unsigned> order;
  order.reserve(support.Size());
  support.ForEach([&](unsigned sym) { order.push_back(sym); });
  unsigned max_symbol = support.MaxSymbol();
  // Conflict-directed backjumping and clause learning use per-level
  // position masks; fall back to chronological, learning-free behaviour for
  // absurdly wide queries. Domain pruning and value ordering apply always.
  const bool use_cbj = order.size() <= 64;
  const bool learn = config_.learning && use_cbj;

  // Symbol index -> decision level.
  std::vector<int32_t> level_of(max_symbol + 1, -1);
  for (size_t i = 0; i < order.size(); ++i) {
    level_of[order[i]] = static_cast<int32_t>(i);
  }

  // Per level: constraints (as indices into `live`) that become fully
  // determined there, constraints that merely touch the prefix (interval
  // pruning), and each constraint's support expressed as a mask of levels.
  // Unary constraints (single-symbol support) are swept into the level's
  // domain below and never enter the search itself.
  std::vector<std::vector<size_t>> ready_at(order.size());
  std::vector<std::vector<size_t>> touched_at(order.size());
  std::vector<uint64_t> level_mask(live.size(), 0);
  std::vector<size_t> unary;  // indices into `live` with single-symbol support
  // Forward-checking geometry (derived-domains mode, below): each non-unary
  // constraint is watched at its second-deepest support level — once the
  // search assigns that level, exactly one support symbol is still free.
  std::vector<size_t> ci_last(live.size(), 0);
  std::vector<std::vector<size_t>> fc_at(order.size());
  for (size_t ci = 0; ci < live.size(); ++ci) {
    if (live[ci]->Support().Size() == 1) {
      unary.push_back(ci);
      continue;
    }
    size_t last = 0;
    size_t first = order.size();
    int64_t penult = -1;
    uint64_t mask = 0;
    live[ci]->Support().ForEach([&](unsigned sym) {
      size_t pos = static_cast<size_t>(level_of[sym]);
      if (first != order.size()) {
        penult = static_cast<int64_t>(last);  // ForEach ascends: previous deepest
      }
      last = std::max(last, pos);
      first = std::min(first, pos);
      if (use_cbj) {
        mask |= uint64_t{1} << pos;
      }
    });
    level_mask[ci] = mask;
    ci_last[ci] = last;
    fc_at[static_cast<size_t>(penult)].push_back(ci);
    ready_at[last].push_back(ci);
    for (size_t i = first; i < last; ++i) {
      touched_at[i].push_back(ci);
    }
  }

  std::vector<uint8_t> assignment(max_symbol + 1, 0);
  std::vector<bool> assigned(max_symbol + 1, false);
  uint64_t budget = candidate_budget;

  auto give_up = [&](UnknownCause why) {
    if (cause != nullptr) {
      *cause = why;
    }
    return SatResult::kUnknown;
  };

  // Cooperative deadline/cancel check, shared by every candidate-consuming
  // loop (main enumeration, derive sweep, forward checking). kNone = keep
  // going.
  auto poll_expired = [&]() -> UnknownCause {
    if (cancel != nullptr && cancel->load(std::memory_order_relaxed)) {
      return UnknownCause::kCancelled;
    }
    if (has_run_deadline || has_query_deadline) {
      const Clock::time_point now = Clock::now();
      if (has_run_deadline && now >= control->deadline) {
        return UnknownCause::kDeadline;
      }
      if (has_query_deadline && now >= query_deadline) {
        return UnknownCause::kQueryTimeout;
      }
    }
    return UnknownCause::kNone;
  };

  // ---- Per-symbol domains ----
  //
  // domain[l] holds the byte values still admissible at level l, seeded
  // from the caller's range facts, narrowed by a 256-round sweep of the
  // unary constraints (one evaluation generation per value), and further
  // strengthened mid-search by single-literal nogoods. Everything excised
  // here is provably in no model of the constraint set, so domain pruning
  // never changes a verdict — only the enumeration the search still owes.
  std::vector<Domain> domain(order.size(), Domain::Full());
  if (extras != nullptr && extras->ranges != nullptr) {
    for (size_t l = 0; l < order.size(); ++l) {
      unsigned sym = order[l];
      if (sym < extras->ranges->size()) {
        const UInterval r = (*extras->ranges)[sym];
        if (r.lo > 255) {
          return SatResult::kUnsat;
        }
        if (r.lo > 0 || r.hi < 255) {
          domain[l].ClampTo(r.lo, r.hi);
        }
      }
    }
  }
  if (!unary.empty()) {
    for (unsigned v = 0; v < 256; ++v) {
      std::fill(assignment.begin(), assignment.end(), static_cast<uint8_t>(v));
      ctx.NewEvaluation();
      for (size_t ci : unary) {
        unsigned sym = 0;
        live[ci]->Support().ForEach([&](unsigned s) { sym = s; });
        Domain& d = domain[static_cast<size_t>(level_of[sym])];
        if (!d.Test(static_cast<uint8_t>(v))) {
          continue;  // already excluded: skip the evaluation
        }
        if (budget == 0) {
          return give_up(UnknownCause::kCandidateBudget);
        }
        --budget;
        ++candidates_tried_;
        if (ctx.Evaluate(live[ci], assignment) == 0) {
          d.Clear(static_cast<uint8_t>(v));
        }
      }
    }
    std::fill(assignment.begin(), assignment.end(), 0);
  }
  for (const Domain& d : domain) {
    if (d.Empty()) {
      return SatResult::kUnsat;
    }
  }

  // ---- Clause store ----
  //
  // Learned nogoods in level space, bucketed by their deepest literal's
  // level. Single-literal seeds fold straight into the domains (before
  // value ordering, so endpoints reflect them); wider seeds enter the
  // store. Seeds come from PrefixCache entries over subsets of this
  // constraint set, so every one of them is valid here.
  std::vector<ActiveClause> store;
  std::vector<std::vector<uint32_t>> clauses_at(order.size());
  if (learn && extras != nullptr && extras->seeds != nullptr) {
    for (const LearnedClause* seed : *extras->seeds) {
      if (seed->lits.size() != 1) {
        continue;
      }
      unsigned sym = seed->lits[0].first;
      if (sym > max_symbol || level_of[sym] < 0) {
        continue;
      }
      domain[static_cast<size_t>(level_of[sym])].Clear(seed->lits[0].second);
    }
    for (const Domain& d : domain) {
      if (d.Empty()) {
        return SatResult::kUnsat;
      }
    }
  }

  // ---- Value ordering ----
  //
  // Domain endpoints first (range checks make the extremes the likeliest
  // witnesses and the fastest refuters), then the global preference order
  // filtered through the domain. A pure function of the constraint set plus
  // its implied range facts — never of query history — so the model the
  // search returns is too (docs/solver.md#determinism).
  std::vector<std::vector<uint8_t>> values(order.size());
  auto build_values = [&]() {
    for (size_t l = 0; l < order.size(); ++l) {
      const Domain& d = domain[l];
      std::vector<uint8_t>& vals = values[l];
      vals.clear();
      vals.reserve(d.Count());
      const uint8_t lo = d.Lo();
      const uint8_t hi = d.Hi();
      vals.push_back(lo);
      if (hi != lo) {
        vals.push_back(hi);
      }
      for (uint8_t v : CandidateOrder()) {
        if (v != lo && v != hi && d.Test(v)) {
          vals.push_back(v);
        }
      }
    }
  };
  build_values();

  const bool debug = std::getenv("OVERIFY_SOLVER_DEBUG") != nullptr;
  const uint64_t candidates_at_entry = candidates_tried_;
  if (debug) {
    std::fprintf(stderr, "[solver] query: %zu constraints (%zu unary), %zu levels, domains:",
                 live.size(), unary.size(), order.size());
    for (size_t l = 0; l < order.size(); ++l) {
      std::fprintf(stderr, " s%u=%zu", order[l], domain[l].Count());
    }
    std::fprintf(stderr, "\n");
  }

  if (learn && extras != nullptr && extras->seeds != nullptr) {
    std::set<std::vector<std::pair<uint32_t, uint8_t>>> seen;
    for (const LearnedClause* seed : *extras->seeds) {
      if (seed->lits.size() < 2 || seed->lits.size() > config_.max_clause_literals) {
        continue;
      }
      std::vector<std::pair<uint32_t, uint8_t>> lits;
      uint64_t mask = 0;
      bool usable = true;
      for (const auto& [sym, value] : seed->lits) {
        if (sym > max_symbol || level_of[sym] < 0) {
          usable = false;  // mentions a symbol outside this query
          break;
        }
        uint32_t level = static_cast<uint32_t>(level_of[sym]);
        if (!domain[level].Test(value)) {
          usable = false;  // can never fire: the value is domain-excluded
          break;
        }
        lits.emplace_back(level, value);
        mask |= uint64_t{1} << level;
      }
      if (!usable) {
        continue;
      }
      std::sort(lits.begin(), lits.end());
      if (!seen.insert(lits).second) {
        continue;  // duplicate across seed entries
      }
      uint32_t deepest = lits.back().first;
      store.push_back(ActiveClause{std::move(lits), mask, seed->activity});
      clauses_at[deepest].push_back(static_cast<uint32_t>(store.size() - 1));
    }
  }

  // Search-derived single-literal nogoods in symbol space, kept for export
  // (they re-enter future queries as domain clears). Bounded.
  std::vector<std::pair<uint16_t, uint8_t>> cleared;
  uint64_t domain_clears_since_restart = 0;
  auto clear_domain = [&](size_t level, uint8_t v) {
    domain[level].Clear(v);
    ++domain_clears_since_restart;
    if (learn && order[level] <= 0xffff && cleared.size() < 32) {
      cleared.emplace_back(static_cast<uint16_t>(order[level]), v);
    }
  };

  std::vector<size_t> candidate_index(order.size(), 0);
  // Levels (strictly below the key) implicated in failures at each level.
  std::vector<uint64_t> conflict_mask(order.size(), 0);

  // ---- Derived domains + forward checking (docs/solver.md#domains) ----
  //
  // Most queries die in a few hundred candidates; for those, plain
  // enumeration with interval pruning is the cheapest thing we can do. A
  // query that burns through kDeriveTrigger candidates has left that regime,
  // and the search switches on two stronger devices, both pure functions of
  // the constraint set plus the standing prefix (so verdict and first model
  // are invariant — they only skip non-models):
  //
  //  * a one-shot abstract sweep that pins each level to each remaining
  //    value (other levels at their domain hulls) and interval-refutes it
  //    against the multi-symbol constraints — exclusions are unconditional,
  //    land in the global domains, and survive restarts;
  //  * forward checking: when a constraint's second-deepest support level is
  //    assigned, its one remaining free level is swept concretely, once per
  //    prefix instead of once per candidate. Survivors narrow a scoped
  //    overlay, undone LIFO as the search unwinds; the blame mask behind
  //    each exclusion is kept so exhaustion of the swept level still names
  //    the right backjump target.
  constexpr uint64_t kDeriveTrigger = 4096;
  bool derived = false;
  std::vector<Domain> scoped;      // per-level prefix-conditional exclusions
  std::vector<uint64_t> fc_blame;  // blame masks behind scoped exclusions
  struct ScopedUndo {
    uint32_t level;
    Domain saved;
    uint64_t saved_blame;
  };
  // undo[d]: snapshots of (scoped, fc_blame) taken before the first
  // forward-checking narrow made while level d's candidate stood.
  std::vector<std::vector<ScopedUndo>> undo;
  // Forward-checking sweep memo, one map per constraint. A sweep's outcome
  // is a pure function of the assigned bytes of the constraint's support
  // below its free level — not of the rest of the prefix — and if-converted
  // code (selects whose condition hangs off one early byte) makes the same
  // sweep recur under thousands of unrelated prefixes. Support minus the
  // free level packs into a uint64 key when it spans at most 8 levels;
  // wider constraints sweep uncached. Entries are capped per constraint so
  // a hostile query cannot hoard memory.
  std::vector<std::unordered_map<uint64_t, Domain>> fc_memo;
  auto restore_scoped = [&](size_t d) {
    if (!derived || undo[d].empty()) {
      return;
    }
    for (size_t k = undo[d].size(); k-- > 0;) {
      scoped[undo[d][k].level] = undo[d][k].saved;
      fc_blame[undo[d][k].level] = undo[d][k].saved_blame;
    }
    undo[d].clear();
  };

  // Restart + activity bookkeeping (learning only).
  uint64_t conflicts_since_restart = 0;
  uint32_t restarts_done = 0;
  uint64_t restart_threshold = LubyUnit(0) * config_.restart_base;
  uint64_t decay_countdown = 128;

  uint64_t debug_conflicts_by_depth[64] = {};
  auto record_conflict = [&](size_t d) {
    if (debug && d < 64) {
      ++debug_conflicts_by_depth[d];
    }
    ++conflicts_;
    ++conflicts_since_restart;
    if (extras != nullptr && extras->metrics != nullptr) {
      extras->metrics->Record(Hist::kCoreConflictDepth, d);
    }
    if (learn && --decay_countdown == 0) {
      decay_countdown = 128;
      for (ActiveClause& c : store) {
        c.activity *= config_.activity_decay;
      }
    }
  };

  // Appends a learned clause, compacting the store to its top-activity half
  // (stable on ties, so the store's evolution is deterministic) when full.
  auto add_clause = [&](std::vector<std::pair<uint32_t, uint8_t>> lits, uint64_t mask) {
    if (store.size() >= config_.clause_capacity) {
      std::vector<uint32_t> by_activity(store.size());
      for (uint32_t i = 0; i < by_activity.size(); ++i) {
        by_activity[i] = i;
      }
      std::stable_sort(by_activity.begin(), by_activity.end(),
                       [&](uint32_t a, uint32_t b) { return store[a].activity > store[b].activity; });
      by_activity.resize(std::max<size_t>(config_.clause_capacity / 2, 1));
      std::sort(by_activity.begin(), by_activity.end());  // keep insertion order
      std::vector<ActiveClause> kept;
      kept.reserve(by_activity.size());
      for (uint32_t i : by_activity) {
        kept.push_back(std::move(store[i]));
      }
      store = std::move(kept);
      for (auto& bucket : clauses_at) {
        bucket.clear();
      }
      for (uint32_t i = 0; i < store.size(); ++i) {
        clauses_at[store[i].lits.back().first].push_back(i);
      }
    }
    uint32_t deepest = lits.back().first;
    store.push_back(ActiveClause{std::move(lits), mask, 1.0});
    clauses_at[deepest].push_back(static_cast<uint32_t>(store.size() - 1));
    ++learned_;
  };

  // Derives a nogood from an evaluation conflict: the failing constraint's
  // assigned support levels plus the value just placed. A single-literal
  // nogood means the value fails under every prefix — fold it into the
  // domain instead of the store.
  auto learn_from_conflict = [&](uint64_t blame, size_t depth_now, uint8_t value) {
    if (!learn) {
      return;
    }
    const uint64_t m = blame | (uint64_t{1} << depth_now);
    const int n = __builtin_popcountll(m);
    if (n == 1) {
      clear_domain(depth_now, value);
      return;
    }
    if (static_cast<size_t>(n) > config_.max_clause_literals) {
      return;
    }
    std::vector<std::pair<uint32_t, uint8_t>> lits;
    lits.reserve(static_cast<size_t>(n));
    uint64_t rest = m;
    while (rest != 0) {
      uint32_t level = static_cast<uint32_t>(__builtin_ctzll(rest));
      rest &= rest - 1;
      lits.emplace_back(level, assignment[order[level]]);
    }
    add_clause(std::move(lits), m);
  };

  // Converts the store's top-activity clauses (and the search-derived
  // domain clears) back to symbol space for the caller's cache entry.
  auto export_learned = [&]() {
    if (!learn || extras == nullptr || extras->learned == nullptr) {
      return;
    }
    std::vector<LearnedClause>& out = *extras->learned;
    out.clear();
    // max_export_clauses bounds the TOTAL export; domain clears prune
    // hardest, so they claim slots first and the store fills the rest.
    for (const auto& [sym, v] : cleared) {
      if (out.size() >= config_.max_export_clauses) {
        break;
      }
      LearnedClause c;
      c.lits.emplace_back(sym, v);
      c.activity = 2.0;
      out.push_back(std::move(c));
    }
    std::vector<uint32_t> by_activity(store.size());
    for (uint32_t i = 0; i < by_activity.size(); ++i) {
      by_activity[i] = i;
    }
    std::stable_sort(by_activity.begin(), by_activity.end(),
                     [&](uint32_t a, uint32_t b) { return store[a].activity > store[b].activity; });
    const size_t remaining = config_.max_export_clauses - out.size();
    const size_t limit = std::min(by_activity.size(), remaining);
    for (size_t i = 0; i < limit; ++i) {
      const ActiveClause& c = store[by_activity[i]];
      LearnedClause exported;
      exported.lits.reserve(c.lits.size());
      bool ok = true;
      for (const auto& [level, v] : c.lits) {
        if (order[level] > 0xffff) {
          ok = false;
          break;
        }
        exported.lits.emplace_back(static_cast<uint16_t>(order[level]), v);
      }
      if (!ok) {
        continue;
      }
      std::sort(exported.lits.begin(), exported.lits.end());
      out.push_back(std::move(exported));
    }
  };

  // The abstract sweep of derived-domains mode. Precondition: no level is
  // assigned (the caller unwinds to the root first), so every exclusion is
  // unconditional. Levels swept later see the tightened hulls of levels
  // swept earlier. Returns kSat to mean "domains derived, carry on"; kUnsat
  // when some level's domain empties; kUnknown (via give_up) on budget or
  // deadline exhaustion.
  auto derive_domains = [&]() -> SatResult {
    std::vector<std::vector<size_t>> multi_at(order.size());
    for (size_t ci = 0; ci < live.size(); ++ci) {
      if (live[ci]->Support().Size() <= 1) {
        continue;
      }
      live[ci]->Support().ForEach([&](unsigned sym) {
        multi_at[static_cast<size_t>(level_of[sym])].push_back(ci);
      });
    }
    std::vector<ExprContext::UInterval> hull(max_symbol + 1,
                                             ExprContext::UInterval{0, 255});
    for (size_t l = 0; l < order.size(); ++l) {
      hull[order[l]] = ExprContext::UInterval{domain[l].Lo(), domain[l].Hi()};
    }
    for (size_t l = 0; l < order.size(); ++l) {
      if (multi_at[l].empty()) {
        continue;
      }
      const unsigned sym = order[l];
      for (unsigned v = 0; v < 256; ++v) {
        if (!domain[l].Test(static_cast<uint8_t>(v))) {
          continue;
        }
        hull[sym] = ExprContext::UInterval{v, v};
        ctx.NewIntervalRound();
        for (size_t ci : multi_at[l]) {
          if (budget == 0) {
            return give_up(UnknownCause::kCandidateBudget);
          }
          --budget;
          ++candidates_tried_;
          if (polled && (budget & 4095) == 0) {
            const UnknownCause why = poll_expired();
            if (why != UnknownCause::kNone) {
              return give_up(why);
            }
          }
          if (ctx.EvalIntervalRanges(live[ci], hull).hi == 0) {
            domain[l].Clear(static_cast<uint8_t>(v));
            break;
          }
        }
      }
      if (domain[l].Empty()) {
        export_learned();
        return SatResult::kUnsat;
      }
      hull[sym] = ExprContext::UInterval{domain[l].Lo(), domain[l].Hi()};
    }
    return SatResult::kSat;
  };

  size_t depth = 0;
  while (true) {
    if (depth == order.size()) {
      if (model != nullptr) {
        *model = assignment;
      }
      export_learned();
      if (debug) {
        std::fprintf(stderr, "[solver] SAT after %llu candidates\n",
                     static_cast<unsigned long long>(candidates_tried_ - candidates_at_entry));
      }
      return SatResult::kSat;
    }
    // Derived-domains trigger (once per query, independent of the learning
    // switch): unwind to the root so the sweep sees no assigned levels,
    // derive, rebuild the value lists over the narrowed domains, and turn on
    // forward checking for the rest of the query. Replaying the unwound
    // prefix costs at most the kDeriveTrigger candidates already spent.
    if (!derived && candidates_tried_ - candidates_at_entry >= kDeriveTrigger) {
      derived = true;
      for (size_t level = 0; level < depth; ++level) {
        candidate_index[level] = 0;
        conflict_mask[level] = 0;
        assigned[order[level]] = false;
      }
      candidate_index[depth] = 0;
      conflict_mask[depth] = 0;
      depth = 0;
      const SatResult swept = derive_domains();
      if (swept != SatResult::kSat) {
        return swept;
      }
      build_values();
      scoped.assign(order.size(), Domain::Full());
      fc_blame.assign(order.size(), 0);
      undo.assign(order.size(), std::vector<ScopedUndo>{});
      fc_memo.assign(live.size(), std::unordered_map<uint64_t, Domain>{});
      continue;
    }
    // Luby-scheduled restart: unwind to the root, keep the clause store and
    // domains. Bounded (max_restarts) so completeness never depends on the
    // schedule; because the value order is untouched and every pruning
    // device only skips non-models, the model eventually returned is the
    // same with or without restarts.
    //
    // The decision order here is fixed (unlike VSIDS-driven CDCL), so a
    // restart from depth N replays the exact walk that reached it,
    // re-refuting every non-domain-pruned candidate — measured as a ~12-20x
    // blowup on hostile UNSAT enumerations (factor). A restart is free
    // precisely when the search is already near the root (the replayed
    // prefix is empty) and useful precisely when single-literal nogoods
    // shrank a domain since the last one (the blame masks it resets were
    // computed against a wider space). So a due restart fires only at
    // depth <= 1 with fresh domain clears; a due-but-unprofitable
    // opportunity is declined by resetting the conflict counter
    // (docs/solver.md#restarts).
    if (learn && depth > 0 && restarts_done < config_.max_restarts &&
        conflicts_since_restart >= restart_threshold &&
        (domain_clears_since_restart == 0 || depth > 1)) {
      conflicts_since_restart = 0;
    }
    if (learn && depth > 0 && restarts_done < config_.max_restarts &&
        conflicts_since_restart >= restart_threshold) {
      domain_clears_since_restart = 0;
      // Deepest-first so a level narrowed at several depths lands back on
      // its oldest (widest) snapshot.
      for (size_t level = depth + 1; level-- > 0;) {
        restore_scoped(level);
      }
      for (size_t level = 0; level < depth; ++level) {
        candidate_index[level] = 0;
        conflict_mask[level] = 0;
        assigned[order[level]] = false;
      }
      candidate_index[depth] = 0;
      conflict_mask[depth] = 0;
      depth = 0;
      conflicts_since_restart = 0;
      ++restarts_;
      ++restarts_done;
      restart_threshold = LubyUnit(restarts_done) * config_.restart_base;
    }
    // About to pick the next candidate at this level: whatever forward
    // checking narrowed while the previous candidate stood no longer holds.
    restore_scoped(depth);
    // Mid-search domain clears (single-literal nogoods) excise values the
    // static candidate list still carries; forward checking excises values
    // under the standing prefix. Skip both here — the blame for scoped
    // exclusions is already parked in fc_blame for the exhaustion mask.
    while (candidate_index[depth] < values[depth].size() &&
           (!domain[depth].Test(values[depth][candidate_index[depth]]) ||
            (derived && !scoped[depth].Test(values[depth][candidate_index[depth]])))) {
      ++candidate_index[depth];
    }
    if (candidate_index[depth] >= values[depth].size()) {
      // Level exhausted: the blame mask is a valid nogood over the levels it
      // names — learn it, then jump to its deepest level (the learned
      // clause's second-highest decision level, counting the exhausted level
      // as highest); reassigning anything in between cannot help. Without
      // CBJ (queries wider than 64 symbols) this is plain chronological
      // backtracking, computed directly — level indices past 63 cannot be
      // expressed as bit masks.
      uint64_t mask = use_cbj ? conflict_mask[depth] : 0;
      if (use_cbj && derived) {
        // Values forward checking excised from this level were skipped
        // without a per-value conflict; their blame joins the nogood here.
        mask |= fc_blame[depth];
      }
      candidate_index[depth] = 0;
      conflict_mask[depth] = 0;
      assigned[order[depth]] = false;
      if (!use_cbj) {
        if (depth == 0) {
          return SatResult::kUnsat;
        }
        --depth;
        continue;
      }
      if (mask == 0) {
        export_learned();
        if (debug) {
          std::fprintf(stderr, "[solver] UNSAT after %llu candidates, conflicts by depth:",
                       static_cast<unsigned long long>(candidates_tried_ - candidates_at_entry));
          for (size_t d = 0; d < order.size() && d < 64; ++d) {
            std::fprintf(stderr, " %llu",
                         static_cast<unsigned long long>(debug_conflicts_by_depth[d]));
          }
          std::fprintf(stderr, "\n");
        }
        return SatResult::kUnsat;
      }
      size_t jump = 63 - static_cast<size_t>(__builtin_clzll(mask));
      if (depth - jump > 1) {
        ++backjumps_;  // non-chronological: at least one level skipped
      }
      if (learn) {
        const int n = __builtin_popcountll(mask);
        if (n == 1) {
          // The jump level's value alone admits no completion: a permanent
          // domain clear, stronger than any stored clause.
          clear_domain(jump, assignment[order[jump]]);
        } else if (static_cast<size_t>(n) <= config_.max_clause_literals) {
          std::vector<std::pair<uint32_t, uint8_t>> lits;
          lits.reserve(static_cast<size_t>(n));
          uint64_t rest = mask;
          while (rest != 0) {
            uint32_t level = static_cast<uint32_t>(__builtin_ctzll(rest));
            rest &= rest - 1;
            lits.emplace_back(level, assignment[order[level]]);
          }
          add_clause(std::move(lits), mask);
        }
      }
      // Merge the remaining blame into the jump target (standard CBJ).
      conflict_mask[jump] |= mask & ~(uint64_t{1} << jump);
      // Deepest-first (LIFO) so multiply-narrowed levels settle on their
      // oldest snapshot; undo[depth] itself was restored at the pick point.
      for (size_t level = depth; level > jump; --level) {
        restore_scoped(level);
      }
      for (size_t level = jump + 1; level < depth; ++level) {
        candidate_index[level] = 0;
        conflict_mask[level] = 0;
        assigned[order[level]] = false;
      }
      depth = jump;
      continue;
    }
    if (budget == 0) {
      if (std::getenv("OVERIFY_SOLVER_DEBUG") != nullptr) {
        std::fprintf(stderr, "[solver] budget exhausted: %zu constraints, %zu symbols\n",
                     live.size(), order.size());
        for (const Expr* c : live) {
          std::fprintf(stderr, "  ");
          DumpExpr(c, 0);
          std::fprintf(stderr, "\n");
        }
      }
      return give_up(UnknownCause::kCandidateBudget);
    }
    --budget;
    ++candidates_tried_;
    if (polled && (budget & 4095) == 0) {
      const UnknownCause why = poll_expired();
      if (why != UnknownCause::kNone) {
        return give_up(why);
      }
    }
    const uint8_t value = values[depth][candidate_index[depth]++];
    assignment[order[depth]] = value;
    assigned[order[depth]] = true;

    // Levels strictly below this one, saturating: depths past 63 only occur
    // with CBJ off (order.size() > 64), where level_mask is all-zero and the
    // blame mask is never consulted — but the shift itself must stay defined.
    const uint64_t below = depth >= 64 ? ~uint64_t{0} : (uint64_t{1} << depth) - 1;
    bool ok = true;
    // Learned-clause consultation before any constraint evaluation: a
    // matching nogood refutes the candidate with a few byte compares. Every
    // clause bucketed here has its deepest literal at this level, so all of
    // its other literals are already assigned.
    if (learn && !clauses_at[depth].empty()) {
      for (uint32_t idx : clauses_at[depth]) {
        ActiveClause& c = store[idx];
        if (c.lits.back().second != value) {
          continue;
        }
        bool match = true;
        for (size_t k = 0; k + 1 < c.lits.size(); ++k) {
          if (assignment[order[c.lits[k].first]] != c.lits[k].second) {
            match = false;
            break;
          }
        }
        if (!match) {
          continue;
        }
        conflict_mask[depth] |= c.mask & below;
        c.activity += 1.0;
        ++learned_hits_;
        record_conflict(depth);
        ok = false;
        break;
      }
    }
    if (ok) {
      // Constraints that just became fully determined.
      ctx.NewEvaluation();
      for (size_t ci : ready_at[depth]) {
        if (ctx.Evaluate(live[ci], assignment) == 0) {
          const uint64_t blame = level_mask[ci] & below;
          conflict_mask[depth] |= blame;
          record_conflict(depth);
          learn_from_conflict(blame, depth, value);
          ok = false;
          break;
        }
      }
      // Interval pruning for partially-determined constraints: a sound
      // over-approximation that already excludes `true` kills every
      // completion of this prefix.
      if (ok && !touched_at[depth].empty()) {
        ctx.NewIntervalRound();
        for (size_t ci : touched_at[depth]) {
          ExprContext::UInterval bound = ctx.EvalInterval(live[ci], assignment, assigned);
          if (bound.hi == 0) {
            const uint64_t blame = level_mask[ci] & below;
            conflict_mask[depth] |= blame;
            record_conflict(depth);
            learn_from_conflict(blame, depth, value);
            ok = false;
            break;
          }
        }
      }
      // Forward checking (derived-domains mode): every constraint watched
      // here has exactly one free support symbol left — its deepest level.
      // Sweep that level's remaining values concretely once, under this
      // prefix, instead of letting every deeper prefix rediscover the same
      // refutations. An emptied level is a conflict right now, blamed on the
      // constraint's assigned support plus whatever already narrowed the
      // level (docs/solver.md#domains).
      if (ok && derived && !fc_at[depth].empty()) {
        for (size_t ci : fc_at[depth]) {
          const size_t fl = ci_last[ci];
          // Levels past 63 only occur with CBJ off, where level_mask is
          // all-zero anyway — but the shift must stay defined.
          const uint64_t fl_bit = fl < 64 ? uint64_t{1} << fl : 0;
          // The sweep's outcome depends only on the assigned support bytes.
          // If some assigned level is OUTSIDE the support, the identical
          // sweep recurs as that level enumerates — memoize it over the
          // canonical value list and amortize. If the support covers the
          // whole prefix the key is unique per prefix: sweep only the
          // scoped view (no 256-value canonical pass), and not even that
          // when the free level is next — enumeration there performs the
          // identical evaluations one candidate at a time.
          const int support_levels = __builtin_popcountll(level_mask[ci]);
          const bool recurs =
              use_cbj && static_cast<size_t>(support_levels - 1) < depth + 1;
          const bool memoize = recurs && support_levels - 1 <= 8;
          if (!memoize && fl == depth + 1) {
            continue;
          }
          const unsigned fsym = order[fl];
          if (memoize) {
            // Key: assigned support bytes, packed ascending by level. The
            // packing is unambiguous because the map is per-constraint.
            uint64_t key = 0;
            uint64_t rest = level_mask[ci] & ~fl_bit;
            while (rest != 0) {
              const uint32_t lvl = static_cast<uint32_t>(__builtin_ctzll(rest));
              rest &= rest - 1;
              key = (key << 8) | assignment[order[lvl]];
            }
            Domain viable_set = Domain::None();
            auto it = fc_memo[ci].find(key);
            if (it != fc_memo[ci].end()) {
              viable_set = it->second;
              // A hit replaces the whole sweep; charge one candidate so the
              // budget still bounds total work.
              if (budget == 0) {
                return give_up(UnknownCause::kCandidateBudget);
              }
              --budget;
              ++candidates_tried_;
            } else {
              // Canonical sweep over the static value list (not the current
              // scoped view) so the result is context-free and cacheable.
              for (uint8_t w : values[fl]) {
                if (budget == 0) {
                  return give_up(UnknownCause::kCandidateBudget);
                }
                --budget;
                ++candidates_tried_;
                if (polled && (budget & 4095) == 0) {
                  const UnknownCause why = poll_expired();
                  if (why != UnknownCause::kNone) {
                    return give_up(why);
                  }
                }
                assignment[fsym] = w;
                ctx.NewEvaluation();
                if (ctx.Evaluate(live[ci], assignment) != 0) {
                  viable_set.Set(w);
                }
              }
              if (fc_memo[ci].size() < 4096) {
                fc_memo[ci].emplace(key, viable_set);
              }
            }
            Domain narrowed = scoped[fl];
            narrowed.IntersectWith(viable_set);
            if (!narrowed.Equals(scoped[fl])) {
              undo[depth].push_back(
                  ScopedUndo{static_cast<uint32_t>(fl), scoped[fl], fc_blame[fl]});
              scoped[fl] = narrowed;
              fc_blame[fl] |= level_mask[ci] & ~fl_bit;
            }
          } else {
            // Unique-key constraint with intermediate levels between here
            // and the free one: sweep just the currently viable values so
            // an empty level is caught before those levels multiply it.
            bool snapshotted = false;
            for (uint8_t w : values[fl]) {
              if (!domain[fl].Test(w) || !scoped[fl].Test(w)) {
                continue;
              }
              if (budget == 0) {
                return give_up(UnknownCause::kCandidateBudget);
              }
              --budget;
              ++candidates_tried_;
              if (polled && (budget & 4095) == 0) {
                const UnknownCause why = poll_expired();
                if (why != UnknownCause::kNone) {
                  return give_up(why);
                }
              }
              assignment[fsym] = w;
              ctx.NewEvaluation();
              if (ctx.Evaluate(live[ci], assignment) == 0) {
                if (!snapshotted) {
                  snapshotted = true;
                  undo[depth].push_back(
                      ScopedUndo{static_cast<uint32_t>(fl), scoped[fl], fc_blame[fl]});
                }
                scoped[fl].Clear(w);
                fc_blame[fl] |= level_mask[ci] & ~fl_bit;
              }
            }
          }
          Domain remaining = domain[fl];
          remaining.IntersectWith(scoped[fl]);
          if (remaining.Empty()) {
            const uint64_t blame = (level_mask[ci] | fc_blame[fl]) & below;
            conflict_mask[depth] |= blame;
            record_conflict(depth);
            learn_from_conflict(blame, depth, value);
            ok = false;
            break;
          }
        }
      }
    }
    if (ok) {
      ++depth;
    } else {
      assigned[order[depth]] = false;
    }
  }
}

namespace {

// Fixpoint of "constraints transitively sharing support with the seed".
// The common shape — at most 64 constraints, all symbols below 64 — runs
// with a taken-bitmask and SupportSet mask ANDs: no allocation at all.
void FilterIndependentInto(const std::vector<const Expr*>& constraints, const Expr* seed,
                           std::vector<const Expr*>& out) {
  out.clear();
  const size_t n = constraints.size();
  SupportSet reachable = seed->Support();
  if (n <= 64) {
    uint64_t taken = 0;
    bool changed = true;
    while (changed) {
      changed = false;
      for (size_t i = 0; i < n; ++i) {
        if ((taken >> i) & 1) {
          continue;
        }
        const SupportSet& support = constraints[i]->Support();
        if (reachable.Intersects(support)) {
          taken |= uint64_t{1} << i;
          reachable.UnionWith(support);
          changed = true;
        }
      }
    }
    for (size_t i = 0; i < n; ++i) {
      if ((taken >> i) & 1) {
        out.push_back(constraints[i]);
      }
    }
    return;
  }
  std::vector<bool> taken(n, false);
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t i = 0; i < n; ++i) {
      if (taken[i]) {
        continue;
      }
      const SupportSet& support = constraints[i]->Support();
      if (reachable.Intersects(support)) {
        taken[i] = true;
        reachable.UnionWith(support);
        changed = true;
      }
    }
  }
  for (size_t i = 0; i < n; ++i) {
    if (taken[i]) {
      out.push_back(constraints[i]);
    }
  }
}

}  // namespace

std::vector<const Expr*> FilterIndependent(const std::vector<const Expr*>& constraints,
                                           const Expr* seed) {
  std::vector<const Expr*> filtered;
  FilterIndependentInto(constraints, seed, filtered);
  return filtered;
}

namespace {

struct SetHash {
  uint64_t key;          // cache index
  uint64_t fingerprint;  // independent confirmation hash
};

// Order-sensitive 64-bit hashes of the canonical (hash-sorted, deduped)
// constraint set. The key folds the structural hash stored on each Expr;
// the fingerprint is the portable content fingerprint
// (src/symex/expr_hash.h), computed structurally with De Bruijn symbol
// numbering. Both are pure functions of the set's structure — the
// fingerprint used to fold Expr::id() (interner creation order), which made
// identical sets from different runs confirm under different fingerprints
// and silently defeated every cross-run cache hit.
SetHash HashConstraintSet(const std::vector<const Expr*>& canonical,
                          PortableHashCache& portable) {
  uint64_t h = HashMix64(0x9e3779b97f4a7c15ULL ^ canonical.size());
  for (const Expr* c : canonical) {
    h = HashMix64(h ^ c->hash());
  }
  return SetHash{h, PortableSetFingerprint(canonical, portable)};
}

}  // namespace

// ---- PrefixCache ----

const PrefixCache::Entry* PrefixCache::FindExact(uint64_t set_hash,
                                                 uint64_t fingerprint) const {
  auto it = exact_.find(set_hash);
  if (it == exact_.end()) {
    return nullptr;
  }
  const Entry& entry = entries_[it->second];
  if (!entry.live || entry.fingerprint != fingerprint) {
    return nullptr;
  }
  return &entry;
}

const PrefixCache::Entry* PrefixCache::FindUnsatSubsetFrom(const Node& node,
                                                           const std::vector<uint64_t>& keys,
                                                           size_t i, size_t& budget) const {
  if (budget == 0) {
    return nullptr;
  }
  --budget;
  if (node.entry >= 0 && entries_[node.entry].result == SatResult::kUnsat) {
    return &entries_[node.entry];  // the path here used only keys of the query
  }
  for (const auto& [key, child] : node.children) {
    if (child->subtree_unsat == 0) {
      continue;
    }
    auto it = std::lower_bound(keys.begin() + i, keys.end(), key);
    if (it == keys.end()) {
      break;  // children are ascending: nothing further can match
    }
    if (*it != key) {
      continue;
    }
    if (const Entry* found = FindUnsatSubsetFrom(
            *child, keys, static_cast<size_t>(it - keys.begin()) + 1, budget)) {
      return found;
    }
  }
  return nullptr;
}

const PrefixCache::Entry* PrefixCache::FindUnsatSubset(
    const std::vector<uint64_t>& keys) const {
  size_t budget = kSearchBudget;
  return FindUnsatSubsetFrom(root_, keys, 0, budget);
}

const PrefixCache::Entry* PrefixCache::FindAnySat(const Node& node, size_t& budget) const {
  if (budget == 0) {
    return nullptr;
  }
  --budget;
  if (node.entry >= 0 && entries_[node.entry].result == SatResult::kSat) {
    return &entries_[node.entry];
  }
  for (const auto& [key, child] : node.children) {
    (void)key;
    if (child->subtree_sat == 0) {
      continue;
    }
    if (const Entry* found = FindAnySat(*child, budget)) {
      return found;
    }
  }
  return nullptr;
}

const PrefixCache::Entry* PrefixCache::FindSatSupersetFrom(const Node& node,
                                                           const std::vector<uint64_t>& keys,
                                                           size_t i, size_t& budget) const {
  if (budget == 0 || node.subtree_sat == 0) {
    return nullptr;
  }
  --budget;
  if (i == keys.size()) {
    // Every query key matched along the way down: any SAT entry below is a
    // superset.
    return FindAnySat(node, budget);
  }
  for (const auto& [key, child] : node.children) {
    if (key > keys[i]) {
      break;  // a superset must contain keys[i]; larger keys skipped it
    }
    const Entry* found = key == keys[i]
                             ? FindSatSupersetFrom(*child, keys, i + 1, budget)
                             : FindSatSupersetFrom(*child, keys, i, budget);
    if (found != nullptr) {
      return found;
    }
  }
  return nullptr;
}

const PrefixCache::Entry* PrefixCache::FindSatSuperset(
    const std::vector<uint64_t>& keys) const {
  size_t budget = kSearchBudget;
  return FindSatSupersetFrom(root_, keys, 0, budget);
}

void PrefixCache::CollectSatSubsetsFrom(const Node& node, const std::vector<uint64_t>& keys,
                                        size_t i, size_t limit, size_t& budget,
                                        std::vector<const Entry*>& out) const {
  if (budget == 0 || out.size() >= limit) {
    return;
  }
  --budget;
  if (node.entry >= 0 && entries_[node.entry].result == SatResult::kSat &&
      !entries_[node.entry].keys.empty()) {
    out.push_back(&entries_[node.entry]);
    if (out.size() >= limit) {
      return;
    }
  }
  for (const auto& [key, child] : node.children) {
    if (child->subtree_sat == 0) {
      continue;
    }
    auto it = std::lower_bound(keys.begin() + i, keys.end(), key);
    if (it == keys.end()) {
      break;
    }
    if (*it != key) {
      continue;
    }
    CollectSatSubsetsFrom(*child, keys, static_cast<size_t>(it - keys.begin()) + 1, limit,
                          budget, out);
    if (out.size() >= limit) {
      return;
    }
  }
}

void PrefixCache::CollectSatSubsets(const std::vector<uint64_t>& keys, size_t limit,
                                    std::vector<const Entry*>& out) const {
  size_t budget = kSearchBudget;
  CollectSatSubsetsFrom(root_, keys, 0, limit, budget, out);
}

void PrefixCache::RemoveFrom(Node& node, const std::vector<uint64_t>& keys, size_t i,
                             bool sat) {
  if (sat) {
    --node.subtree_sat;
  } else {
    --node.subtree_unsat;
  }
  if (i == keys.size()) {
    node.entry = -1;
    return;
  }
  auto it = node.children.find(keys[i]);
  OVERIFY_ASSERT(it != node.children.end(), "prefix-cache trie out of sync");
  Node& child = *it->second;
  RemoveFrom(child, keys, i + 1, sat);
  if (child.subtree_sat + child.subtree_unsat == 0) {
    node.children.erase(it);  // prune so memory tracks live entries
  }
}

void PrefixCache::RemoveEntry(uint32_t index) {
  Entry& entry = entries_[index];
  OVERIFY_ASSERT(entry.live, "removing a dead prefix-cache entry");
  RemoveFrom(root_, entry.keys, 0, entry.result == SatResult::kSat);
  exact_.erase(entry.set_hash);
  entry = Entry{};
  free_slots_.push_back(index);
  --live_;
}

void PrefixCache::Insert(std::vector<uint64_t> keys, uint64_t set_hash, uint64_t fingerprint,
                         SatResult result, const std::vector<uint8_t>& model,
                         std::vector<LearnedClause> clauses) {
  OVERIFY_ASSERT(result != SatResult::kUnknown, "only definite verdicts are cached");
  auto existing = exact_.find(set_hash);
  if (existing != exact_.end()) {
    // Same 128-bit identity (a re-query after a derived hit): replace
    // wholesale. A matching set_hash with a different fingerprint or key
    // sequence is a 64-bit collision between two distinct sets — drop the
    // resident entry AND skip this insert, so both sets degrade to cache
    // misses instead of one ever being served the other's verdict.
    const Entry& resident = entries_[existing->second];
    const bool same_set = resident.fingerprint == fingerprint && resident.keys == keys;
    RemoveEntry(existing->second);
    if (!same_set) {
      ++collisions_;
      return;
    }
  }
  while (live_ >= capacity_ && !fifo_.empty()) {
    uint32_t oldest = fifo_.front();
    fifo_.pop_front();
    if (entries_[oldest].live) {
      RemoveEntry(oldest);
      ++evictions_;
    }
  }
  uint32_t index;
  if (!free_slots_.empty()) {
    index = free_slots_.back();
    free_slots_.pop_back();
  } else {
    index = static_cast<uint32_t>(entries_.size());
    entries_.emplace_back();
  }
  Entry& entry = entries_[index];
  entry.keys = std::move(keys);
  entry.set_hash = set_hash;
  entry.fingerprint = fingerprint;
  entry.result = result;
  entry.model = model;
  entry.clauses = std::move(clauses);
  entry.live = true;
  const bool sat = result == SatResult::kSat;
  Node* node = &root_;
  if (sat) {
    ++node->subtree_sat;
  } else {
    ++node->subtree_unsat;
  }
  for (uint64_t key : entry.keys) {
    auto& child = node->children[key];
    if (child == nullptr) {
      child = std::make_unique<Node>();
    }
    node = child.get();
    if (sat) {
      ++node->subtree_sat;
    } else {
      ++node->subtree_unsat;
    }
  }
  node->entry = static_cast<int32_t>(index);
  exact_[entry.set_hash] = index;
  fifo_.push_back(index);
  ++live_;
}

void PrefixCache::InsertPersisted(std::vector<uint64_t> keys, uint64_t set_hash,
                                  uint64_t fingerprint, SatResult result,
                                  const std::vector<uint8_t>& model,
                                  std::vector<LearnedClause> clauses) {
  Insert(std::move(keys), set_hash, fingerprint, result, model, std::move(clauses));
  auto it = exact_.find(set_hash);
  if (it == exact_.end()) {
    return;  // collided with a resident entry; both dropped
  }
  Entry& entry = entries_[it->second];
  entry.persisted = true;
  entry.unvalidated = result == SatResult::kSat;
}

void PrefixCache::RemoveBySetHash(uint64_t set_hash) {
  auto it = exact_.find(set_hash);
  if (it != exact_.end() && entries_[it->second].live) {
    RemoveEntry(it->second);
  }
}

// ---- SolverChain ----

void SolverChain::SyncCoreCounters() const {
  MetricsShard& m = *metrics_;
  m.Set(Counter::kSolverCoreCandidates, core_.candidates_tried());
  m.Set(Counter::kSolverCoreConflicts, core_.conflicts());
  m.Set(Counter::kSolverCoreLearned, core_.learned());
  m.Set(Counter::kSolverCoreLearnedHits, core_.learned_hits());
  m.Set(Counter::kSolverCoreBackjumps, core_.backjumps());
  m.Set(Counter::kSolverCoreRestarts, core_.restarts());
}

void SolverChain::SyncMetrics() const {
  MetricsShard& m = *metrics_;
  SyncCoreCounters();
  m.Set(Counter::kSolverEvalMemoHits, ctx_.eval_memo_hits());
  m.Set(Counter::kSolverIntervalMemoHits, ctx_.interval_memo_hits());
  m.Set(Counter::kSolverCexEvictions, cache_.evictions());
  m.Set(Counter::kPrefixCollisions, cache_.collisions());
  const PreprocessStats& pp = preprocessor_.stats();
  m.Set(Counter::kPreprocessBindings, pp.bindings);
  m.Set(Counter::kPreprocessSubstitutions, pp.substitutions);
  m.Set(Counter::kPreprocessTautologies, pp.tautologies);
  m.Set(Counter::kPreprocessContradictions, pp.contradictions);
}

const SolverStats& SolverChain::stats() const {
  SyncMetrics();
  const MetricsShard& m = *metrics_;
  SolverStats& s = stats_;
  s.queries = m.Get(Counter::kSolverQueries);
  s.cache_hits = m.Get(Counter::kSolverCacheHits);
  s.reuse_hits = m.Get(Counter::kSolverReuseHits);
  s.core_queries = m.Get(Counter::kSolverCoreQueries);
  s.core_candidates = m.Get(Counter::kSolverCoreCandidates);
  s.independence_drops = m.Get(Counter::kSolverIndependenceDrops);
  s.eval_memo_hits = m.Get(Counter::kSolverEvalMemoHits);
  s.interval_memo_hits = m.Get(Counter::kSolverIntervalMemoHits);
  s.cex_evictions = m.Get(Counter::kSolverCexEvictions);
  s.preprocess_bindings = m.Get(Counter::kPreprocessBindings);
  s.preprocess_substitutions = m.Get(Counter::kPreprocessSubstitutions);
  s.preprocess_tautologies = m.Get(Counter::kPreprocessTautologies);
  s.preprocess_contradictions = m.Get(Counter::kPreprocessContradictions);
  s.presolve_shortcuts = m.Get(Counter::kPresolveShortcuts);
  s.prefix_subset_hits = m.Get(Counter::kPrefixSubsetHits);
  s.prefix_superset_hits = m.Get(Counter::kPrefixSupersetHits);
  s.prefix_model_hits = m.Get(Counter::kPrefixModelHits);
  s.unknown_budget = m.Get(Counter::kSolverUnknownBudget);
  s.unknown_deadline = m.Get(Counter::kSolverUnknownDeadline);
  s.unknown_cancelled = m.Get(Counter::kSolverUnknownCancelled);
  s.unknown_injected = m.Get(Counter::kSolverUnknownInjected);
  s.core_conflicts = m.Get(Counter::kSolverCoreConflicts);
  s.core_learned = m.Get(Counter::kSolverCoreLearned);
  s.core_learned_hits = m.Get(Counter::kSolverCoreLearnedHits);
  s.core_backjumps = m.Get(Counter::kSolverCoreBackjumps);
  s.core_restarts = m.Get(Counter::kSolverCoreRestarts);
  return stats_;
}

void SolverChain::SeedPersistedEntry(std::vector<uint64_t> keys, uint64_t set_hash,
                                     uint64_t fingerprint, SatResult result,
                                     const std::vector<uint8_t>& model,
                                     std::vector<LearnedClause> clauses) {
  if (result == SatResult::kUnknown) {
    return;  // never cached live, never seeded from a store
  }
  cache_.InsertPersisted(std::move(keys), set_hash, fingerprint, result, model,
                         std::move(clauses));
  metrics_->Inc(Counter::kPersistSeeded);
}

namespace {

// Canonical constraint order: by structural hash, creation id breaking the
// (vanishingly rare) hash tie. Hash order is context-independent, so the
// core search — whose conflict-directed backjumping is sensitive to
// constraint order — behaves identically for the same logical set in every
// worker's ExprContext (docs/scheduler.md, determinism).
bool CanonicalConstraintOrder(const Expr* a, const Expr* b) {
  if (a->hash() != b->hash()) {
    return a->hash() < b->hash();
  }
  return a->id() < b->id();
}

}  // namespace

// Drops trivially-true entries, dedupes, and sorts into canonical order.
// Returns false if the set is trivially unsat.
bool SolverChain::Canonicalize(const std::vector<const Expr*>& filtered,
                               std::vector<const Expr*>& canonical) {
  canonical.clear();
  for (const Expr* c : filtered) {
    if (c->IsTrue()) {
      continue;
    }
    if (c->IsFalse()) {
      return false;
    }
    canonical.push_back(c);
  }
  std::sort(canonical.begin(), canonical.end(), CanonicalConstraintOrder);
  canonical.erase(std::unique(canonical.begin(), canonical.end()), canonical.end());
  return true;
}

SatResult SolverChain::Unknown(UnknownCause cause) {
  last_unknown_cause_ = cause;
  switch (cause) {
    case UnknownCause::kCandidateBudget:
    case UnknownCause::kQueryTimeout:
      metrics_->Inc(Counter::kSolverUnknownBudget);
      break;
    case UnknownCause::kDeadline:
      metrics_->Inc(Counter::kSolverUnknownDeadline);
      break;
    case UnknownCause::kCancelled:
      metrics_->Inc(Counter::kSolverUnknownCancelled);
      break;
    case UnknownCause::kInjected:
      metrics_->Inc(Counter::kSolverUnknownInjected);
      break;
    case UnknownCause::kNone:
      break;
  }
  return SatResult::kUnknown;
}

SatResult SolverChain::Solve(const std::vector<const Expr*>& filtered,
                             std::vector<uint8_t>* model, const PathPrefix* prefix) {
  std::vector<const Expr*>& canonical = canonical_scratch_;
  if (!Canonicalize(filtered, canonical)) {
    return SatResult::kUnsat;
  }

  // Injected solver failure: the whole query gives up, after trivial
  // screening (so the site models a real solver timing out on real work)
  // but before any cache interaction (kUnknown must never be cached).
  if (control_.faults != nullptr && control_.faults->Fire(FaultSite::kSolverUnknown)) {
    if (trace_ != nullptr) {
      trace_->Instant(TraceKind::kFaultFired, MetricsNowNs(),
                      static_cast<uint64_t>(FaultSite::kSolverUnknown));
    }
    return Unknown(UnknownCause::kInjected);
  }
  // Injected cache failure: every lookup this query would do misses. The
  // verdict still comes from the core search, so results are unchanged —
  // only slower — which is exactly what the exhausted-run identity contract
  // demands of this site.
  const bool skip_cache =
      control_.faults != nullptr && control_.faults->Fire(FaultSite::kPrefixCacheLookup);
  if (skip_cache && trace_ != nullptr) {
    trace_->Instant(TraceKind::kFaultFired, MetricsNowNs(),
                    static_cast<uint64_t>(FaultSite::kPrefixCacheLookup));
  }

  // The cache-lookup span covers every reuse tier (exact, subset, superset,
  // model extension, recent-model reuse) and closes with the hit class that
  // answered — kMiss when the query fell through to the core search. It is
  // a sub-span of the solver-query span and is timed only when tracing:
  // lookups are tens of nanoseconds, so paying two clock reads per query in
  // metrics-only mode would cost more than it measures (the hit *counters*
  // are always exact; docs/observability.md spells out the gate).
  const bool timed = Timed();
  const bool traced = trace_ != nullptr;
  const uint64_t lookup_t0 = traced ? MetricsNowNs() : 0;
  auto lookup_done = [&](CacheHitClass hit) {
    if (!traced) {
      return;
    }
    const uint64_t t1 = MetricsNowNs();
    metrics_->Record(Hist::kCacheLookupNs, t1 - lookup_t0);
    trace_->Span(TraceKind::kCacheLookup, lookup_t0, t1, static_cast<uint64_t>(hit));
  };

  // Needed model width and the query-validation predicate. Hoisted above
  // the lookup tiers because persisted entries (seeded from an on-disk
  // store) are never trusted to be SAT witnesses until their model has been
  // re-validated against live constraints (docs/daemon.md#trust-model).
  size_t needed = 0;
  for (const Expr* c : canonical) {
    const SupportSet& support = c->Support();
    if (!support.Empty()) {
      needed = std::max(needed, static_cast<size_t>(support.MaxSymbol()) + 1);
    }
  }
  auto satisfies = [&](const std::vector<uint8_t>& candidate) {
    ctx_.NewEvaluation();
    for (const Expr* c : canonical) {
      if (ctx_.Evaluate(c, candidate) == 0) {
        return false;
      }
    }
    return true;
  };

  // Exact counterexample-cache lookup (one hash of the constraint set).
  const SetHash cache_key = HashConstraintSet(canonical, portable_hashes_);
  if (!skip_cache) {
    if (const PrefixCache::Entry* entry =
            cache_.FindExact(cache_key.key, cache_key.fingerprint)) {
      bool usable = true;
      if (entry->unvalidated) {
        // Persisted SAT model meeting its first live query: the entry's set
        // IS this query's set (128-bit identity), so satisfying the query
        // validates the whole entry. UNSAT entries are seeded validated —
        // the verdict is implied by identity plus the store checksum.
        std::vector<uint8_t> candidate = entry->model;
        if (candidate.size() < needed) {
          candidate.resize(needed, 0);
        }
        if (satisfies(candidate)) {
          entry->unvalidated = false;
          metrics_->Inc(Counter::kPersistValidations);
        } else {
          metrics_->Inc(Counter::kPersistRejects);
          cache_.RemoveBySetHash(cache_key.key);
          usable = false;
        }
      }
      if (usable) {
        metrics_->Inc(Counter::kSolverCacheHits);
        if (entry->persisted) {
          metrics_->Inc(Counter::kPersistHits);
        }
        lookup_done(CacheHitClass::kExact);
        if (model != nullptr) {
          *model = entry->model;
        }
        return entry->result;
      }
    }
  }

  // Sorted constraint-set fingerprint for subset/superset reasoning. The
  // canonical order is already ascending by structural hash.
  std::vector<uint64_t> keys;
  keys.reserve(canonical.size());
  for (const Expr* c : canonical) {
    keys.push_back(c->hash());
  }
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());

  // A cached UNSAT subset (typically this path's shorter prefix plus the
  // refuted branch) refutes every superset. Persisted UNSAT entries are
  // trusted: there is no model to re-check, and the 128-bit identity plus
  // the store checksum vouch for the verdict.
  if (!skip_cache) {
    if (const PrefixCache::Entry* sub = cache_.FindUnsatSubset(keys)) {
      metrics_->Inc(Counter::kPrefixSubsetHits);
      if (sub->persisted) {
        metrics_->Inc(Counter::kPersistHits);
      }
      lookup_done(CacheHitClass::kSubset);
      cache_.Insert(std::move(keys), cache_key.key, cache_key.fingerprint, SatResult::kUnsat,
                    {});
      return SatResult::kUnsat;
    }
  }

  // A cached SAT superset's model satisfies every constraint of this query.
  // An unvalidated persisted superset is re-checked against the live query
  // first; a model that fails is removed (its entry can never answer
  // correctly) and the lookup retries, so a poisoned store degrades to a
  // miss, never to a wrong verdict. Passing validates the model *for this
  // query only* — the entry's own (larger) set stays unvalidated.
  while (!skip_cache) {
    const PrefixCache::Entry* entry = cache_.FindSatSuperset(keys);
    if (entry == nullptr) {
      break;
    }
    // Copy before Insert: `entry` points into the cache's entry storage,
    // which Insert may reallocate. The superset's clauses are NOT carried
    // over: they were derived from a superset of this query, so they are
    // not necessarily valid nogoods for it.
    std::vector<uint8_t> superset_model = entry->model;
    if (entry->unvalidated) {
      std::vector<uint8_t> candidate = superset_model;
      if (candidate.size() < needed) {
        candidate.resize(needed, 0);
      }
      if (!satisfies(candidate)) {
        metrics_->Inc(Counter::kPersistRejects);
        cache_.RemoveBySetHash(entry->set_hash);
        continue;
      }
      metrics_->Inc(Counter::kPersistValidations);
    }
    metrics_->Inc(Counter::kPrefixSupersetHits);
    if (entry->persisted) {
      metrics_->Inc(Counter::kPersistHits);
    }
    lookup_done(CacheHitClass::kSuperset);
    cache_.Insert(std::move(keys), cache_key.key, cache_key.fingerprint, SatResult::kSat,
                  superset_model);
    if (model != nullptr) {
      *model = std::move(superset_model);
    }
    return SatResult::kSat;
  }

  // Prefix-model extension: a cached subset (the depth-k prefix of this
  // depth-k+1 query) often has a model that already satisfies the one new
  // constraint. Validation is a cheap memoized evaluation — and for an
  // unvalidated persisted subset it doubles as full validation, since the
  // query's constraints are a superset of the entry's.
  std::vector<const PrefixCache::Entry*> subsets;
  if (!skip_cache) {
    cache_.CollectSatSubsets(keys, /*limit=*/4, subsets);
  }
  for (const PrefixCache::Entry* entry : subsets) {
    std::vector<uint8_t> candidate = entry->model;
    if (candidate.size() < needed) {
      candidate.resize(needed, 0);
    }
    if (satisfies(candidate)) {
      if (entry->unvalidated) {
        entry->unvalidated = false;
        metrics_->Inc(Counter::kPersistValidations);
      }
      metrics_->Inc(Counter::kPrefixModelHits);
      if (entry->persisted) {
        metrics_->Inc(Counter::kPersistHits);
      }
      lookup_done(CacheHitClass::kModelExtension);
      // Carry the subset's clauses forward: valid for this superset, and
      // keeping them on the deeper entry propagates learning down the
      // path's prefix chain without a core search.
      std::vector<LearnedClause> inherited = entry->clauses;
      cache_.Insert(std::move(keys), cache_key.key, cache_key.fingerprint, SatResult::kSat,
                    candidate, std::move(inherited));
      if (model != nullptr) {
        *model = candidate;
      }
      return SatResult::kSat;
    }
  }

  // Model reuse: a recent satisfying assignment may already satisfy this set.
  for (auto it = recent_models_.rbegin(); it != recent_models_.rend(); ++it) {
    const std::vector<uint8_t>& candidate = *it;
    if (candidate.size() < needed) {
      continue;
    }
    if (satisfies(candidate)) {
      metrics_->Inc(Counter::kSolverReuseHits);
      lookup_done(CacheHitClass::kReuse);
      cache_.Insert(std::move(keys), cache_key.key, cache_key.fingerprint, SatResult::kSat,
                    candidate);
      if (model != nullptr) {
        *model = candidate;
      }
      return SatResult::kSat;
    }
  }

  // Core search. The cached SAT subsets collected above double as the
  // learned-clause seed source: each of their clauses was derived while
  // solving a subset of this query's constraint set, so all of them are
  // valid nogoods here (docs/solver.md#reuse). CheckSatCanonical never
  // seeds — its model must stay a pure function of the constraint set.
  lookup_done(CacheHitClass::kMiss);
  metrics_->Inc(Counter::kSolverCoreQueries);
  std::vector<uint8_t> core_model;
  UnknownCause core_cause = UnknownCause::kNone;
  const uint64_t candidates_before = core_.candidates_tried();
  const uint64_t core_t0 = timed ? MetricsNowNs() : 0;
  CoreSolver::SearchExtras extras;
  if (prefix != nullptr && !prefix->range.empty()) {
    extras.ranges = &prefix->range;
  }
  seed_scratch_.clear();
  if (core_.config().learning) {
    for (const PrefixCache::Entry* entry : subsets) {
      if (entry->unvalidated) {
        // Clauses from a not-yet-validated persisted entry could prune
        // satisfying assignments if the store lied; they only seed once the
        // entry's model has survived a live re-validation.
        continue;
      }
      for (const LearnedClause& clause : entry->clauses) {
        seed_scratch_.push_back(&clause);
      }
    }
    if (!seed_scratch_.empty()) {
      extras.seeds = &seed_scratch_;
    }
    extras.learned = &learned_scratch_;
    learned_scratch_.clear();
  }
  extras.metrics = metrics_;
  SatResult result = core_.CheckSat(ctx_, canonical, &core_model, control_.query_candidates,
                                    &control_, &core_cause, &extras);
  if (timed) {
    const uint64_t t1 = MetricsNowNs();
    metrics_->Record(Hist::kCoreSearchNs, t1 - core_t0);
    if (trace_ != nullptr) {
      trace_->Span(TraceKind::kCoreSearch, core_t0, t1, static_cast<uint64_t>(result),
                   core_.candidates_tried() - candidates_before);
    }
  }
  SyncCoreCounters();
  if (result == SatResult::kUnknown) {
    // Never cached: a degraded verdict must not poison later exact answers
    // (PrefixCache::Insert asserts the same invariant).
    return Unknown(core_cause);
  }
  cache_.Insert(std::move(keys), cache_key.key, cache_key.fingerprint, result, core_model,
                result == SatResult::kSat ? std::move(learned_scratch_)
                                          : std::vector<LearnedClause>{});
  if (result == SatResult::kSat) {
    recent_models_.push_back(core_model);
    if (recent_models_.size() > 8) {
      recent_models_.erase(recent_models_.begin());
    }
    if (model != nullptr) {
      *model = core_model;
    }
  }
  return result;
}

PathPrefix* SolverChain::EffectivePrefix(PathPrefix* prefix,
                                         const std::vector<const Expr*>& constraints) {
  if (prefix == nullptr) {
    // Handle-less callers routinely re-query one path with varying
    // conditions; reuse the scratch summary while the constraint sequence
    // is unchanged (preprocessing is a pure function of it), rebuild
    // otherwise.
    if (scratch_constraints_ != constraints) {
      scratch_prefix_.Clear();
      scratch_constraints_ = constraints;
    }
    prefix = &scratch_prefix_;
  }
  // The preprocess span covers incremental summary extension; recorded only
  // when new constraints were actually consumed, so steady-state re-queries
  // of an up-to-date prefix stay span-free. Like the cache-lookup span it
  // is trace-only: in metrics mode the extension is usually a no-op check
  // far cheaper than a clock-read pair.
  const size_t consumed_before = prefix->consumed;
  const bool traced = trace_ != nullptr;
  const uint64_t t0 = traced ? MetricsNowNs() : 0;
  const bool ok = preprocessor_.Extend(*prefix, constraints);
  if (traced && prefix->consumed > consumed_before) {
    const uint64_t t1 = MetricsNowNs();
    metrics_->Record(Hist::kPreprocessNs, t1 - t0);
    trace_->Span(TraceKind::kPreprocess, t0, t1,
                 static_cast<uint64_t>(prefix->consumed - consumed_before));
  }
  if (!ok) {
    // Run deadline expired mid-extension. The summary still covers exactly
    // prefix.consumed leading constraints (a valid shorter prefix), so it
    // stays pure; the query itself gives up.
    return nullptr;
  }
  return prefix;
}

void SolverChain::AssemblePreprocessed(const PathPrefix& prefix,
                                       std::vector<const Expr*>& out) {
  out.clear();
  out.reserve(prefix.definitions.size() + prefix.simplified.size());
  out.insert(out.end(), prefix.definitions.begin(), prefix.definitions.end());
  out.insert(out.end(), prefix.simplified.begin(), prefix.simplified.end());
}

// The query entry points below wrap their *Impl bodies in the solver-query
// span: one histogram record plus (when tracing) one trace event, gated on
// Timed() so an untimed chain takes zero clock reads.
void SolverChain::FinishQuery(uint64_t t0, SatResult result) {
  const uint64_t t1 = MetricsNowNs();
  metrics_->Record(Hist::kSolverQueryNs, t1 - t0);
  if (trace_ != nullptr) {
    trace_->Span(TraceKind::kSolverQuery, t0, t1, static_cast<uint64_t>(result),
                 static_cast<uint64_t>(result == SatResult::kUnknown ? last_unknown_cause_
                                                                     : UnknownCause::kNone));
  }
}

SatResult SolverChain::CheckSat(const std::vector<const Expr*>& constraints,
                                std::vector<uint8_t>* model, PathPrefix* prefix) {
  metrics_->Inc(Counter::kSolverQueries);
  if (!Timed()) {
    return CheckSatImpl(constraints, model, prefix);
  }
  const uint64_t t0 = MetricsNowNs();
  SatResult result = CheckSatImpl(constraints, model, prefix);
  FinishQuery(t0, result);
  return result;
}

SatResult SolverChain::CheckSatImpl(const std::vector<const Expr*>& constraints,
                                    std::vector<uint8_t>* model, PathPrefix* prefix) {
  if (!preprocess_enabled_) {
    return Solve(constraints, model);
  }
  PathPrefix* p = EffectivePrefix(prefix, constraints);
  if (p == nullptr) {
    return Unknown(UnknownCause::kDeadline);
  }
  if (p->contradiction) {
    return SatResult::kUnsat;
  }
  AssemblePreprocessed(*p, preprocessed_scratch_);
  return Solve(preprocessed_scratch_, model, p);
}

SatResult SolverChain::CheckSatCanonical(const std::vector<const Expr*>& constraints,
                                         std::vector<uint8_t>* model) {
  metrics_->Inc(Counter::kSolverQueries);
  if (!Timed()) {
    return CheckSatCanonicalImpl(constraints, model);
  }
  const uint64_t t0 = MetricsNowNs();
  SatResult result = CheckSatCanonicalImpl(constraints, model);
  FinishQuery(t0, result);
  return result;
}

SatResult SolverChain::CheckSatCanonicalImpl(const std::vector<const Expr*>& constraints,
                                             std::vector<uint8_t>* model) {
  std::vector<const Expr*>& canonical = canonical_scratch_;
  if (!Canonicalize(constraints, canonical)) {
    return SatResult::kUnsat;
  }
  // Witness queries draw the injected-unknown site too: a dropped witness
  // must degrade the run to non-exhausted (the engine discards unwitnessed
  // reports), not produce an unconfirmed bug.
  if (control_.faults != nullptr && control_.faults->Fire(FaultSite::kSolverUnknown)) {
    if (trace_ != nullptr) {
      trace_->Instant(TraceKind::kFaultFired, MetricsNowNs(),
                      static_cast<uint64_t>(FaultSite::kSolverUnknown));
    }
    return Unknown(UnknownCause::kInjected);
  }
  metrics_->Inc(Counter::kSolverCoreQueries);
  UnknownCause core_cause = UnknownCause::kNone;
  const uint64_t candidates_before = core_.candidates_tried();
  const bool timed = Timed();
  const uint64_t core_t0 = timed ? MetricsNowNs() : 0;
  // No range facts, no clause seeds: the model must be a pure function of
  // the constraint set, and seeds are per-worker query history. Within-query
  // learning is fine — it only skips non-models, so the first model in the
  // fixed value order is unchanged.
  CoreSolver::SearchExtras extras;
  extras.metrics = metrics_;
  SatResult result = core_.CheckSat(ctx_, canonical, model, control_.query_candidates,
                                    &control_, &core_cause, &extras);
  if (timed) {
    const uint64_t t1 = MetricsNowNs();
    metrics_->Record(Hist::kCoreSearchNs, t1 - core_t0);
    if (trace_ != nullptr) {
      trace_->Span(TraceKind::kCoreSearch, core_t0, t1, static_cast<uint64_t>(result),
                   core_.candidates_tried() - candidates_before);
    }
  }
  SyncCoreCounters();
  if (result == SatResult::kUnknown) {
    return Unknown(core_cause);
  }
  return result;
}

SatResult SolverChain::MayBeTrue(const std::vector<const Expr*>& constraints, const Expr* cond,
                                 std::vector<uint8_t>* model, PathPrefix* prefix) {
  metrics_->Inc(Counter::kSolverQueries);
  if (!Timed()) {
    return MayBeTrueImpl(constraints, cond, model, prefix);
  }
  const uint64_t t0 = MetricsNowNs();
  SatResult result = MayBeTrueImpl(constraints, cond, model, prefix);
  FinishQuery(t0, result);
  return result;
}

SatResult SolverChain::MayBeTrueImpl(const std::vector<const Expr*>& constraints,
                                     const Expr* cond, std::vector<uint8_t>* model,
                                     PathPrefix* prefix) {
  if (cond->IsTrue()) {
    // The path constraints are satisfiable by invariant.
    return SatResult::kSat;
  }
  if (cond->IsFalse()) {
    return SatResult::kUnsat;
  }
  if (!preprocess_enabled_) {
    FilterIndependentInto(constraints, cond, filtered_scratch_);
    metrics_->Add(Counter::kSolverIndependenceDrops, constraints.size() - filtered_scratch_.size());
    filtered_scratch_.push_back(cond);
    return Solve(filtered_scratch_, model);
  }
  PathPrefix* p = EffectivePrefix(prefix, constraints);
  if (p == nullptr) {
    return Unknown(UnknownCause::kDeadline);
  }
  if (p->contradiction) {
    // The path itself is infeasible; nothing can additionally hold.
    return SatResult::kUnsat;
  }
  // Substitution can settle the branch outright (the condition folds to a
  // constant once bound bytes are rewritten in)...
  const Expr* simplified = preprocessor_.Apply(*p, cond);
  if (simplified->IsTrue()) {
    metrics_->Inc(Counter::kPresolveShortcuts);
    return SatResult::kSat;  // path satisfiable by invariant
  }
  if (simplified->IsFalse()) {
    metrics_->Inc(Counter::kPresolveShortcuts);
    return SatResult::kUnsat;
  }
  // ...and so can the range facts: an interval of {1,1} means every point
  // of the (over-approximated) feasible region takes the branch, {0,0}
  // means none does.
  UInterval bound = preprocessor_.RangeOf(*p, simplified);
  if (bound.hi == 0) {
    metrics_->Inc(Counter::kPresolveShortcuts);
    return SatResult::kUnsat;
  }
  if (bound.lo >= 1) {
    metrics_->Inc(Counter::kPresolveShortcuts);
    return SatResult::kSat;
  }
  AssemblePreprocessed(*p, preprocessed_scratch_);
  FilterIndependentInto(preprocessed_scratch_, simplified, filtered_scratch_);
  metrics_->Add(Counter::kSolverIndependenceDrops, preprocessed_scratch_.size() - filtered_scratch_.size());
  filtered_scratch_.push_back(simplified);
  // The prefix's per-symbol range facts ride along for domain pruning:
  // every fact about a symbol the filtered set mentions is implied by the
  // filtered set itself (any range-bearing constraint on such a symbol
  // shares its support and survives FilterIndependent), and the core never
  // consults facts about symbols outside its search order.
  return Solve(filtered_scratch_, model, p);
}

}  // namespace overify
