#include "src/symex/solver.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <set>

#include "src/support/trace.h"

namespace overify {

namespace {

const char* KindName(ExprKind k) {
  switch (k) {
    case ExprKind::kConstant: return "const";
    case ExprKind::kSymbol: return "sym";
    case ExprKind::kAdd: return "add";
    case ExprKind::kSub: return "sub";
    case ExprKind::kMul: return "mul";
    case ExprKind::kUDiv: return "udiv";
    case ExprKind::kSDiv: return "sdiv";
    case ExprKind::kURem: return "urem";
    case ExprKind::kSRem: return "srem";
    case ExprKind::kAnd: return "and";
    case ExprKind::kOr: return "or";
    case ExprKind::kXor: return "xor";
    case ExprKind::kShl: return "shl";
    case ExprKind::kLShr: return "lshr";
    case ExprKind::kAShr: return "ashr";
    case ExprKind::kEq: return "eq";
    case ExprKind::kUlt: return "ult";
    case ExprKind::kUle: return "ule";
    case ExprKind::kSlt: return "slt";
    case ExprKind::kSle: return "sle";
    case ExprKind::kSelect: return "select";
    case ExprKind::kZExt: return "zext";
    case ExprKind::kSExt: return "sext";
    case ExprKind::kTrunc: return "trunc";
    case ExprKind::kExtract: return "extract";
    case ExprKind::kConcat: return "concat";
  }
  return "?";
}

void DumpExpr(const Expr* e, int depth) {
  if (depth > 5) { std::fprintf(stderr, "..."); return; }
  if (e->kind() == ExprKind::kConstant) {
    std::fprintf(stderr, "%llu:w%u", (unsigned long long)e->constant_value(), e->width());
    return;
  }
  if (e->kind() == ExprKind::kSymbol) {
    std::fprintf(stderr, "s%u", e->symbol_index());
    return;
  }
  std::fprintf(stderr, "(%s:w%u", KindName(e->kind()), e->width());
  for (const Expr* child : {e->a(), e->b(), e->c()}) {
    if (child != nullptr) {
      std::fprintf(stderr, " ");
      DumpExpr(child, depth + 1);
    }
  }
  if (e->kind() == ExprKind::kExtract) std::fprintf(stderr, " @%u", e->extract_offset());
  std::fprintf(stderr, ")");
}

// Value ordering for the core search: likely-satisfying bytes first (string
// terminators, letters, separators), then everything else. This is the
// solver-side analogue of KLEE trying the all-zero assignment first.
const std::vector<uint8_t>& CandidateOrder() {
  static const std::vector<uint8_t>* kOrder = [] {
    auto* order = new std::vector<uint8_t>();
    const uint8_t preferred[] = {0, 'a', ' ', '0', 'z', 'A', '\n', '\t', 1, 255, '9', '-', '.'};
    std::set<uint8_t> seen;
    for (uint8_t v : preferred) {
      if (seen.insert(v).second) {
        order->push_back(v);
      }
    }
    for (int v = 0; v < 256; ++v) {
      if (seen.insert(static_cast<uint8_t>(v)).second) {
        order->push_back(static_cast<uint8_t>(v));
      }
    }
    return order;
  }();
  return *kOrder;
}

}  // namespace

SatResult CoreSolver::CheckSat(ExprContext& ctx, const std::vector<const Expr*>& constraints,
                               std::vector<uint8_t>* model, uint64_t candidate_budget,
                               const QueryControl* control, UnknownCause* cause) {
  if (cause != nullptr) {
    *cause = UnknownCause::kNone;
  }
  // Interrupt sources, resolved once per query. The candidate loop polls
  // them every 4096 candidates — cheap against the per-candidate evaluation
  // cost, fine-grained against any realistic deadline, and the reason a
  // single pathological search can no longer overshoot the run deadline by
  // its full candidate budget.
  using Clock = std::chrono::steady_clock;
  const bool has_run_deadline = control != nullptr && control->has_deadline;
  const std::atomic<bool>* cancel = control != nullptr ? control->cancel : nullptr;
  bool has_query_deadline = false;
  Clock::time_point query_deadline{};
  if (control != nullptr && control->query_seconds > 0) {
    has_query_deadline = true;
    query_deadline = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                        std::chrono::duration<double>(control->query_seconds));
  }
  const bool polled = has_run_deadline || has_query_deadline || cancel != nullptr;

  // Trivial screening and support collection (bitmask union per constraint).
  SupportSet support;
  std::vector<const Expr*> live;
  for (const Expr* c : constraints) {
    if (c->IsConstant()) {
      if (c->constant_value() == 0) {
        return SatResult::kUnsat;
      }
      continue;
    }
    live.push_back(c);
    support.UnionWith(c->Support());
  }
  if (live.empty()) {
    if (model != nullptr) {
      model->clear();
    }
    return SatResult::kSat;
  }

  std::vector<unsigned> order;
  order.reserve(support.Size());
  support.ForEach([&](unsigned sym) { order.push_back(sym); });
  unsigned max_symbol = support.MaxSymbol();
  // Conflict-directed backjumping uses per-level position masks; fall back
  // to chronological behaviour for absurdly wide queries.
  const bool use_cbj = order.size() <= 64;

  // Per level: constraints (as indices into `live`) that become fully
  // determined there, constraints that merely touch the prefix (interval
  // pruning), and each constraint's support expressed as a mask of levels.
  std::vector<std::vector<size_t>> ready_at(order.size());
  std::vector<std::vector<size_t>> touched_at(order.size());
  std::vector<uint64_t> level_mask(live.size(), 0);
  {
    std::vector<size_t> position(max_symbol + 1, 0);
    for (size_t i = 0; i < order.size(); ++i) {
      position[order[i]] = i;
    }
    for (size_t ci = 0; ci < live.size(); ++ci) {
      size_t last = 0;
      size_t first = order.size();
      uint64_t mask = 0;
      live[ci]->Support().ForEach([&](unsigned sym) {
        size_t pos = position[sym];
        last = std::max(last, pos);
        first = std::min(first, pos);
        if (use_cbj) {
          mask |= uint64_t{1} << pos;
        }
      });
      level_mask[ci] = mask;
      ready_at[last].push_back(ci);
      for (size_t i = first; i < last; ++i) {
        touched_at[i].push_back(ci);
      }
    }
  }

  std::vector<uint8_t> assignment(max_symbol + 1, 0);
  std::vector<bool> assigned(max_symbol + 1, false);
  const std::vector<uint8_t>& candidates = CandidateOrder();

  uint64_t budget = candidate_budget;
  std::vector<size_t> candidate_index(order.size(), 0);
  // Levels (strictly below the key) implicated in failures at each level.
  std::vector<uint64_t> conflict_mask(order.size(), 0);
  size_t depth = 0;
  while (true) {
    if (depth == order.size()) {
      if (model != nullptr) {
        *model = assignment;
      }
      return SatResult::kSat;
    }
    if (candidate_index[depth] >= candidates.size()) {
      // Level exhausted: jump to the deepest level implicated in any of the
      // failures; reassigning anything in between cannot help. Without CBJ
      // (queries wider than 64 symbols) this is plain chronological
      // backtracking, computed directly — level indices past 63 cannot be
      // expressed as bit masks.
      uint64_t mask = use_cbj ? conflict_mask[depth] : 0;
      candidate_index[depth] = 0;
      conflict_mask[depth] = 0;
      assigned[order[depth]] = false;
      if (!use_cbj) {
        if (depth == 0) {
          return SatResult::kUnsat;
        }
        --depth;
        continue;
      }
      if (mask == 0) {
        return SatResult::kUnsat;
      }
      size_t jump = 63 - static_cast<size_t>(__builtin_clzll(mask));
      // Merge the remaining blame into the jump target (standard CBJ).
      conflict_mask[jump] |= mask & ~(uint64_t{1} << jump);
      for (size_t level = jump + 1; level < depth; ++level) {
        candidate_index[level] = 0;
        conflict_mask[level] = 0;
        assigned[order[level]] = false;
      }
      depth = jump;
      continue;
    }
    if (budget == 0) {
      if (std::getenv("OVERIFY_SOLVER_DEBUG") != nullptr) {
        std::fprintf(stderr, "[solver] budget exhausted: %zu constraints, %zu symbols\n",
                     live.size(), order.size());
        for (const Expr* c : live) {
          std::fprintf(stderr, "  ");
          DumpExpr(c, 0);
          std::fprintf(stderr, "\n");
        }
      }
      if (cause != nullptr) {
        *cause = UnknownCause::kCandidateBudget;
      }
      return SatResult::kUnknown;
    }
    --budget;
    ++candidates_tried_;
    if (polled && (budget & 4095) == 0) {
      if (cancel != nullptr && cancel->load(std::memory_order_relaxed)) {
        if (cause != nullptr) {
          *cause = UnknownCause::kCancelled;
        }
        return SatResult::kUnknown;
      }
      if (has_run_deadline || has_query_deadline) {
        Clock::time_point now = Clock::now();
        if (has_run_deadline && now >= control->deadline) {
          if (cause != nullptr) {
            *cause = UnknownCause::kDeadline;
          }
          return SatResult::kUnknown;
        }
        if (has_query_deadline && now >= query_deadline) {
          if (cause != nullptr) {
            *cause = UnknownCause::kQueryTimeout;
          }
          return SatResult::kUnknown;
        }
      }
    }
    assignment[order[depth]] = candidates[candidate_index[depth]++];
    assigned[order[depth]] = true;

    // Levels strictly below this one, saturating: depths past 63 only occur
    // with CBJ off (order.size() > 64), where level_mask is all-zero and the
    // blame mask is never consulted — but the shift itself must stay defined.
    const uint64_t below = depth >= 64 ? ~uint64_t{0} : (uint64_t{1} << depth) - 1;
    bool ok = true;
    // Constraints that just became fully determined.
    ctx.NewEvaluation();
    for (size_t ci : ready_at[depth]) {
      if (ctx.Evaluate(live[ci], assignment) == 0) {
        conflict_mask[depth] |= level_mask[ci] & below;
        ok = false;
        break;
      }
    }
    // Interval pruning for partially-determined constraints: a sound
    // over-approximation that already excludes `true` kills every
    // completion of this prefix.
    if (ok && !touched_at[depth].empty()) {
      ctx.NewIntervalRound();
      for (size_t ci : touched_at[depth]) {
        ExprContext::UInterval bound = ctx.EvalInterval(live[ci], assignment, assigned);
        if (bound.hi == 0) {
          conflict_mask[depth] |= level_mask[ci] & below;
          ok = false;
          break;
        }
      }
    }
    if (ok) {
      ++depth;
    } else {
      assigned[order[depth]] = false;
    }
  }
}

namespace {

// Fixpoint of "constraints transitively sharing support with the seed".
// The common shape — at most 64 constraints, all symbols below 64 — runs
// with a taken-bitmask and SupportSet mask ANDs: no allocation at all.
void FilterIndependentInto(const std::vector<const Expr*>& constraints, const Expr* seed,
                           std::vector<const Expr*>& out) {
  out.clear();
  const size_t n = constraints.size();
  SupportSet reachable = seed->Support();
  if (n <= 64) {
    uint64_t taken = 0;
    bool changed = true;
    while (changed) {
      changed = false;
      for (size_t i = 0; i < n; ++i) {
        if ((taken >> i) & 1) {
          continue;
        }
        const SupportSet& support = constraints[i]->Support();
        if (reachable.Intersects(support)) {
          taken |= uint64_t{1} << i;
          reachable.UnionWith(support);
          changed = true;
        }
      }
    }
    for (size_t i = 0; i < n; ++i) {
      if ((taken >> i) & 1) {
        out.push_back(constraints[i]);
      }
    }
    return;
  }
  std::vector<bool> taken(n, false);
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t i = 0; i < n; ++i) {
      if (taken[i]) {
        continue;
      }
      const SupportSet& support = constraints[i]->Support();
      if (reachable.Intersects(support)) {
        taken[i] = true;
        reachable.UnionWith(support);
        changed = true;
      }
    }
  }
  for (size_t i = 0; i < n; ++i) {
    if (taken[i]) {
      out.push_back(constraints[i]);
    }
  }
}

}  // namespace

std::vector<const Expr*> FilterIndependent(const std::vector<const Expr*>& constraints,
                                           const Expr* seed) {
  std::vector<const Expr*> filtered;
  FilterIndependentInto(constraints, seed, filtered);
  return filtered;
}

namespace {

// murmur3's 64-bit finalizer: a second mixer independent of HashMix64.
uint64_t MixHash2(uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

struct SetHash {
  uint64_t key;          // cache index
  uint64_t fingerprint;  // independent confirmation hash
};

// Order-sensitive 64-bit hashes of the canonical (id-sorted, deduped)
// constraint set. The key folds the structural hash stored on each Expr;
// the fingerprint folds the creation ids through a different mixer, so the
// two are independent.
SetHash HashConstraintSet(const std::vector<const Expr*>& canonical) {
  uint64_t h = HashMix64(0x9e3779b97f4a7c15ULL ^ canonical.size());
  uint64_t f = MixHash2(0x2545f4914f6cdd1dULL ^ canonical.size());
  for (const Expr* c : canonical) {
    h = HashMix64(h ^ c->hash());
    f = MixHash2(f ^ c->id());
  }
  return SetHash{h, f};
}

}  // namespace

// ---- PrefixCache ----

const PrefixCache::Entry* PrefixCache::FindExact(uint64_t set_hash,
                                                 uint64_t fingerprint) const {
  auto it = exact_.find(set_hash);
  if (it == exact_.end()) {
    return nullptr;
  }
  const Entry& entry = entries_[it->second];
  if (!entry.live || entry.fingerprint != fingerprint) {
    return nullptr;
  }
  return &entry;
}

bool PrefixCache::HasUnsatSubsetFrom(const Node& node, const std::vector<uint64_t>& keys,
                                     size_t i, size_t& budget) const {
  if (budget == 0) {
    return false;
  }
  --budget;
  if (node.entry >= 0 && entries_[node.entry].result == SatResult::kUnsat) {
    return true;  // the path to this node used only keys present in the query
  }
  for (const auto& [key, child] : node.children) {
    if (child->subtree_unsat == 0) {
      continue;
    }
    auto it = std::lower_bound(keys.begin() + i, keys.end(), key);
    if (it == keys.end()) {
      break;  // children are ascending: nothing further can match
    }
    if (*it != key) {
      continue;
    }
    if (HasUnsatSubsetFrom(*child, keys, static_cast<size_t>(it - keys.begin()) + 1,
                           budget)) {
      return true;
    }
  }
  return false;
}

bool PrefixCache::HasUnsatSubset(const std::vector<uint64_t>& keys) const {
  size_t budget = kSearchBudget;
  return HasUnsatSubsetFrom(root_, keys, 0, budget);
}

const PrefixCache::Entry* PrefixCache::FindAnySat(const Node& node, size_t& budget) const {
  if (budget == 0) {
    return nullptr;
  }
  --budget;
  if (node.entry >= 0 && entries_[node.entry].result == SatResult::kSat) {
    return &entries_[node.entry];
  }
  for (const auto& [key, child] : node.children) {
    (void)key;
    if (child->subtree_sat == 0) {
      continue;
    }
    if (const Entry* found = FindAnySat(*child, budget)) {
      return found;
    }
  }
  return nullptr;
}

const PrefixCache::Entry* PrefixCache::FindSatSupersetFrom(const Node& node,
                                                           const std::vector<uint64_t>& keys,
                                                           size_t i, size_t& budget) const {
  if (budget == 0 || node.subtree_sat == 0) {
    return nullptr;
  }
  --budget;
  if (i == keys.size()) {
    // Every query key matched along the way down: any SAT entry below is a
    // superset.
    return FindAnySat(node, budget);
  }
  for (const auto& [key, child] : node.children) {
    if (key > keys[i]) {
      break;  // a superset must contain keys[i]; larger keys skipped it
    }
    const Entry* found = key == keys[i]
                             ? FindSatSupersetFrom(*child, keys, i + 1, budget)
                             : FindSatSupersetFrom(*child, keys, i, budget);
    if (found != nullptr) {
      return found;
    }
  }
  return nullptr;
}

const PrefixCache::Entry* PrefixCache::FindSatSuperset(
    const std::vector<uint64_t>& keys) const {
  size_t budget = kSearchBudget;
  return FindSatSupersetFrom(root_, keys, 0, budget);
}

void PrefixCache::CollectSatSubsetsFrom(const Node& node, const std::vector<uint64_t>& keys,
                                        size_t i, size_t limit, size_t& budget,
                                        std::vector<const Entry*>& out) const {
  if (budget == 0 || out.size() >= limit) {
    return;
  }
  --budget;
  if (node.entry >= 0 && entries_[node.entry].result == SatResult::kSat &&
      !entries_[node.entry].keys.empty()) {
    out.push_back(&entries_[node.entry]);
    if (out.size() >= limit) {
      return;
    }
  }
  for (const auto& [key, child] : node.children) {
    if (child->subtree_sat == 0) {
      continue;
    }
    auto it = std::lower_bound(keys.begin() + i, keys.end(), key);
    if (it == keys.end()) {
      break;
    }
    if (*it != key) {
      continue;
    }
    CollectSatSubsetsFrom(*child, keys, static_cast<size_t>(it - keys.begin()) + 1, limit,
                          budget, out);
    if (out.size() >= limit) {
      return;
    }
  }
}

void PrefixCache::CollectSatSubsets(const std::vector<uint64_t>& keys, size_t limit,
                                    std::vector<const Entry*>& out) const {
  size_t budget = kSearchBudget;
  CollectSatSubsetsFrom(root_, keys, 0, limit, budget, out);
}

void PrefixCache::RemoveFrom(Node& node, const std::vector<uint64_t>& keys, size_t i,
                             bool sat) {
  if (sat) {
    --node.subtree_sat;
  } else {
    --node.subtree_unsat;
  }
  if (i == keys.size()) {
    node.entry = -1;
    return;
  }
  auto it = node.children.find(keys[i]);
  OVERIFY_ASSERT(it != node.children.end(), "prefix-cache trie out of sync");
  Node& child = *it->second;
  RemoveFrom(child, keys, i + 1, sat);
  if (child.subtree_sat + child.subtree_unsat == 0) {
    node.children.erase(it);  // prune so memory tracks live entries
  }
}

void PrefixCache::RemoveEntry(uint32_t index) {
  Entry& entry = entries_[index];
  OVERIFY_ASSERT(entry.live, "removing a dead prefix-cache entry");
  RemoveFrom(root_, entry.keys, 0, entry.result == SatResult::kSat);
  exact_.erase(entry.set_hash);
  entry = Entry{};
  free_slots_.push_back(index);
  --live_;
}

void PrefixCache::Insert(std::vector<uint64_t> keys, uint64_t set_hash, uint64_t fingerprint,
                         SatResult result, const std::vector<uint8_t>& model) {
  OVERIFY_ASSERT(result != SatResult::kUnknown, "only definite verdicts are cached");
  auto existing = exact_.find(set_hash);
  if (existing != exact_.end()) {
    // Same set hash (re-query after a derived hit, or a treated-impossible
    // collision): replace wholesale.
    RemoveEntry(existing->second);
  }
  while (live_ >= capacity_ && !fifo_.empty()) {
    uint32_t oldest = fifo_.front();
    fifo_.pop_front();
    if (entries_[oldest].live) {
      RemoveEntry(oldest);
      ++evictions_;
    }
  }
  uint32_t index;
  if (!free_slots_.empty()) {
    index = free_slots_.back();
    free_slots_.pop_back();
  } else {
    index = static_cast<uint32_t>(entries_.size());
    entries_.emplace_back();
  }
  Entry& entry = entries_[index];
  entry.keys = std::move(keys);
  entry.set_hash = set_hash;
  entry.fingerprint = fingerprint;
  entry.result = result;
  entry.model = model;
  entry.live = true;
  const bool sat = result == SatResult::kSat;
  Node* node = &root_;
  if (sat) {
    ++node->subtree_sat;
  } else {
    ++node->subtree_unsat;
  }
  for (uint64_t key : entry.keys) {
    auto& child = node->children[key];
    if (child == nullptr) {
      child = std::make_unique<Node>();
    }
    node = child.get();
    if (sat) {
      ++node->subtree_sat;
    } else {
      ++node->subtree_unsat;
    }
  }
  node->entry = static_cast<int32_t>(index);
  exact_[entry.set_hash] = index;
  fifo_.push_back(index);
  ++live_;
}

// ---- SolverChain ----

void SolverChain::SyncMetrics() const {
  MetricsShard& m = *metrics_;
  m.Set(Counter::kSolverEvalMemoHits, ctx_.eval_memo_hits());
  m.Set(Counter::kSolverIntervalMemoHits, ctx_.interval_memo_hits());
  m.Set(Counter::kSolverCexEvictions, cache_.evictions());
  const PreprocessStats& pp = preprocessor_.stats();
  m.Set(Counter::kPreprocessBindings, pp.bindings);
  m.Set(Counter::kPreprocessSubstitutions, pp.substitutions);
  m.Set(Counter::kPreprocessTautologies, pp.tautologies);
  m.Set(Counter::kPreprocessContradictions, pp.contradictions);
}

const SolverStats& SolverChain::stats() const {
  SyncMetrics();
  const MetricsShard& m = *metrics_;
  SolverStats& s = stats_;
  s.queries = m.Get(Counter::kSolverQueries);
  s.cache_hits = m.Get(Counter::kSolverCacheHits);
  s.reuse_hits = m.Get(Counter::kSolverReuseHits);
  s.core_queries = m.Get(Counter::kSolverCoreQueries);
  s.core_candidates = m.Get(Counter::kSolverCoreCandidates);
  s.independence_drops = m.Get(Counter::kSolverIndependenceDrops);
  s.eval_memo_hits = m.Get(Counter::kSolverEvalMemoHits);
  s.interval_memo_hits = m.Get(Counter::kSolverIntervalMemoHits);
  s.cex_evictions = m.Get(Counter::kSolverCexEvictions);
  s.preprocess_bindings = m.Get(Counter::kPreprocessBindings);
  s.preprocess_substitutions = m.Get(Counter::kPreprocessSubstitutions);
  s.preprocess_tautologies = m.Get(Counter::kPreprocessTautologies);
  s.preprocess_contradictions = m.Get(Counter::kPreprocessContradictions);
  s.presolve_shortcuts = m.Get(Counter::kPresolveShortcuts);
  s.prefix_subset_hits = m.Get(Counter::kPrefixSubsetHits);
  s.prefix_superset_hits = m.Get(Counter::kPrefixSupersetHits);
  s.prefix_model_hits = m.Get(Counter::kPrefixModelHits);
  s.unknown_budget = m.Get(Counter::kSolverUnknownBudget);
  s.unknown_deadline = m.Get(Counter::kSolverUnknownDeadline);
  s.unknown_cancelled = m.Get(Counter::kSolverUnknownCancelled);
  s.unknown_injected = m.Get(Counter::kSolverUnknownInjected);
  return stats_;
}

namespace {

// Canonical constraint order: by structural hash, creation id breaking the
// (vanishingly rare) hash tie. Hash order is context-independent, so the
// core search — whose conflict-directed backjumping is sensitive to
// constraint order — behaves identically for the same logical set in every
// worker's ExprContext (docs/scheduler.md, determinism).
bool CanonicalConstraintOrder(const Expr* a, const Expr* b) {
  if (a->hash() != b->hash()) {
    return a->hash() < b->hash();
  }
  return a->id() < b->id();
}

}  // namespace

// Drops trivially-true entries, dedupes, and sorts into canonical order.
// Returns false if the set is trivially unsat.
bool SolverChain::Canonicalize(const std::vector<const Expr*>& filtered,
                               std::vector<const Expr*>& canonical) {
  canonical.clear();
  for (const Expr* c : filtered) {
    if (c->IsTrue()) {
      continue;
    }
    if (c->IsFalse()) {
      return false;
    }
    canonical.push_back(c);
  }
  std::sort(canonical.begin(), canonical.end(), CanonicalConstraintOrder);
  canonical.erase(std::unique(canonical.begin(), canonical.end()), canonical.end());
  return true;
}

SatResult SolverChain::Unknown(UnknownCause cause) {
  last_unknown_cause_ = cause;
  switch (cause) {
    case UnknownCause::kCandidateBudget:
    case UnknownCause::kQueryTimeout:
      metrics_->Inc(Counter::kSolverUnknownBudget);
      break;
    case UnknownCause::kDeadline:
      metrics_->Inc(Counter::kSolverUnknownDeadline);
      break;
    case UnknownCause::kCancelled:
      metrics_->Inc(Counter::kSolverUnknownCancelled);
      break;
    case UnknownCause::kInjected:
      metrics_->Inc(Counter::kSolverUnknownInjected);
      break;
    case UnknownCause::kNone:
      break;
  }
  return SatResult::kUnknown;
}

SatResult SolverChain::Solve(const std::vector<const Expr*>& filtered,
                             std::vector<uint8_t>* model) {
  std::vector<const Expr*>& canonical = canonical_scratch_;
  if (!Canonicalize(filtered, canonical)) {
    return SatResult::kUnsat;
  }

  // Injected solver failure: the whole query gives up, after trivial
  // screening (so the site models a real solver timing out on real work)
  // but before any cache interaction (kUnknown must never be cached).
  if (control_.faults != nullptr && control_.faults->Fire(FaultSite::kSolverUnknown)) {
    if (trace_ != nullptr) {
      trace_->Instant(TraceKind::kFaultFired, MetricsNowNs(),
                      static_cast<uint64_t>(FaultSite::kSolverUnknown));
    }
    return Unknown(UnknownCause::kInjected);
  }
  // Injected cache failure: every lookup this query would do misses. The
  // verdict still comes from the core search, so results are unchanged —
  // only slower — which is exactly what the exhausted-run identity contract
  // demands of this site.
  const bool skip_cache =
      control_.faults != nullptr && control_.faults->Fire(FaultSite::kPrefixCacheLookup);
  if (skip_cache && trace_ != nullptr) {
    trace_->Instant(TraceKind::kFaultFired, MetricsNowNs(),
                    static_cast<uint64_t>(FaultSite::kPrefixCacheLookup));
  }

  // The cache-lookup span covers every reuse tier (exact, subset, superset,
  // model extension, recent-model reuse) and closes with the hit class that
  // answered — kMiss when the query fell through to the core search. It is
  // a sub-span of the solver-query span and is timed only when tracing:
  // lookups are tens of nanoseconds, so paying two clock reads per query in
  // metrics-only mode would cost more than it measures (the hit *counters*
  // are always exact; docs/observability.md spells out the gate).
  const bool timed = Timed();
  const bool traced = trace_ != nullptr;
  const uint64_t lookup_t0 = traced ? MetricsNowNs() : 0;
  auto lookup_done = [&](CacheHitClass hit) {
    if (!traced) {
      return;
    }
    const uint64_t t1 = MetricsNowNs();
    metrics_->Record(Hist::kCacheLookupNs, t1 - lookup_t0);
    trace_->Span(TraceKind::kCacheLookup, lookup_t0, t1, static_cast<uint64_t>(hit));
  };

  // Exact counterexample-cache lookup (one hash of the constraint set).
  const SetHash cache_key = HashConstraintSet(canonical);
  if (!skip_cache) {
    if (const PrefixCache::Entry* entry =
            cache_.FindExact(cache_key.key, cache_key.fingerprint)) {
      metrics_->Inc(Counter::kSolverCacheHits);
      lookup_done(CacheHitClass::kExact);
      if (model != nullptr) {
        *model = entry->model;
      }
      return entry->result;
    }
  }

  // Sorted constraint-set fingerprint for subset/superset reasoning. The
  // canonical order is already ascending by structural hash.
  std::vector<uint64_t> keys;
  keys.reserve(canonical.size());
  for (const Expr* c : canonical) {
    keys.push_back(c->hash());
  }
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());

  // A cached UNSAT subset (typically this path's shorter prefix plus the
  // refuted branch) refutes every superset.
  if (!skip_cache && cache_.HasUnsatSubset(keys)) {
    metrics_->Inc(Counter::kPrefixSubsetHits);
    lookup_done(CacheHitClass::kSubset);
    cache_.Insert(std::move(keys), cache_key.key, cache_key.fingerprint, SatResult::kUnsat,
                  {});
    return SatResult::kUnsat;
  }

  // A cached SAT superset's model satisfies every constraint of this query.
  if (const PrefixCache::Entry* entry = skip_cache ? nullptr : cache_.FindSatSuperset(keys)) {
    metrics_->Inc(Counter::kPrefixSupersetHits);
    lookup_done(CacheHitClass::kSuperset);
    // Copy before Insert: `entry` points into the cache's entry storage,
    // which Insert may reallocate.
    std::vector<uint8_t> superset_model = entry->model;
    cache_.Insert(std::move(keys), cache_key.key, cache_key.fingerprint, SatResult::kSat,
                  superset_model);
    if (model != nullptr) {
      *model = std::move(superset_model);
    }
    return SatResult::kSat;
  }

  // Prefix-model extension: a cached subset (the depth-k prefix of this
  // depth-k+1 query) often has a model that already satisfies the one new
  // constraint. Validation is a cheap memoized evaluation.
  size_t needed = 0;
  for (const Expr* c : canonical) {
    const SupportSet& support = c->Support();
    if (!support.Empty()) {
      needed = std::max(needed, static_cast<size_t>(support.MaxSymbol()) + 1);
    }
  }
  auto satisfies = [&](const std::vector<uint8_t>& candidate) {
    ctx_.NewEvaluation();
    for (const Expr* c : canonical) {
      if (ctx_.Evaluate(c, candidate) == 0) {
        return false;
      }
    }
    return true;
  };
  std::vector<const PrefixCache::Entry*> subsets;
  if (!skip_cache) {
    cache_.CollectSatSubsets(keys, /*limit=*/4, subsets);
  }
  for (const PrefixCache::Entry* entry : subsets) {
    std::vector<uint8_t> candidate = entry->model;
    if (candidate.size() < needed) {
      candidate.resize(needed, 0);
    }
    if (satisfies(candidate)) {
      metrics_->Inc(Counter::kPrefixModelHits);
      lookup_done(CacheHitClass::kModelExtension);
      cache_.Insert(std::move(keys), cache_key.key, cache_key.fingerprint, SatResult::kSat,
                    candidate);
      if (model != nullptr) {
        *model = candidate;
      }
      return SatResult::kSat;
    }
  }

  // Model reuse: a recent satisfying assignment may already satisfy this set.
  for (auto it = recent_models_.rbegin(); it != recent_models_.rend(); ++it) {
    const std::vector<uint8_t>& candidate = *it;
    if (candidate.size() < needed) {
      continue;
    }
    if (satisfies(candidate)) {
      metrics_->Inc(Counter::kSolverReuseHits);
      lookup_done(CacheHitClass::kReuse);
      cache_.Insert(std::move(keys), cache_key.key, cache_key.fingerprint, SatResult::kSat,
                    candidate);
      if (model != nullptr) {
        *model = candidate;
      }
      return SatResult::kSat;
    }
  }

  // Core search.
  lookup_done(CacheHitClass::kMiss);
  metrics_->Inc(Counter::kSolverCoreQueries);
  std::vector<uint8_t> core_model;
  UnknownCause core_cause = UnknownCause::kNone;
  const uint64_t candidates_before = core_.candidates_tried();
  const uint64_t core_t0 = timed ? MetricsNowNs() : 0;
  SatResult result = core_.CheckSat(ctx_, canonical, &core_model, control_.query_candidates,
                                    &control_, &core_cause);
  if (timed) {
    const uint64_t t1 = MetricsNowNs();
    metrics_->Record(Hist::kCoreSearchNs, t1 - core_t0);
    if (trace_ != nullptr) {
      trace_->Span(TraceKind::kCoreSearch, core_t0, t1, static_cast<uint64_t>(result),
                   core_.candidates_tried() - candidates_before);
    }
  }
  metrics_->Set(Counter::kSolverCoreCandidates, core_.candidates_tried());
  if (result == SatResult::kUnknown) {
    // Never cached: a degraded verdict must not poison later exact answers
    // (PrefixCache::Insert asserts the same invariant).
    return Unknown(core_cause);
  }
  cache_.Insert(std::move(keys), cache_key.key, cache_key.fingerprint, result, core_model);
  if (result == SatResult::kSat) {
    recent_models_.push_back(core_model);
    if (recent_models_.size() > 8) {
      recent_models_.erase(recent_models_.begin());
    }
    if (model != nullptr) {
      *model = core_model;
    }
  }
  return result;
}

PathPrefix* SolverChain::EffectivePrefix(PathPrefix* prefix,
                                         const std::vector<const Expr*>& constraints) {
  if (prefix == nullptr) {
    // Handle-less callers routinely re-query one path with varying
    // conditions; reuse the scratch summary while the constraint sequence
    // is unchanged (preprocessing is a pure function of it), rebuild
    // otherwise.
    if (scratch_constraints_ != constraints) {
      scratch_prefix_.Clear();
      scratch_constraints_ = constraints;
    }
    prefix = &scratch_prefix_;
  }
  // The preprocess span covers incremental summary extension; recorded only
  // when new constraints were actually consumed, so steady-state re-queries
  // of an up-to-date prefix stay span-free. Like the cache-lookup span it
  // is trace-only: in metrics mode the extension is usually a no-op check
  // far cheaper than a clock-read pair.
  const size_t consumed_before = prefix->consumed;
  const bool traced = trace_ != nullptr;
  const uint64_t t0 = traced ? MetricsNowNs() : 0;
  const bool ok = preprocessor_.Extend(*prefix, constraints);
  if (traced && prefix->consumed > consumed_before) {
    const uint64_t t1 = MetricsNowNs();
    metrics_->Record(Hist::kPreprocessNs, t1 - t0);
    trace_->Span(TraceKind::kPreprocess, t0, t1,
                 static_cast<uint64_t>(prefix->consumed - consumed_before));
  }
  if (!ok) {
    // Run deadline expired mid-extension. The summary still covers exactly
    // prefix.consumed leading constraints (a valid shorter prefix), so it
    // stays pure; the query itself gives up.
    return nullptr;
  }
  return prefix;
}

void SolverChain::AssemblePreprocessed(const PathPrefix& prefix,
                                       std::vector<const Expr*>& out) {
  out.clear();
  out.reserve(prefix.definitions.size() + prefix.simplified.size());
  out.insert(out.end(), prefix.definitions.begin(), prefix.definitions.end());
  out.insert(out.end(), prefix.simplified.begin(), prefix.simplified.end());
}

// The query entry points below wrap their *Impl bodies in the solver-query
// span: one histogram record plus (when tracing) one trace event, gated on
// Timed() so an untimed chain takes zero clock reads.
void SolverChain::FinishQuery(uint64_t t0, SatResult result) {
  const uint64_t t1 = MetricsNowNs();
  metrics_->Record(Hist::kSolverQueryNs, t1 - t0);
  if (trace_ != nullptr) {
    trace_->Span(TraceKind::kSolverQuery, t0, t1, static_cast<uint64_t>(result),
                 static_cast<uint64_t>(result == SatResult::kUnknown ? last_unknown_cause_
                                                                     : UnknownCause::kNone));
  }
}

SatResult SolverChain::CheckSat(const std::vector<const Expr*>& constraints,
                                std::vector<uint8_t>* model, PathPrefix* prefix) {
  metrics_->Inc(Counter::kSolverQueries);
  if (!Timed()) {
    return CheckSatImpl(constraints, model, prefix);
  }
  const uint64_t t0 = MetricsNowNs();
  SatResult result = CheckSatImpl(constraints, model, prefix);
  FinishQuery(t0, result);
  return result;
}

SatResult SolverChain::CheckSatImpl(const std::vector<const Expr*>& constraints,
                                    std::vector<uint8_t>* model, PathPrefix* prefix) {
  if (!preprocess_enabled_) {
    return Solve(constraints, model);
  }
  PathPrefix* p = EffectivePrefix(prefix, constraints);
  if (p == nullptr) {
    return Unknown(UnknownCause::kDeadline);
  }
  if (p->contradiction) {
    return SatResult::kUnsat;
  }
  AssemblePreprocessed(*p, preprocessed_scratch_);
  return Solve(preprocessed_scratch_, model);
}

SatResult SolverChain::CheckSatCanonical(const std::vector<const Expr*>& constraints,
                                         std::vector<uint8_t>* model) {
  metrics_->Inc(Counter::kSolverQueries);
  if (!Timed()) {
    return CheckSatCanonicalImpl(constraints, model);
  }
  const uint64_t t0 = MetricsNowNs();
  SatResult result = CheckSatCanonicalImpl(constraints, model);
  FinishQuery(t0, result);
  return result;
}

SatResult SolverChain::CheckSatCanonicalImpl(const std::vector<const Expr*>& constraints,
                                             std::vector<uint8_t>* model) {
  std::vector<const Expr*>& canonical = canonical_scratch_;
  if (!Canonicalize(constraints, canonical)) {
    return SatResult::kUnsat;
  }
  // Witness queries draw the injected-unknown site too: a dropped witness
  // must degrade the run to non-exhausted (the engine discards unwitnessed
  // reports), not produce an unconfirmed bug.
  if (control_.faults != nullptr && control_.faults->Fire(FaultSite::kSolverUnknown)) {
    if (trace_ != nullptr) {
      trace_->Instant(TraceKind::kFaultFired, MetricsNowNs(),
                      static_cast<uint64_t>(FaultSite::kSolverUnknown));
    }
    return Unknown(UnknownCause::kInjected);
  }
  metrics_->Inc(Counter::kSolverCoreQueries);
  UnknownCause core_cause = UnknownCause::kNone;
  const uint64_t candidates_before = core_.candidates_tried();
  const bool timed = Timed();
  const uint64_t core_t0 = timed ? MetricsNowNs() : 0;
  SatResult result = core_.CheckSat(ctx_, canonical, model, control_.query_candidates,
                                    &control_, &core_cause);
  if (timed) {
    const uint64_t t1 = MetricsNowNs();
    metrics_->Record(Hist::kCoreSearchNs, t1 - core_t0);
    if (trace_ != nullptr) {
      trace_->Span(TraceKind::kCoreSearch, core_t0, t1, static_cast<uint64_t>(result),
                   core_.candidates_tried() - candidates_before);
    }
  }
  metrics_->Set(Counter::kSolverCoreCandidates, core_.candidates_tried());
  if (result == SatResult::kUnknown) {
    return Unknown(core_cause);
  }
  return result;
}

SatResult SolverChain::MayBeTrue(const std::vector<const Expr*>& constraints, const Expr* cond,
                                 std::vector<uint8_t>* model, PathPrefix* prefix) {
  metrics_->Inc(Counter::kSolverQueries);
  if (!Timed()) {
    return MayBeTrueImpl(constraints, cond, model, prefix);
  }
  const uint64_t t0 = MetricsNowNs();
  SatResult result = MayBeTrueImpl(constraints, cond, model, prefix);
  FinishQuery(t0, result);
  return result;
}

SatResult SolverChain::MayBeTrueImpl(const std::vector<const Expr*>& constraints,
                                     const Expr* cond, std::vector<uint8_t>* model,
                                     PathPrefix* prefix) {
  if (cond->IsTrue()) {
    // The path constraints are satisfiable by invariant.
    return SatResult::kSat;
  }
  if (cond->IsFalse()) {
    return SatResult::kUnsat;
  }
  if (!preprocess_enabled_) {
    FilterIndependentInto(constraints, cond, filtered_scratch_);
    metrics_->Add(Counter::kSolverIndependenceDrops, constraints.size() - filtered_scratch_.size());
    filtered_scratch_.push_back(cond);
    return Solve(filtered_scratch_, model);
  }
  PathPrefix* p = EffectivePrefix(prefix, constraints);
  if (p == nullptr) {
    return Unknown(UnknownCause::kDeadline);
  }
  if (p->contradiction) {
    // The path itself is infeasible; nothing can additionally hold.
    return SatResult::kUnsat;
  }
  // Substitution can settle the branch outright (the condition folds to a
  // constant once bound bytes are rewritten in)...
  const Expr* simplified = preprocessor_.Apply(*p, cond);
  if (simplified->IsTrue()) {
    metrics_->Inc(Counter::kPresolveShortcuts);
    return SatResult::kSat;  // path satisfiable by invariant
  }
  if (simplified->IsFalse()) {
    metrics_->Inc(Counter::kPresolveShortcuts);
    return SatResult::kUnsat;
  }
  // ...and so can the range facts: an interval of {1,1} means every point
  // of the (over-approximated) feasible region takes the branch, {0,0}
  // means none does.
  UInterval bound = preprocessor_.RangeOf(*p, simplified);
  if (bound.hi == 0) {
    metrics_->Inc(Counter::kPresolveShortcuts);
    return SatResult::kUnsat;
  }
  if (bound.lo >= 1) {
    metrics_->Inc(Counter::kPresolveShortcuts);
    return SatResult::kSat;
  }
  AssemblePreprocessed(*p, preprocessed_scratch_);
  FilterIndependentInto(preprocessed_scratch_, simplified, filtered_scratch_);
  metrics_->Add(Counter::kSolverIndependenceDrops, preprocessed_scratch_.size() - filtered_scratch_.size());
  filtered_scratch_.push_back(simplified);
  return Solve(filtered_scratch_, model);
}

}  // namespace overify
