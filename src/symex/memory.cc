#include "src/symex/memory.h"

namespace overify {

ObjectState::ObjectState(ExprContext& ctx, uint64_t size) {
  bytes_.assign(size, ctx.Constant(0, 8));
}

uint64_t AddressSpace::Allocate(ExprContext& ctx, uint64_t size, bool read_only, bool is_alloca,
                                std::string name) {
  uint64_t id = next_id_++;
  meta_[id] = MemoryObject{id, size, read_only, is_alloca, std::move(name)};
  contents_[id] = std::make_shared<ObjectState>(ctx, size);
  return id;
}

void AddressSpace::Free(uint64_t object_id) {
  meta_.erase(object_id);
  contents_.erase(object_id);
}

ObjectState& AddressSpace::Write(uint64_t object_id) {
  std::shared_ptr<ObjectState>& state = contents_.at(object_id);
  if (state.use_count() > 1) {
    state = std::make_shared<ObjectState>(*state);
  }
  return *state;
}

}  // namespace overify
