#include "src/symex/memory.h"

#include <atomic>

namespace overify {

ObjectState::ObjectState(ExprContext& ctx, uint64_t size) {
  bytes_.assign(size, ctx.Constant(0, 8));
}

uint64_t AddressSpace::Allocate(ExprContext& ctx, uint64_t size, bool read_only, bool is_alloca,
                                std::string name) {
  uint64_t id = next_id_++;
  meta_[id] = MemoryObject{id, size, read_only, is_alloca, std::move(name)};
  contents_[id] = std::make_shared<ObjectState>(ctx, size);
  return id;
}

void AddressSpace::Free(uint64_t object_id) {
  meta_.erase(object_id);
  contents_.erase(object_id);
}

void AddressSpace::RewriteContents(const std::function<const Expr*(const Expr*)>& fn) {
  for (auto& [id, state] : contents_) {
    auto fresh = std::make_shared<ObjectState>(*state);
    for (uint64_t i = 0; i < fresh->size(); ++i) {
      fresh->SetByte(i, fn(state->Byte(i)));
    }
    state = std::move(fresh);
  }
}

ObjectState& AddressSpace::Write(uint64_t object_id) {
  std::shared_ptr<ObjectState>& state = contents_.at(object_id);
  if (state.use_count() > 1) {
    state = std::make_shared<ObjectState>(*state);
  } else {
    // Sole owner: mutate in place. A count of 1 may have just been
    // produced by another worker dropping its reference after reading the
    // object (a thief's RewriteContents); that drop is a release
    // decrement, so pair it with an acquire before writing over the bytes
    // it read.
    std::atomic_thread_fence(std::memory_order_acquire);
  }
  return *state;
}

}  // namespace overify
