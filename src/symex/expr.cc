#include "src/symex/expr.h"

#include <unordered_map>

#include "src/ir/constant.h"
#include "src/ir/fold.h"

namespace overify {

namespace {

Opcode ExprKindToOpcode(ExprKind kind) {
  switch (kind) {
    case ExprKind::kAdd:
      return Opcode::kAdd;
    case ExprKind::kSub:
      return Opcode::kSub;
    case ExprKind::kMul:
      return Opcode::kMul;
    case ExprKind::kUDiv:
      return Opcode::kUDiv;
    case ExprKind::kSDiv:
      return Opcode::kSDiv;
    case ExprKind::kURem:
      return Opcode::kURem;
    case ExprKind::kSRem:
      return Opcode::kSRem;
    case ExprKind::kAnd:
      return Opcode::kAnd;
    case ExprKind::kOr:
      return Opcode::kOr;
    case ExprKind::kXor:
      return Opcode::kXor;
    case ExprKind::kShl:
      return Opcode::kShl;
    case ExprKind::kLShr:
      return Opcode::kLShr;
    case ExprKind::kAShr:
      return Opcode::kAShr;
    default:
      OVERIFY_UNREACHABLE("not a binary expr kind");
  }
}

bool IsCommutativeExpr(ExprKind kind) {
  switch (kind) {
    case ExprKind::kAdd:
    case ExprKind::kMul:
    case ExprKind::kAnd:
    case ExprKind::kOr:
    case ExprKind::kXor:
    case ExprKind::kEq:
      return true;
    default:
      return false;
  }
}

// Canonical operand order for commutative kinds: constants to the right,
// otherwise ordered by structural hash. Hashes are context-independent
// (unlike creation ids), so every ExprContext builds the identical
// structure for the same logical expression — the invariant the
// scheduler's cross-context state migration and the solver's deterministic
// models rely on. Creation ids only break the (vanishingly rare) hash tie.
bool SwapForCanonicalOrder(const Expr* a, const Expr* b) {
  if (a->IsConstant()) {
    return true;
  }
  if (b->IsConstant()) {
    return false;
  }
  if (a->hash() != b->hash()) {
    return b->hash() < a->hash();
  }
  return b->id() < a->id();
}

}  // namespace

uint64_t ExprInterner::HashKey(const Key& key) {
  // Children are interned, so their stored hashes are already canonical and
  // well-mixed; leaf payloads get one Mix round each.
  uint64_t h = HashMix64((static_cast<uint64_t>(key.kind) << 32) ^
                   (static_cast<uint64_t>(key.width) << 16) ^ key.extract_offset);
  h = HashMix64(h ^ key.constant ^ (static_cast<uint64_t>(key.symbol) << 1));
  if (key.a != nullptr) {
    h = HashMix64(h ^ key.a->hash());
  }
  if (key.b != nullptr) {
    h = HashMix64(h ^ key.b->hash());
  }
  if (key.c != nullptr) {
    h = HashMix64(h ^ key.c->hash());
  }
  return h != 0 ? h : 1;
}

bool ExprInterner::Matches(const Expr& e, const Key& key) {
  return e.kind_ == key.kind && e.width_ == key.width && e.constant_ == key.constant &&
         e.symbol_ == key.symbol && e.a_ == key.a && e.b_ == key.b && e.c_ == key.c &&
         e.extract_offset_ == key.extract_offset;
}

ExprInterner::ExprInterner(bool concurrent) : concurrent_(concurrent) {
  size_t num_shards = concurrent ? kConcurrentShards : 1;
  shards_ = std::make_unique<Shard[]>(num_shards);
  shard_mask_ = num_shards - 1;
  // A private interner starts with the old flat table's size; concurrent
  // shards start smaller since the load spreads across the stripes.
  size_t initial = concurrent ? 64 : 256;
  for (size_t i = 0; i < num_shards; ++i) {
    shards_[i].table.assign(initial, nullptr);
    shards_[i].mask = initial - 1;
  }
}

void ExprInterner::GrowTable(Shard& shard) {
  std::vector<Expr*> bigger(shard.table.size() * 2, nullptr);
  size_t mask = bigger.size() - 1;
  for (Expr* e : shard.table) {
    if (e == nullptr) {
      continue;
    }
    size_t idx = e->hash_ & mask;
    while (bigger[idx] != nullptr) {
      idx = (idx + 1) & mask;
    }
    bigger[idx] = e;
  }
  shard.table = std::move(bigger);
  shard.mask = mask;
}

const Expr* ExprInterner::Intern(const Key& key) {
  return InternHashed(key, HashKey(key));
}

const Expr* ExprInterner::InternHashed(const Key& key, uint64_t hash) {
  Shard& shard = ShardFor(hash);
  std::unique_lock<std::mutex> lock(shard.mutex, std::defer_lock);
  if (concurrent_) {
    lock.lock();
  }
  // Keep the load factor below ~0.7 so probe sequences stay short.
  if ((shard.exprs.size() + 1) * 10 >= shard.table.size() * 7) {
    GrowTable(shard);
  }
  size_t idx = hash & shard.mask;
  while (shard.table[idx] != nullptr) {
    Expr* slot = shard.table[idx];
    if (slot->hash_ == hash && Matches(*slot, key)) {
      return slot;
    }
    idx = (idx + 1) & shard.mask;
  }
  auto owned = std::unique_ptr<Expr>(new Expr());
  Expr* e = owned.get();
  e->kind_ = key.kind;
  e->width_ = static_cast<uint8_t>(key.width);
  e->constant_ = key.constant;
  e->symbol_ = key.symbol;
  e->a_ = key.a;
  e->b_ = key.b;
  e->c_ = key.c;
  e->extract_offset_ = key.extract_offset;
  // Relaxed is enough: ids need only be unique and dense, and a node's
  // children always got theirs first (they were interned before it).
  e->id_ = next_id_.fetch_add(1, std::memory_order_relaxed);
  e->hash_ = hash;
  if (key.kind == ExprKind::kSymbol) {
    e->support_.Add(key.symbol);
  }
  for (const Expr* child : {key.a, key.b, key.c}) {
    if (child != nullptr) {
      e->support_.UnionWith(child->Support());
    }
  }
  shard.exprs.push_back(std::move(owned));
  shard.table[idx] = e;
  return e;
}

size_t ExprInterner::NumExprs() const {
  size_t total = 0;
  for (size_t i = 0; i <= shard_mask_; ++i) {
    Shard& shard = shards_[i];
    std::unique_lock<std::mutex> lock(shard.mutex, std::defer_lock);
    if (concurrent_) {
      lock.lock();
    }
    total += shard.exprs.size();
  }
  return total;
}

bool ExprInterner::Owns(const Expr* e) const {
  Shard& shard = ShardFor(e->hash());
  std::unique_lock<std::mutex> lock(shard.mutex, std::defer_lock);
  if (concurrent_) {
    lock.lock();
  }
  size_t idx = e->hash() & shard.mask;
  while (shard.table[idx] != nullptr) {
    if (shard.table[idx] == e) {
      return true;
    }
    idx = (idx + 1) & shard.mask;
  }
  return false;
}

ExprContext::ExprContext() : ExprContext(static_cast<ExprInterner*>(nullptr)) {}

ExprContext::ExprContext(ExprInterner& shared) : ExprContext(&shared) {}

ExprContext::ExprContext(ExprInterner* shared) {
  if (shared == nullptr) {
    owned_interner_ = std::make_unique<ExprInterner>(/*concurrent=*/false);
    interner_ = owned_interner_.get();
  } else {
    interner_ = shared;
  }
  // Inline memo slots are safe only when this context is the nodes' sole
  // user; any externally-provided interner may have other contexts (now or
  // later), so those memoize into the id-indexed tables.
  shared_memos_ = owned_interner_ == nullptr;
  if (interner_->concurrent()) {
    // Direct-mapped local intern cache (power of two); see the member
    // comment. 8192 slots cover the workloads' hot DAGs comfortably.
    intern_cache_.assign(8192, nullptr);
  }
  true_ = Constant(1, 1);
  false_ = Constant(0, 1);
}

const Expr* ExprContext::Intern(const Key& key) {
  if (intern_cache_.empty()) {
    return interner_->Intern(key);
  }
  uint64_t hash = ExprInterner::HashKey(key);
  size_t idx = hash & (intern_cache_.size() - 1);
  const Expr* cached = intern_cache_[idx];
  if (cached != nullptr && cached->hash() == hash && ExprInterner::Matches(*cached, key)) {
    return cached;
  }
  const Expr* e = interner_->InternHashed(key, hash);
  intern_cache_[idx] = e;
  return e;
}

template <typename Slot>
Slot& ExprContext::SlotFor(std::vector<Slot>& slots, const Expr* e) {
  uint64_t id = e->id();
  if (id >= slots.size()) {
    size_t grown = slots.empty() ? 256 : slots.size() * 2;
    slots.resize(std::max<size_t>(id + 1, grown));
  }
  return slots[id];
}

const Expr* ExprContext::Constant(uint64_t value, unsigned width) {
  OVERIFY_ASSERT(width >= 1 && width <= 64, "bad width");
  Key key{};
  key.kind = ExprKind::kConstant;
  key.width = width;
  key.constant = TruncateToWidth(value, width);
  return Intern(key);
}

const Expr* ExprContext::Symbol(unsigned index) {
  if (index < symbols_.size() && symbols_[index] != nullptr) {
    return symbols_[index];
  }
  Key key{};
  key.kind = ExprKind::kSymbol;
  key.width = 8;
  key.symbol = index;
  const Expr* e = Intern(key);
  if (index >= symbols_.size()) {
    symbols_.resize(index + 1, nullptr);
  }
  symbols_[index] = e;
  return e;
}

const Expr* ExprContext::Binary(ExprKind kind, const Expr* a, const Expr* b) {
  OVERIFY_ASSERT(a->width() == b->width(), "binary width mismatch");
  unsigned width = a->width();

  // Constant folding.
  if (a->IsConstant() && b->IsConstant()) {
    auto folded =
        FoldBinary(ExprKindToOpcode(kind), width, a->constant_value(), b->constant_value());
    if (folded.has_value()) {
      return Constant(*folded, width);
    }
    // Trapping constant op: callers guard division/shift, so this indicates
    // a miscompile upstream.
    OVERIFY_UNREACHABLE("trapping constant operation reached expression builder");
  }

  if (IsCommutativeExpr(kind) && SwapForCanonicalOrder(a, b)) {
    std::swap(a, b);
  }

  // Identities.
  if (b->IsConstant()) {
    uint64_t c = b->constant_value();
    switch (kind) {
      case ExprKind::kAdd:
      case ExprKind::kSub:
      case ExprKind::kOr:
      case ExprKind::kXor:
      case ExprKind::kShl:
      case ExprKind::kLShr:
      case ExprKind::kAShr:
        if (c == 0) {
          return a;
        }
        break;
      case ExprKind::kMul:
        if (c == 0) {
          return Constant(0, width);
        }
        if (c == 1) {
          return a;
        }
        break;
      case ExprKind::kUDiv:
      case ExprKind::kSDiv:
        if (c == 1) {
          return a;
        }
        break;
      case ExprKind::kAnd:
        if (c == 0) {
          return Constant(0, width);
        }
        if (c == TruncateToWidth(~uint64_t{0}, width)) {
          return a;
        }
        break;
      default:
        break;
    }
  }
  if (a == b) {
    switch (kind) {
      case ExprKind::kSub:
      case ExprKind::kXor:
        return Constant(0, width);
      case ExprKind::kAnd:
      case ExprKind::kOr:
        return a;
      default:
        break;
    }
  }

  Key key{};
  key.kind = kind;
  key.width = width;
  key.a = a;
  key.b = b;
  return Intern(key);
}

const Expr* ExprContext::Compare(ICmpPredicate pred, const Expr* a, const Expr* b) {
  OVERIFY_ASSERT(a->width() == b->width(), "compare width mismatch");
  unsigned width = a->width();
  if (a->IsConstant() && b->IsConstant()) {
    return Bool(FoldICmp(pred, width, a->constant_value(), b->constant_value()));
  }
  if (a == b) {
    return Bool(FoldICmp(pred, width, 0, 0));
  }
  switch (pred) {
    case ICmpPredicate::kEq:
      break;
    case ICmpPredicate::kNe:
      return Not(Compare(ICmpPredicate::kEq, a, b));
    case ICmpPredicate::kULT:
    case ICmpPredicate::kULE:
    case ICmpPredicate::kSLT:
    case ICmpPredicate::kSLE:
      break;
    case ICmpPredicate::kUGT:
      return Compare(ICmpPredicate::kULT, b, a);
    case ICmpPredicate::kUGE:
      return Compare(ICmpPredicate::kULE, b, a);
    case ICmpPredicate::kSGT:
      return Compare(ICmpPredicate::kSLT, b, a);
    case ICmpPredicate::kSGE:
      return Compare(ICmpPredicate::kSLE, b, a);
  }

  ExprKind kind;
  switch (pred) {
    case ICmpPredicate::kEq:
      kind = ExprKind::kEq;
      break;
    case ICmpPredicate::kULT:
      kind = ExprKind::kUlt;
      break;
    case ICmpPredicate::kULE:
      kind = ExprKind::kUle;
      break;
    case ICmpPredicate::kSLT:
      kind = ExprKind::kSlt;
      break;
    default:
      kind = ExprKind::kSle;
      break;
  }
  // Canonicalize equality operand order.
  if (kind == ExprKind::kEq && SwapForCanonicalOrder(a, b)) {
    std::swap(a, b);
  }
  Key key{};
  key.kind = kind;
  key.width = 1;
  key.a = a;
  key.b = b;
  return Intern(key);
}

const Expr* ExprContext::Not(const Expr* e) {
  OVERIFY_ASSERT(e->IsBool(), "Not on non-boolean");
  if (e->IsConstant()) {
    return Bool(e->constant_value() == 0);
  }
  // Not(Not(x)) => x  (Not is Xor(x, 1)).
  if (e->kind() == ExprKind::kXor && e->b()->IsTrue()) {
    return e->a();
  }
  // Negating a canonical comparison stays inside the canonical comparison
  // set: ¬(a < b) = b <= a and so on. Keeps solver-visible constraints
  // Xor-free, which is what lets the preprocessor's range extraction see
  // through branch negations.
  switch (e->kind()) {
    case ExprKind::kUlt:
      return Compare(ICmpPredicate::kULE, e->b(), e->a());
    case ExprKind::kUle:
      return Compare(ICmpPredicate::kULT, e->b(), e->a());
    case ExprKind::kSlt:
      return Compare(ICmpPredicate::kSLE, e->b(), e->a());
    case ExprKind::kSle:
      return Compare(ICmpPredicate::kSLT, e->b(), e->a());
    default:
      break;
  }
  return Binary(ExprKind::kXor, e, true_);
}

const Expr* ExprContext::Select(const Expr* cond, const Expr* a, const Expr* b) {
  OVERIFY_ASSERT(cond->IsBool(), "select condition must be boolean");
  OVERIFY_ASSERT(a->width() == b->width(), "select arm width mismatch");
  if (cond->IsConstant()) {
    return cond->constant_value() != 0 ? a : b;
  }
  if (a == b) {
    return a;
  }
  if (a->width() == 1 && a->IsTrue() && b->IsFalse()) {
    return cond;
  }
  if (a->width() == 1 && a->IsFalse() && b->IsTrue()) {
    return Not(cond);
  }
  Key key{};
  key.kind = ExprKind::kSelect;
  key.width = a->width();
  key.a = cond;
  key.b = a;
  key.c = b;
  return Intern(key);
}

const Expr* ExprContext::ZExt(const Expr* e, unsigned width) {
  OVERIFY_ASSERT(width >= e->width(), "zext must widen");
  if (width == e->width()) {
    return e;
  }
  if (e->IsConstant()) {
    return Constant(e->constant_value(), width);
  }
  if (e->kind() == ExprKind::kZExt) {
    return ZExt(e->a(), width);
  }
  Key key{};
  key.kind = ExprKind::kZExt;
  key.width = width;
  key.a = e;
  return Intern(key);
}

const Expr* ExprContext::SExt(const Expr* e, unsigned width) {
  OVERIFY_ASSERT(width >= e->width(), "sext must widen");
  if (width == e->width()) {
    return e;
  }
  if (e->IsConstant()) {
    return Constant(
        static_cast<uint64_t>(SignExtend(e->constant_value(), e->width())), width);
  }
  if (e->kind() == ExprKind::kSExt) {
    return SExt(e->a(), width);
  }
  // sext of a boolean-producing zext is still zero/one in the low bit.
  Key key{};
  key.kind = ExprKind::kSExt;
  key.width = width;
  key.a = e;
  return Intern(key);
}

const Expr* ExprContext::Trunc(const Expr* e, unsigned width) {
  OVERIFY_ASSERT(width <= e->width(), "trunc must narrow");
  if (width == e->width()) {
    return e;
  }
  return Extract(e, 0, width);
}

const Expr* ExprContext::Extract(const Expr* e, unsigned offset, unsigned width) {
  OVERIFY_ASSERT(offset + width <= e->width(), "extract out of range");
  if (offset == 0 && width == e->width()) {
    return e;
  }
  if (e->IsConstant()) {
    return Constant(e->constant_value() >> offset, width);
  }
  switch (e->kind()) {
    case ExprKind::kExtract:
      return Extract(e->a(), e->extract_offset() + offset, width);
    case ExprKind::kConcat: {
      unsigned low_width = e->b()->width();
      if (offset + width <= low_width) {
        return Extract(e->b(), offset, width);
      }
      if (offset >= low_width) {
        return Extract(e->a(), offset - low_width, width);
      }
      break;  // straddles the boundary: keep symbolic
    }
    case ExprKind::kZExt: {
      unsigned src_width = e->a()->width();
      if (offset + width <= src_width) {
        return Extract(e->a(), offset, width);
      }
      if (offset >= src_width) {
        return Constant(0, width);
      }
      break;
    }
    default:
      break;
  }
  Key key{};
  key.kind = ExprKind::kExtract;
  key.width = width;
  key.a = e;
  key.extract_offset = offset;
  return Intern(key);
}

const Expr* ExprContext::Concat(const Expr* high, const Expr* low) {
  unsigned width = high->width() + low->width();
  OVERIFY_ASSERT(width <= 64, "concat too wide");
  if (high->IsConstant() && low->IsConstant()) {
    return Constant((high->constant_value() << low->width()) | low->constant_value(), width);
  }
  // Concat(Extract(x, o+wl, wh), Extract(x, o, wl)) => Extract(x, o, wl+wh).
  if (high->kind() == ExprKind::kExtract && low->kind() == ExprKind::kExtract &&
      high->a() == low->a() &&
      high->extract_offset() == low->extract_offset() + low->width()) {
    return Extract(low->a(), low->extract_offset(), width);
  }
  // Concat(0, x) => ZExt(x).
  if (high->IsConstant() && high->constant_value() == 0) {
    return ZExt(low, width);
  }
  Key key{};
  key.kind = ExprKind::kConcat;
  key.width = width;
  key.a = high;
  key.b = low;
  return Intern(key);
}

const Expr* ExprContext::ImportNode(const Expr* src, const Expr* a, const Expr* b,
                                    const Expr* c) {
  switch (src->kind()) {
    case ExprKind::kConstant:
      return Constant(src->constant_value(), src->width());
    case ExprKind::kSymbol:
      return Symbol(src->symbol_index());
    default:
      break;
  }
  Key key{};
  key.kind = src->kind();
  key.width = src->width();
  key.a = a;
  key.b = b;
  key.c = c;
  key.extract_offset = src->extract_offset();
  return Intern(key);
}

const Expr* ExprContext::Rebuild(const Expr* src, const Expr* a, const Expr* b,
                                 const Expr* c) {
  switch (src->kind()) {
    case ExprKind::kConstant:
      return Constant(src->constant_value(), src->width());
    case ExprKind::kSymbol:
      return Symbol(src->symbol_index());
    case ExprKind::kAdd:
    case ExprKind::kSub:
    case ExprKind::kMul:
    case ExprKind::kUDiv:
    case ExprKind::kSDiv:
    case ExprKind::kURem:
    case ExprKind::kSRem:
    case ExprKind::kAnd:
    case ExprKind::kOr:
    case ExprKind::kXor:
    case ExprKind::kShl:
    case ExprKind::kLShr:
    case ExprKind::kAShr:
      if (a->IsConstant() && b->IsConstant()) {
        auto folded = FoldBinary(ExprKindToOpcode(src->kind()), src->width(),
                                 a->constant_value(), b->constant_value());
        if (folded.has_value()) {
          return Constant(*folded, src->width());
        }
        // Trapping constant pair (division by zero, oversized shift):
        // Binary() treats this as a miscompile, but substitution can expose
        // it inside a guarded arm of a select or a contradictory set.
        // Intern the raw node; Evaluate defines its value as 0.
        return ImportNode(src, a, b, c);
      }
      return Binary(src->kind(), a, b);
    case ExprKind::kEq:
      return Compare(ICmpPredicate::kEq, a, b);
    case ExprKind::kUlt:
      return Compare(ICmpPredicate::kULT, a, b);
    case ExprKind::kUle:
      return Compare(ICmpPredicate::kULE, a, b);
    case ExprKind::kSlt:
      return Compare(ICmpPredicate::kSLT, a, b);
    case ExprKind::kSle:
      return Compare(ICmpPredicate::kSLE, a, b);
    case ExprKind::kSelect:
      return Select(a, b, c);
    case ExprKind::kZExt:
      return ZExt(a, src->width());
    case ExprKind::kSExt:
      return SExt(a, src->width());
    case ExprKind::kTrunc:
      return Trunc(a, src->width());
    case ExprKind::kExtract:
      return Extract(a, src->extract_offset(), src->width());
    case ExprKind::kConcat:
      return Concat(a, b);
  }
  OVERIFY_UNREACHABLE("unhandled kind in Rebuild");
}

const Expr* ExprContext::Substitute(const Expr* e, const std::vector<int16_t>& binding,
                                    const SupportSet& bound) {
  if (!e->Support().Intersects(bound)) {
    return e;
  }
  // Iterative post-order over the affected subgraph only: subtrees disjoint
  // from `bound` pass through untouched (and are never walked).
  std::unordered_map<const Expr*, const Expr*>& memo = subst_memo_;
  memo.clear();
  std::vector<const Expr*>& stack = subst_stack_;
  stack.assign(1, e);
  while (!stack.empty()) {
    const Expr* cur = stack.back();
    if (memo.count(cur) != 0) {
      stack.pop_back();
      continue;
    }
    if (cur->kind() == ExprKind::kSymbol) {
      unsigned index = cur->symbol_index();
      OVERIFY_ASSERT(index < binding.size() && binding[index] >= 0,
                     "bound symbol without a binding");
      memo[cur] = Constant(static_cast<uint64_t>(binding[index]), 8);
      stack.pop_back();
      continue;
    }
    bool ready = true;
    for (const Expr* child : {cur->a(), cur->b(), cur->c()}) {
      if (child != nullptr && child->Support().Intersects(bound) &&
          memo.count(child) == 0) {
        stack.push_back(child);
        ready = false;
      }
    }
    if (!ready) {
      continue;
    }
    auto resolve = [&](const Expr* child) -> const Expr* {
      if (child == nullptr || !child->Support().Intersects(bound)) {
        return child;
      }
      return memo.at(child);
    };
    memo[cur] = Rebuild(cur, resolve(cur->a()), resolve(cur->b()), resolve(cur->c()));
    stack.pop_back();
  }
  return memo.at(e);
}

std::vector<const Expr*> ExprContext::ToBytes(const Expr* e) {
  OVERIFY_ASSERT(e->width() % 8 == 0 || e->width() == 1, "unaligned width");
  if (e->width() == 1) {
    // Booleans are stored as one byte holding 0/1.
    return {ZExt(e, 8)};
  }
  std::vector<const Expr*> bytes;
  for (unsigned offset = 0; offset < e->width(); offset += 8) {
    bytes.push_back(Extract(e, offset, 8));
  }
  return bytes;
}

const Expr* ExprContext::FromBytes(const std::vector<const Expr*>& bytes) {
  OVERIFY_ASSERT(!bytes.empty() && bytes.size() <= 8, "bad byte count");
  const Expr* value = bytes[0];
  for (size_t i = 1; i < bytes.size(); ++i) {
    value = Concat(bytes[i], value);
  }
  return value;
}

uint64_t ExprContext::Evaluate(const Expr* e, const std::vector<uint8_t>& bytes) {
  return shared_memos_ ? EvaluateImpl<true>(e, bytes) : EvaluateImpl<false>(e, bytes);
}

template <bool kSharedMemos>
uint64_t ExprContext::EvaluateImpl(const Expr* e, const std::vector<uint8_t>& bytes) {
  // Leaves bypass the memo entirely: constants never change and symbols are
  // a direct array read.
  if (e->kind_ == ExprKind::kConstant) {
    return e->constant_;
  }
  if (e->kind_ == ExprKind::kSymbol) {
    OVERIFY_ASSERT(e->symbol_ < bytes.size(), "assignment missing symbol");
    return bytes[e->symbol_];
  }
  if (!kSharedMemos) {
    if (e->eval_gen_ == eval_generation_) {
      ++eval_memo_hits_;
      return e->eval_value_;
    }
  } else {
    EvalSlot& slot = SlotFor(eval_memo_, e);
    if (slot.gen == eval_generation_) {
      ++eval_memo_hits_;
      return slot.value;
    }
  }
  uint64_t result = 0;
  switch (e->kind()) {
    case ExprKind::kConstant:
    case ExprKind::kSymbol:
      OVERIFY_UNREACHABLE("leaves handled above");
      break;
    case ExprKind::kEq:
      result = EvaluateImpl<kSharedMemos>(e->a(), bytes) == EvaluateImpl<kSharedMemos>(e->b(), bytes) ? 1 : 0;
      break;
    case ExprKind::kUlt:
      result = FoldICmp(ICmpPredicate::kULT, e->a()->width(), EvaluateImpl<kSharedMemos>(e->a(), bytes),
                        EvaluateImpl<kSharedMemos>(e->b(), bytes))
                   ? 1
                   : 0;
      break;
    case ExprKind::kUle:
      result = FoldICmp(ICmpPredicate::kULE, e->a()->width(), EvaluateImpl<kSharedMemos>(e->a(), bytes),
                        EvaluateImpl<kSharedMemos>(e->b(), bytes))
                   ? 1
                   : 0;
      break;
    case ExprKind::kSlt:
      result = FoldICmp(ICmpPredicate::kSLT, e->a()->width(), EvaluateImpl<kSharedMemos>(e->a(), bytes),
                        EvaluateImpl<kSharedMemos>(e->b(), bytes))
                   ? 1
                   : 0;
      break;
    case ExprKind::kSle:
      result = FoldICmp(ICmpPredicate::kSLE, e->a()->width(), EvaluateImpl<kSharedMemos>(e->a(), bytes),
                        EvaluateImpl<kSharedMemos>(e->b(), bytes))
                   ? 1
                   : 0;
      break;
    case ExprKind::kSelect:
      result = EvaluateImpl<kSharedMemos>(e->a(), bytes) != 0 ? EvaluateImpl<kSharedMemos>(e->b(), bytes) : EvaluateImpl<kSharedMemos>(e->c(), bytes);
      break;
    case ExprKind::kZExt:
      result = EvaluateImpl<kSharedMemos>(e->a(), bytes);
      break;
    case ExprKind::kSExt:
      result = TruncateToWidth(
          static_cast<uint64_t>(SignExtend(EvaluateImpl<kSharedMemos>(e->a(), bytes), e->a()->width())),
          e->width());
      break;
    case ExprKind::kTrunc:
      result = TruncateToWidth(EvaluateImpl<kSharedMemos>(e->a(), bytes), e->width());
      break;
    case ExprKind::kExtract:
      result = TruncateToWidth(EvaluateImpl<kSharedMemos>(e->a(), bytes) >> e->extract_offset(), e->width());
      break;
    case ExprKind::kConcat:
      result = (EvaluateImpl<kSharedMemos>(e->a(), bytes) << e->b()->width()) | EvaluateImpl<kSharedMemos>(e->b(), bytes);
      break;
    default: {
      // Binary arithmetic. Division by zero cannot occur on guarded paths;
      // solver probing may still hit it, in which case the result is defined
      // as 0 (such probes are validated against the real constraints anyway).
      auto folded = FoldBinary(ExprKindToOpcode(e->kind()), e->width(),
                               EvaluateImpl<kSharedMemos>(e->a(), bytes), EvaluateImpl<kSharedMemos>(e->b(), bytes));
      result = folded.value_or(0);
      break;
    }
  }
  if (!kSharedMemos) {
    e->eval_gen_ = eval_generation_;
    e->eval_value_ = result;
  } else {
    // Re-acquire the slot: the recursive child evaluations above may have
    // grown the table and invalidated any reference taken before them.
    EvalSlot& slot = SlotFor(eval_memo_, e);
    slot.gen = eval_generation_;
    slot.value = result;
  }
  return result;
}

namespace {

// Clamp an interval to a width's value range; any inconsistency widens to
// full range (soundness first).
ExprContext::UInterval FullRange(unsigned width) {
  return ExprContext::UInterval{0, TruncateToWidth(~uint64_t{0}, width)};
}

bool AddOverflowsU(uint64_t a, uint64_t b, uint64_t& out) {
  return __builtin_add_overflow(a, b, &out);
}

bool MulOverflowsU(uint64_t a, uint64_t b, uint64_t& out) {
  return __builtin_mul_overflow(a, b, &out);
}

}  // namespace

template <bool kSharedMemos, typename SymFn>
UInterval ExprContext::EvalIntervalWith(const Expr* e, const SymFn& sym) {
  if (e->kind() == ExprKind::kConstant) {
    return UInterval{e->constant_value(), e->constant_value()};
  }
  if (!kSharedMemos) {
    if (e->interval_gen_ == interval_generation_) {
      ++interval_memo_hits_;
      return e->interval_value_;
    }
  } else {
    IntervalSlot& slot = SlotFor(interval_memo_, e);
    if (slot.gen == interval_generation_) {
      ++interval_memo_hits_;
      return slot.value;
    }
  }
  unsigned width = e->width();
  UInterval result = FullRange(width);
  switch (e->kind()) {
    case ExprKind::kConstant:
      result = UInterval{e->constant_value(), e->constant_value()};
      break;
    case ExprKind::kSymbol:
      result = sym(e->symbol_index());
      break;
    case ExprKind::kAdd: {
      UInterval a = EvalIntervalWith<kSharedMemos>(e->a(), sym);
      UInterval b = EvalIntervalWith<kSharedMemos>(e->b(), sym);
      uint64_t lo;
      uint64_t hi;
      if (!AddOverflowsU(a.lo, b.lo, lo) && !AddOverflowsU(a.hi, b.hi, hi) &&
          hi <= FullRange(width).hi) {
        result = UInterval{lo, hi};
      }
      break;
    }
    case ExprKind::kSub: {
      UInterval a = EvalIntervalWith<kSharedMemos>(e->a(), sym);
      UInterval b = EvalIntervalWith<kSharedMemos>(e->b(), sym);
      if (a.lo >= b.hi) {  // no wraparound possible
        result = UInterval{a.lo - b.hi, a.hi - b.lo};
      }
      break;
    }
    case ExprKind::kMul: {
      UInterval a = EvalIntervalWith<kSharedMemos>(e->a(), sym);
      UInterval b = EvalIntervalWith<kSharedMemos>(e->b(), sym);
      uint64_t lo;
      uint64_t hi;
      if (!MulOverflowsU(a.lo, b.lo, lo) && !MulOverflowsU(a.hi, b.hi, hi) &&
          hi <= FullRange(width).hi) {
        result = UInterval{lo, hi};
      }
      break;
    }
    case ExprKind::kUDiv: {
      UInterval a = EvalIntervalWith<kSharedMemos>(e->a(), sym);
      UInterval b = EvalIntervalWith<kSharedMemos>(e->b(), sym);
      if (b.lo > 0) {
        result = UInterval{a.lo / b.hi, a.hi / b.lo};
      }
      break;
    }
    case ExprKind::kURem: {
      UInterval b = EvalIntervalWith<kSharedMemos>(e->b(), sym);
      if (b.hi > 0) {
        result = UInterval{0, b.hi - 1};
      }
      break;
    }
    case ExprKind::kAnd: {
      UInterval a = EvalIntervalWith<kSharedMemos>(e->a(), sym);
      UInterval b = EvalIntervalWith<kSharedMemos>(e->b(), sym);
      result = UInterval{0, std::min(a.hi, b.hi)};
      if (a.IsSingleton() && b.IsSingleton()) {
        uint64_t v = a.lo & b.lo;
        result = UInterval{v, v};
      }
      break;
    }
    case ExprKind::kOr: {
      UInterval a = EvalIntervalWith<kSharedMemos>(e->a(), sym);
      UInterval b = EvalIntervalWith<kSharedMemos>(e->b(), sym);
      if (a.IsSingleton() && b.IsSingleton()) {
        uint64_t v = a.lo | b.lo;
        result = UInterval{v, v};
      } else {
        // a|b >= max(a,b) >= max(lo_a, lo_b); a|b < 2^ceil covering both his.
        uint64_t bound = 1;
        while (bound - 1 < a.hi || bound - 1 < b.hi) {
          if (bound > (uint64_t{1} << 62)) {
            bound = 0;
            break;
          }
          bound <<= 1;
        }
        result = UInterval{std::max(a.lo, b.lo),
                           bound == 0 ? FullRange(width).hi : bound - 1};
      }
      break;
    }
    case ExprKind::kXor: {
      UInterval a = EvalIntervalWith<kSharedMemos>(e->a(), sym);
      UInterval b = EvalIntervalWith<kSharedMemos>(e->b(), sym);
      if (a.IsSingleton() && b.IsSingleton()) {
        uint64_t v = a.lo ^ b.lo;
        result = UInterval{v, v};
      }
      break;
    }
    case ExprKind::kEq: {
      UInterval a = EvalIntervalWith<kSharedMemos>(e->a(), sym);
      UInterval b = EvalIntervalWith<kSharedMemos>(e->b(), sym);
      if (a.hi < b.lo || b.hi < a.lo) {
        result = UInterval{0, 0};  // disjoint: never equal
      } else if (a.IsSingleton() && b.IsSingleton()) {
        uint64_t v = a.lo == b.lo ? 1 : 0;
        result = UInterval{v, v};
      } else {
        result = UInterval{0, 1};
      }
      break;
    }
    case ExprKind::kUlt: {
      UInterval a = EvalIntervalWith<kSharedMemos>(e->a(), sym);
      UInterval b = EvalIntervalWith<kSharedMemos>(e->b(), sym);
      if (a.hi < b.lo) {
        result = UInterval{1, 1};
      } else if (a.lo >= b.hi) {
        result = UInterval{0, 0};
      } else {
        result = UInterval{0, 1};
      }
      break;
    }
    case ExprKind::kUle: {
      UInterval a = EvalIntervalWith<kSharedMemos>(e->a(), sym);
      UInterval b = EvalIntervalWith<kSharedMemos>(e->b(), sym);
      if (a.hi <= b.lo) {
        result = UInterval{1, 1};
      } else if (a.lo > b.hi) {
        result = UInterval{0, 0};
      } else {
        result = UInterval{0, 1};
      }
      break;
    }
    case ExprKind::kSlt:
    case ExprKind::kSle: {
      // Signed: decide only when both operand intervals avoid the sign
      // boundary of the operand width, where signed order equals unsigned.
      unsigned operand_width = e->a()->width();
      uint64_t sign_bit = uint64_t{1} << (operand_width - 1);
      UInterval a = EvalIntervalWith<kSharedMemos>(e->a(), sym);
      UInterval b = EvalIntervalWith<kSharedMemos>(e->b(), sym);
      bool a_nonneg = a.hi < sign_bit;
      bool b_nonneg = b.hi < sign_bit;
      bool a_neg = a.lo >= sign_bit;
      bool b_neg = b.lo >= sign_bit;
      result = UInterval{0, 1};
      if (a_neg && b_nonneg) {
        result = UInterval{1, 1};  // negative < non-negative
      } else if (a_nonneg && b_neg) {
        result = UInterval{0, 0};
      } else if ((a_nonneg && b_nonneg) || (a_neg && b_neg)) {
        // Same sign region: unsigned order applies.
        bool strict = e->kind() == ExprKind::kSlt;
        if (strict ? a.hi < b.lo : a.hi <= b.lo) {
          result = UInterval{1, 1};
        } else if (strict ? a.lo >= b.hi : a.lo > b.hi) {
          result = UInterval{0, 0};
        }
      }
      break;
    }
    case ExprKind::kSelect: {
      UInterval cond = EvalIntervalWith<kSharedMemos>(e->a(), sym);
      if (cond.IsSingleton()) {
        result = EvalIntervalWith<kSharedMemos>(cond.lo != 0 ? e->b() : e->c(), sym);
      } else {
        UInterval t = EvalIntervalWith<kSharedMemos>(e->b(), sym);
        UInterval f = EvalIntervalWith<kSharedMemos>(e->c(), sym);
        result = UInterval{std::min(t.lo, f.lo), std::max(t.hi, f.hi)};
      }
      break;
    }
    case ExprKind::kZExt:
      result = EvalIntervalWith<kSharedMemos>(e->a(), sym);
      break;
    case ExprKind::kSExt: {
      unsigned src_width = e->a()->width();
      UInterval a = EvalIntervalWith<kSharedMemos>(e->a(), sym);
      if (a.hi < (uint64_t{1} << (src_width - 1))) {
        result = a;  // non-negative: sign extension is the identity
      }
      break;
    }
    case ExprKind::kTrunc:
    case ExprKind::kExtract: {
      if (e->kind() == ExprKind::kTrunc || e->extract_offset() == 0) {
        UInterval a = EvalIntervalWith<kSharedMemos>(e->a(), sym);
        if (a.hi <= FullRange(width).hi) {
          result = a;  // value fits: low bits are the value itself
        }
      }
      break;
    }
    case ExprKind::kConcat: {
      UInterval high = EvalIntervalWith<kSharedMemos>(e->a(), sym);
      UInterval low = EvalIntervalWith<kSharedMemos>(e->b(), sym);
      unsigned low_width = e->b()->width();
      result = UInterval{(high.lo << low_width) | low.lo, (high.hi << low_width) | low.hi};
      break;
    }
    default:
      break;  // divisions by symbolic values, shifts, srem: full range
  }
  if (!kSharedMemos) {
    e->interval_gen_ = interval_generation_;
    e->interval_value_ = result;
  } else {
    // Re-acquire: the recursive child walks may have grown the table.
    IntervalSlot& slot = SlotFor(interval_memo_, e);
    slot.gen = interval_generation_;
    slot.value = result;
  }
  return result;
}

ExprContext::UInterval ExprContext::EvalInterval(const Expr* e,
                                                 const std::vector<uint8_t>& bytes,
                                                 const std::vector<bool>& assigned) {
  auto sym = [&](unsigned index) {
    if (index < assigned.size() && assigned[index]) {
      return UInterval{bytes[index], bytes[index]};
    }
    return UInterval{0, 255};
  };
  return shared_memos_ ? EvalIntervalWith<true>(e, sym) : EvalIntervalWith<false>(e, sym);
}

ExprContext::UInterval ExprContext::EvalIntervalRanges(const Expr* e,
                                                       const std::vector<UInterval>& ranges) {
  auto sym = [&](unsigned index) {
    return index < ranges.size() ? ranges[index] : UInterval{0, 255};
  };
  return shared_memos_ ? EvalIntervalWith<true>(e, sym) : EvalIntervalWith<false>(e, sym);
}

}  // namespace overify
