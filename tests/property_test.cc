// Property-based tests over randomized inputs:
//  - the shared fold kernel matches host C arithmetic on every op and width,
//  - the canonicalizing expression builder never changes semantics,
//  - the core solver agrees with brute-force enumeration (complete + sound),
//  - printer -> parser round-trips the IR of every workload at -O0 and
//    -OVERIFY.
#include <gtest/gtest.h>

#include "src/driver/compiler.h"
#include "src/ir/fold.h"
#include "src/ir/parser.h"
#include "src/ir/printer.h"
#include "src/ir/verifier.h"
#include "src/support/rng.h"
#include "src/symex/solver.h"
#include "src/workloads/workloads.h"

namespace overify {
namespace {

// ---- Fold kernel vs host semantics ----------------------------------------

template <typename Signed, typename Unsigned>
void CheckFoldAgainstHost(Opcode opcode, uint64_t a, uint64_t b, unsigned bits) {
  auto folded = FoldBinary(opcode, bits, a, b);
  Unsigned ua = static_cast<Unsigned>(a);
  Unsigned ub = static_cast<Unsigned>(b);
  Signed sa = static_cast<Signed>(ua);
  Signed sb = static_cast<Signed>(ub);
  switch (opcode) {
    case Opcode::kAdd:
      EXPECT_EQ(*folded, TruncateToWidth(static_cast<uint64_t>(Unsigned(ua + ub)), bits));
      break;
    case Opcode::kSub:
      EXPECT_EQ(*folded, TruncateToWidth(static_cast<uint64_t>(Unsigned(ua - ub)), bits));
      break;
    case Opcode::kMul:
      EXPECT_EQ(*folded, TruncateToWidth(static_cast<uint64_t>(Unsigned(ua * ub)), bits));
      break;
    case Opcode::kUDiv:
      if (ub == 0) {
        EXPECT_FALSE(folded.has_value());
      } else {
        EXPECT_EQ(*folded, TruncateToWidth(static_cast<uint64_t>(Unsigned(ua / ub)), bits));
      }
      break;
    case Opcode::kURem:
      if (ub == 0) {
        EXPECT_FALSE(folded.has_value());
      } else {
        EXPECT_EQ(*folded, TruncateToWidth(static_cast<uint64_t>(Unsigned(ua % ub)), bits));
      }
      break;
    case Opcode::kSDiv:
      if (sb == 0 || (sb == -1 && sa == std::numeric_limits<Signed>::min())) {
        EXPECT_FALSE(folded.has_value());
      } else {
        EXPECT_EQ(*folded,
                  TruncateToWidth(static_cast<uint64_t>(Unsigned(Signed(sa / sb))), bits));
      }
      break;
    case Opcode::kSRem:
      if (sb == 0) {
        EXPECT_FALSE(folded.has_value());
      } else if (sb == -1) {
        EXPECT_EQ(*folded, 0u);  // defined as 0 (even for INT_MIN % -1)
      } else {
        EXPECT_EQ(*folded,
                  TruncateToWidth(static_cast<uint64_t>(Unsigned(Signed(sa % sb))), bits));
      }
      break;
    case Opcode::kAnd:
      EXPECT_EQ(*folded, TruncateToWidth(static_cast<uint64_t>(Unsigned(ua & ub)), bits));
      break;
    case Opcode::kOr:
      EXPECT_EQ(*folded, TruncateToWidth(static_cast<uint64_t>(Unsigned(ua | ub)), bits));
      break;
    case Opcode::kXor:
      EXPECT_EQ(*folded, TruncateToWidth(static_cast<uint64_t>(Unsigned(ua ^ ub)), bits));
      break;
    default:
      break;
  }
}

TEST(FoldPropertyTest, MatchesHostArithmeticOn32Bits) {
  Rng rng(101);
  const Opcode ops[] = {Opcode::kAdd,  Opcode::kSub,  Opcode::kMul,
                        Opcode::kUDiv, Opcode::kSDiv, Opcode::kURem,
                        Opcode::kSRem, Opcode::kAnd,  Opcode::kOr,
                        Opcode::kXor};
  for (int trial = 0; trial < 4000; ++trial) {
    uint64_t a = rng.Next();
    uint64_t b = rng.NextBool() ? rng.Next() : rng.NextBelow(5);  // exercise 0 divisors
    CheckFoldAgainstHost<int32_t, uint32_t>(ops[rng.NextBelow(10)], a, b, 32);
  }
}

TEST(FoldPropertyTest, MatchesHostArithmeticOn8Bits) {
  Rng rng(202);
  const Opcode ops[] = {Opcode::kAdd, Opcode::kSub, Opcode::kMul, Opcode::kSDiv,
                        Opcode::kAnd, Opcode::kOr,  Opcode::kXor};
  for (int trial = 0; trial < 4000; ++trial) {
    CheckFoldAgainstHost<int8_t, uint8_t>(ops[rng.NextBelow(7)], rng.Next() & 0xFF,
                                          rng.Next() & 0xFF, 8);
  }
}

TEST(FoldPropertyTest, ICmpMatchesHost) {
  Rng rng(303);
  for (int trial = 0; trial < 4000; ++trial) {
    uint64_t a = rng.Next() & 0xFFFFFFFF;
    uint64_t b = rng.Next() & 0xFFFFFFFF;
    auto ua = static_cast<uint32_t>(a);
    auto ub = static_cast<uint32_t>(b);
    auto sa = static_cast<int32_t>(ua);
    auto sb = static_cast<int32_t>(ub);
    EXPECT_EQ(FoldICmp(ICmpPredicate::kEq, 32, a, b), ua == ub);
    EXPECT_EQ(FoldICmp(ICmpPredicate::kULT, 32, a, b), ua < ub);
    EXPECT_EQ(FoldICmp(ICmpPredicate::kULE, 32, a, b), ua <= ub);
    EXPECT_EQ(FoldICmp(ICmpPredicate::kUGT, 32, a, b), ua > ub);
    EXPECT_EQ(FoldICmp(ICmpPredicate::kSLT, 32, a, b), sa < sb);
    EXPECT_EQ(FoldICmp(ICmpPredicate::kSGE, 32, a, b), sa >= sb);
  }
}

TEST(FoldPropertyTest, CastsMatchHost) {
  Rng rng(404);
  for (int trial = 0; trial < 2000; ++trial) {
    uint64_t v = rng.Next();
    EXPECT_EQ(FoldCast(Opcode::kZExt, 8, 32, v), static_cast<uint32_t>(static_cast<uint8_t>(v)));
    EXPECT_EQ(FoldCast(Opcode::kSExt, 8, 32, v),
              static_cast<uint32_t>(static_cast<int32_t>(static_cast<int8_t>(v))));
    EXPECT_EQ(FoldCast(Opcode::kTrunc, 64, 16, v), static_cast<uint16_t>(v));
  }
}

// ---- Expression builder soundness ------------------------------------------

// Builds a random expression over `num_symbols` bytes and checks that the
// canonicalized DAG evaluates identically to a shadow interpretation built
// alongside it.
struct ShadowExpr {
  const Expr* expr;
  // Evaluates the *intended* semantics directly.
  uint64_t Eval(const std::vector<uint8_t>& bytes, ExprContext& ctx) const {
    ctx.NewEvaluation();
    return ctx.Evaluate(expr, bytes);
  }
};

const Expr* RandomExpr(ExprContext& ctx, Rng& rng, unsigned num_symbols, int depth,
                       unsigned width) {
  if (depth <= 0 || rng.NextBelow(4) == 0) {
    if (rng.NextBool()) {
      return ctx.Constant(rng.Next(), width);
    }
    const Expr* sym = ctx.Symbol(static_cast<unsigned>(rng.NextBelow(num_symbols)));
    return width == 8 ? sym : ctx.ZExt(sym, width);
  }
  switch (rng.NextBelow(6)) {
    case 0:
      return ctx.Binary(ExprKind::kAdd, RandomExpr(ctx, rng, num_symbols, depth - 1, width),
                        RandomExpr(ctx, rng, num_symbols, depth - 1, width));
    case 1:
      return ctx.Binary(ExprKind::kMul, RandomExpr(ctx, rng, num_symbols, depth - 1, width),
                        RandomExpr(ctx, rng, num_symbols, depth - 1, width));
    case 2:
      return ctx.Binary(ExprKind::kAnd, RandomExpr(ctx, rng, num_symbols, depth - 1, width),
                        RandomExpr(ctx, rng, num_symbols, depth - 1, width));
    case 3:
      return ctx.Binary(ExprKind::kXor, RandomExpr(ctx, rng, num_symbols, depth - 1, width),
                        RandomExpr(ctx, rng, num_symbols, depth - 1, width));
    case 4: {
      const Expr* cond =
          ctx.Compare(ICmpPredicate::kULT,
                      RandomExpr(ctx, rng, num_symbols, depth - 1, width),
                      RandomExpr(ctx, rng, num_symbols, depth - 1, width));
      return ctx.Select(cond, RandomExpr(ctx, rng, num_symbols, depth - 1, width),
                        RandomExpr(ctx, rng, num_symbols, depth - 1, width));
    }
    default: {
      const Expr* inner = RandomExpr(ctx, rng, num_symbols, depth - 1, width);
      if (width > 8 && rng.NextBool()) {
        return ctx.ZExt(ctx.Trunc(inner, 8), width);
      }
      return ctx.Binary(ExprKind::kSub, inner,
                        RandomExpr(ctx, rng, num_symbols, depth - 1, width));
    }
  }
}

TEST(ExprPropertyTest, IntervalAbstractionIsSound) {
  // For random exprs and random partial assignments, the concrete value of
  // every completion must lie inside the interval.
  Rng rng(505);
  ExprContext ctx;
  for (int trial = 0; trial < 300; ++trial) {
    const unsigned kSymbols = 3;
    const Expr* e = RandomExpr(ctx, rng, kSymbols, 3, 32);
    std::vector<uint8_t> bytes(kSymbols);
    std::vector<bool> assigned(kSymbols);
    for (unsigned i = 0; i < kSymbols; ++i) {
      bytes[i] = static_cast<uint8_t>(rng.Next());
      assigned[i] = rng.NextBool();
    }
    ctx.NewIntervalRound();
    ExprContext::UInterval bound = ctx.EvalInterval(e, bytes, assigned);

    // Sample completions.
    for (int completion = 0; completion < 16; ++completion) {
      std::vector<uint8_t> full = bytes;
      for (unsigned i = 0; i < kSymbols; ++i) {
        if (!assigned[i]) {
          full[i] = static_cast<uint8_t>(rng.Next());
        }
      }
      ctx.NewEvaluation();
      uint64_t value = ctx.Evaluate(e, full);
      EXPECT_GE(value, bound.lo);
      EXPECT_LE(value, bound.hi);
    }
  }
}

// ---- SupportSet bitmask vs reference std::set --------------------------------

void ReferenceSupport(const Expr* e, std::set<unsigned>& out) {
  if (e->kind() == ExprKind::kSymbol) {
    out.insert(e->symbol_index());
  }
  for (const Expr* child : {e->a(), e->b(), e->c()}) {
    if (child != nullptr) {
      ReferenceSupport(child, out);
    }
  }
}

TEST(SupportPropertyTest, BitmaskAgreesWithReferenceSet) {
  // 80 symbols exercises both the bitmask word (indices < 64) and the
  // overflow vector (indices >= 64).
  Rng rng(707);
  ExprContext ctx;
  for (int trial = 0; trial < 400; ++trial) {
    const Expr* e = RandomExpr(ctx, rng, 80, 4, 32);
    std::set<unsigned> reference;
    ReferenceSupport(e, reference);
    EXPECT_EQ(e->Support().ToSet(), reference);
    EXPECT_EQ(e->Support().Size(), reference.size());
    for (unsigned sym = 0; sym < 90; ++sym) {
      EXPECT_EQ(e->Support().Contains(sym), reference.count(sym) != 0) << "symbol " << sym;
    }
    if (!reference.empty()) {
      EXPECT_EQ(e->Support().MaxSymbol(), *reference.rbegin());
    }
  }
}

TEST(SupportPropertyTest, IntersectsAgreesWithReferenceSet) {
  Rng rng(808);
  ExprContext ctx;
  for (int trial = 0; trial < 300; ++trial) {
    const Expr* x = RandomExpr(ctx, rng, 80, 3, 32);
    const Expr* y = RandomExpr(ctx, rng, 80, 3, 32);
    std::set<unsigned> sx;
    std::set<unsigned> sy;
    ReferenceSupport(x, sx);
    ReferenceSupport(y, sy);
    bool reference_intersects = false;
    for (unsigned sym : sx) {
      if (sy.count(sym) != 0) {
        reference_intersects = true;
        break;
      }
    }
    EXPECT_EQ(x->Support().Intersects(y->Support()), reference_intersects);
    EXPECT_EQ(y->Support().Intersects(x->Support()), reference_intersects);
  }
}

// ---- FilterIndependent vs reference std::set implementation ------------------

std::vector<const Expr*> ReferenceFilterIndependent(
    const std::vector<const Expr*>& constraints, const Expr* seed) {
  std::set<unsigned> symbols;
  ReferenceSupport(seed, symbols);
  std::vector<bool> taken(constraints.size(), false);
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t i = 0; i < constraints.size(); ++i) {
      if (taken[i]) {
        continue;
      }
      std::set<unsigned> support;
      ReferenceSupport(constraints[i], support);
      bool intersects = false;
      for (unsigned sym : support) {
        if (symbols.count(sym) != 0) {
          intersects = true;
          break;
        }
      }
      if (intersects) {
        taken[i] = true;
        symbols.insert(support.begin(), support.end());
        changed = true;
      }
    }
  }
  std::vector<const Expr*> filtered;
  for (size_t i = 0; i < constraints.size(); ++i) {
    if (taken[i]) {
      filtered.push_back(constraints[i]);
    }
  }
  return filtered;
}

TEST(IndependencePropertyTest, FilterMatchesReferenceImplementation) {
  Rng rng(909);
  ExprContext ctx;
  for (int trial = 0; trial < 200; ++trial) {
    // Between 1 and 80 constraints (exercising both the <=64 bitmask path
    // and the fallback), over up to 70 symbols (exercising mask overflow).
    size_t count = 1 + rng.NextBelow(80);
    std::vector<const Expr*> constraints;
    for (size_t i = 0; i < count; ++i) {
      const Expr* lhs = RandomExpr(ctx, rng, 70, 2, 32);
      const Expr* rhs = RandomExpr(ctx, rng, 70, 2, 32);
      constraints.push_back(ctx.Compare(ICmpPredicate::kULT, lhs, rhs));
    }
    const Expr* seed = RandomExpr(ctx, rng, 70, 2, 8);
    EXPECT_EQ(FilterIndependent(constraints, seed),
              ReferenceFilterIndependent(constraints, seed));
  }
}

// ---- Solver vs brute force ---------------------------------------------------

TEST(SolverPropertyTest, AgreesWithBruteForceOnTwoBytes) {
  Rng rng(606);
  ExprContext ctx;
  for (int trial = 0; trial < 120; ++trial) {
    // 1-3 random boolean constraints over 2 symbolic bytes.
    std::vector<const Expr*> constraints;
    size_t count = 1 + rng.NextBelow(3);
    for (size_t i = 0; i < count; ++i) {
      const Expr* lhs = RandomExpr(ctx, rng, 2, 2, 32);
      const Expr* rhs = RandomExpr(ctx, rng, 2, 2, 32);
      ICmpPredicate preds[] = {ICmpPredicate::kEq, ICmpPredicate::kULT, ICmpPredicate::kSLE,
                               ICmpPredicate::kNe};
      constraints.push_back(ctx.Compare(preds[rng.NextBelow(4)], lhs, rhs));
    }

    // Brute force ground truth.
    bool brute_sat = false;
    std::vector<uint8_t> bytes(2);
    for (int a = 0; a < 256 && !brute_sat; ++a) {
      for (int b = 0; b < 256 && !brute_sat; ++b) {
        bytes[0] = static_cast<uint8_t>(a);
        bytes[1] = static_cast<uint8_t>(b);
        ctx.NewEvaluation();
        bool all = true;
        for (const Expr* c : constraints) {
          if (ctx.Evaluate(c, bytes) == 0) {
            all = false;
            break;
          }
        }
        brute_sat = all;
      }
    }

    CoreSolver solver;
    std::vector<uint8_t> model;
    SatResult result = solver.CheckSat(ctx, constraints, &model);
    ASSERT_NE(result, SatResult::kUnknown) << "budget must suffice for 2 bytes";
    EXPECT_EQ(result == SatResult::kSat, brute_sat);
    if (result == SatResult::kSat) {
      // The model must actually satisfy the constraints.
      model.resize(2, 0);
      ctx.NewEvaluation();
      for (const Expr* c : constraints) {
        EXPECT_EQ(ctx.Evaluate(c, model), 1u);
      }
    }
  }
}

// ---- Solver-chain regression: verdicts unchanged through the fast paths ------

TEST(SolverChainPropertyTest, ChainAgreesWithCoreAndModelsAreValid) {
  // The chain's cache/reuse/independence layers must never change a verdict:
  // for random constraint systems, SolverChain (asked twice, so the second
  // round exercises the counterexample cache) agrees with a fresh CoreSolver,
  // and every kSat model actually satisfies the constraints.
  Rng rng(1111);
  ExprContext ctx;
  SolverChain chain(ctx);
  for (int trial = 0; trial < 150; ++trial) {
    std::vector<const Expr*> constraints;
    size_t count = 1 + rng.NextBelow(3);
    for (size_t i = 0; i < count; ++i) {
      const Expr* lhs = RandomExpr(ctx, rng, 2, 2, 32);
      const Expr* rhs = RandomExpr(ctx, rng, 2, 2, 32);
      ICmpPredicate preds[] = {ICmpPredicate::kEq, ICmpPredicate::kULT, ICmpPredicate::kSLE,
                               ICmpPredicate::kNe};
      constraints.push_back(ctx.Compare(preds[rng.NextBelow(4)], lhs, rhs));
    }

    CoreSolver reference;
    SatResult expected = reference.CheckSat(ctx, constraints, nullptr);
    ASSERT_NE(expected, SatResult::kUnknown);

    for (int round = 0; round < 2; ++round) {
      std::vector<uint8_t> model;
      SatResult got = chain.CheckSat(constraints, &model);
      EXPECT_EQ(got, expected) << "trial " << trial << " round " << round;
      if (got == SatResult::kSat) {
        model.resize(2, 0);
        ctx.NewEvaluation();
        for (const Expr* c : constraints) {
          EXPECT_EQ(ctx.Evaluate(c, model), 1u) << "trial " << trial << " round " << round;
        }
      }
    }
  }
  EXPECT_GE(chain.stats().cache_hits, 1u);
}

// ---- Printer/parser round trip over real modules ----------------------------

TEST(RoundTripPropertyTest, WorkloadsAtO0) {
  for (const Workload& workload : CoreutilsSuite()) {
    Compiler compiler;
    CompileResult compiled = compiler.Compile(workload.source, OptLevel::kO0, workload.name);
    ASSERT_TRUE(compiled.ok) << workload.name;
    std::string printed = PrintModule(*compiled.module);
    DiagnosticEngine diags;
    auto reparsed = ParseModule(printed, diags);
    ASSERT_NE(reparsed, nullptr) << workload.name << "\n" << diags.ToString();
    EXPECT_TRUE(VerifyModule(*reparsed).empty()) << workload.name;
    EXPECT_EQ(PrintModule(*reparsed), printed) << workload.name;
  }
}

TEST(RoundTripPropertyTest, WorkloadsAtOverify) {
  // The optimized IR exercises selects, phis from unswitching, checks, etc.
  for (const Workload& workload : CoreutilsSuite()) {
    Compiler compiler;
    CompileResult compiled =
        compiler.Compile(workload.source, OptLevel::kOverify, workload.name);
    ASSERT_TRUE(compiled.ok) << workload.name;
    std::string printed = PrintModule(*compiled.module);
    DiagnosticEngine diags;
    auto reparsed = ParseModule(printed, diags);
    ASSERT_NE(reparsed, nullptr) << workload.name << "\n" << diags.ToString();
    EXPECT_EQ(PrintModule(*reparsed), printed) << workload.name;
  }
}

}  // namespace
}  // namespace overify
