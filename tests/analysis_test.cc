// Tests for alias analysis, range analysis, call graph and path counting.
#include <gtest/gtest.h>

#include "src/analysis/alias_analysis.h"
#include "src/analysis/call_graph.h"
#include "src/analysis/path_count.h"
#include "src/analysis/range_analysis.h"
#include "src/ir/parser.h"

namespace overify {
namespace {

Instruction* FindInst(Function* f, const std::string& name) {
  for (BasicBlock& bb : *f) {
    for (auto& inst : bb) {
      if (inst->name() == name) {
        return inst.get();
      }
    }
  }
  return nullptr;
}

TEST(AliasTest, DistinctAllocasNoAlias) {
  auto m = ParseModuleOrDie(R"(
    func @f() -> i32 {
    entry:
      %a = alloca i32
      %b = alloca i32
      %v = load %a
      %w = load %b
      %s = add %v, %w
      ret %s
    }
  )");
  Function* f = m->GetFunction("f");
  Instruction* a = FindInst(f, "a");
  Instruction* b = FindInst(f, "b");
  EXPECT_EQ(Alias(a, 4, b, 4), AliasResult::kNoAlias);
  EXPECT_EQ(Alias(a, 4, a, 4), AliasResult::kMustAlias);
}

TEST(AliasTest, GepConstantOffsetsDisjoint) {
  auto m = ParseModuleOrDie(R"(
    func @f() -> i8 {
    entry:
      %buf = alloca [8 x i8]
      %p0 = gep [8 x i8], %buf, i64 0, i64 0
      %p1 = gep [8 x i8], %buf, i64 0, i64 1
      %v = load %p0
      %w = load %p1
      %s = add %v, %w
      ret %s
    }
  )");
  Function* f = m->GetFunction("f");
  Instruction* p0 = FindInst(f, "p0");
  Instruction* p1 = FindInst(f, "p1");
  EXPECT_EQ(Alias(p0, 1, p1, 1), AliasResult::kNoAlias);
  EXPECT_EQ(Alias(p0, 2, p1, 1), AliasResult::kMayAlias);  // 2-byte access overlaps
  EXPECT_EQ(Alias(p0, 1, p0, 1), AliasResult::kMustAlias);
}

TEST(AliasTest, VariableIndexMayAlias) {
  auto m = ParseModuleOrDie(R"(
    func @f(%i: i64) -> i8 {
    entry:
      %buf = alloca [8 x i8]
      %p0 = gep [8 x i8], %buf, i64 0, i64 0
      %pi = gep [8 x i8], %buf, i64 0, %i
      %v = load %p0
      %w = load %pi
      %s = add %v, %w
      ret %s
    }
  )");
  Function* f = m->GetFunction("f");
  EXPECT_EQ(Alias(FindInst(f, "p0"), 1, FindInst(f, "pi"), 1), AliasResult::kMayAlias);
}

TEST(AliasTest, NonEscapingAllocaVsArgument) {
  auto m = ParseModuleOrDie(R"(
    func @f(%p: i32*) -> i32 {
    entry:
      %a = alloca i32
      store i32 1, %a
      %v = load %a
      %w = load %p
      %s = add %v, %w
      ret %s
    }
  )");
  Function* f = m->GetFunction("f");
  Instruction* a = FindInst(f, "a");
  EXPECT_TRUE(IsNonEscapingAlloca(Cast<AllocaInst>(a)));
  EXPECT_EQ(Alias(a, 4, f->Arg(0), 4), AliasResult::kNoAlias);
}

TEST(AliasTest, EscapedAllocaMayAliasArgument) {
  auto m = ParseModuleOrDie(R"(
    declare @sink(i32*) -> void
    func @f(%p: i32*) -> i32 {
    entry:
      %a = alloca i32
      call @sink(%a)
      %v = load %a
      %w = load %p
      %s = add %v, %w
      ret %s
    }
  )");
  Function* f = m->GetFunction("f");
  Instruction* a = FindInst(f, "a");
  EXPECT_FALSE(IsNonEscapingAlloca(Cast<AllocaInst>(a)));
  EXPECT_EQ(Alias(a, 4, f->Arg(0), 4), AliasResult::kMayAlias);
}

TEST(RangeTest, ArithmeticPropagation) {
  auto m = ParseModuleOrDie(R"(
    func @f(%x: i32) -> i32 {
    entry:
      %masked = and %x, i32 15
      %scaled = mul %masked, i32 3
      %shifted = add %scaled, i32 100
      ret %shifted
    }
  )");
  Function* f = m->GetFunction("f");
  RangeAnalysis ranges(*f);
  EXPECT_EQ(ranges.RangeOf(FindInst(f, "masked")), (ValueRange{0, 15}));
  EXPECT_EQ(ranges.RangeOf(FindInst(f, "scaled")), (ValueRange{0, 45}));
  EXPECT_EQ(ranges.RangeOf(FindInst(f, "shifted")), (ValueRange{100, 145}));
}

TEST(RangeTest, PhiUnionAndDecide) {
  auto m = ParseModuleOrDie(R"(
    func @f(%c: i1) -> i32 {
    entry:
      br %c, label %a, label %b
    a:
      br label %join
    b:
      br label %join
    join:
      %v = phi i32 [ i32 3, %a ], [ i32 7, %b ]
      %cmp = icmp slt %v, i32 10
      %r = select %cmp, %v, i32 0
      ret %r
    }
  )");
  Function* f = m->GetFunction("f");
  RangeAnalysis ranges(*f);
  EXPECT_EQ(ranges.RangeOf(FindInst(f, "v")), (ValueRange{3, 7}));
  bool result = false;
  Instruction* v = FindInst(f, "v");
  EXPECT_TRUE(ranges.DecideICmp(ICmpPredicate::kSLT, v, m->context().GetInt(32, 10), result));
  EXPECT_TRUE(result);
  EXPECT_TRUE(ranges.DecideICmp(ICmpPredicate::kSGT, v, m->context().GetInt(32, 10), result));
  EXPECT_FALSE(result);
  // Undecidable case.
  EXPECT_FALSE(ranges.DecideICmp(ICmpPredicate::kSLT, v, m->context().GetInt(32, 5), result));
}

TEST(RangeTest, LoopVariableWidens) {
  auto m = ParseModuleOrDie(R"(
    func @f(%n: i32) -> i32 {
    entry:
      br label %loop
    loop:
      %i = phi i32 [ i32 0, %entry ], [ %ni, %loop ]
      %ni = add %i, i32 1
      %done = icmp sge %ni, %n
      br %done, label %exit, label %loop
    exit:
      ret %i
    }
  )");
  Function* f = m->GetFunction("f");
  RangeAnalysis ranges(*f);
  // The loop counter is unbounded above; analysis must not claim otherwise.
  ValueRange r = ranges.RangeOf(FindInst(f, "i"));
  EXPECT_GE(r.hi, 1 << 20);
  EXPECT_LE(r.lo, 0);
}

TEST(RangeHelpersTest, OverflowSaturatesToFull) {
  ValueRange big{INT64_MAX - 5, INT64_MAX - 1};
  EXPECT_TRUE(RangeAdd(big, big, 64).IsFull(64));
  EXPECT_EQ(RangeAdd(ValueRange{1, 2}, ValueRange{3, 4}, 32), (ValueRange{4, 6}));
  EXPECT_EQ(RangeSub(ValueRange{5, 10}, ValueRange{1, 2}, 32), (ValueRange{3, 9}));
  EXPECT_EQ(RangeMul(ValueRange{-2, 3}, ValueRange{4, 5}, 32), (ValueRange{-10, 15}));
  EXPECT_EQ(RangeUnion(ValueRange{0, 1}, ValueRange{5, 9}), (ValueRange{0, 9}));
}

TEST(CallGraphTest, EdgesAndOrder) {
  auto m = ParseModuleOrDie(R"(
    func @leaf(%x: i32) -> i32 {
    entry:
      %r = add %x, i32 1
      ret %r
    }
    func @mid(%x: i32) -> i32 {
    entry:
      %r = call @leaf(%x)
      ret %r
    }
    func @top(%x: i32) -> i32 {
    entry:
      %a = call @mid(%x)
      %b = call @leaf(%a)
      %r = add %a, %b
      ret %r
    }
  )");
  CallGraph cg(*m);
  Function* leaf = m->GetFunction("leaf");
  Function* mid = m->GetFunction("mid");
  Function* top = m->GetFunction("top");
  EXPECT_EQ(cg.Callees(top).size(), 2u);
  EXPECT_EQ(cg.Callers(leaf).size(), 2u);
  EXPECT_FALSE(cg.IsRecursive(leaf));
  auto order = cg.BottomUpOrder();
  auto pos = [&](Function* f) {
    return std::find(order.begin(), order.end(), f) - order.begin();
  };
  EXPECT_LT(pos(leaf), pos(mid));
  EXPECT_LT(pos(mid), pos(top));
  EXPECT_EQ(cg.CallSitesOf(leaf).size(), 2u);
}

TEST(CallGraphTest, DetectsRecursionAndCycles) {
  auto m = ParseModuleOrDie(R"(
    func @self(%x: i32) -> i32 {
    entry:
      %c = icmp sle %x, i32 0
      br %c, label %base, label %rec
    base:
      ret i32 0
    rec:
      %x1 = sub %x, i32 1
      %r = call @self(%x1)
      ret %r
    }
    func @a(%x: i32) -> i32 {
    entry:
      %r = call @b(%x)
      ret %r
    }
    func @b(%x: i32) -> i32 {
    entry:
      %r = call @a(%x)
      ret %r
    }
  )");
  CallGraph cg(*m);
  EXPECT_TRUE(cg.IsRecursive(m->GetFunction("self")));
  EXPECT_TRUE(cg.IsRecursive(m->GetFunction("a")));
  EXPECT_TRUE(cg.IsRecursive(m->GetFunction("b")));
}

TEST(PathCountTest, DiamondAndChain) {
  auto m = ParseModuleOrDie(R"(
    func @two(%c: i1) -> i32 {
    entry:
      br %c, label %a, label %b
    a:
      br label %join
    b:
      br label %join
    join:
      %r = phi i32 [ i32 1, %a ], [ i32 2, %b ]
      ret %r
    }
    func @one() -> i32 {
    entry:
      br label %next
    next:
      ret i32 0
    }
  )");
  EXPECT_EQ(CountAcyclicPaths(*m->GetFunction("two")), 2u);
  EXPECT_EQ(CountAcyclicPaths(*m->GetFunction("one")), 1u);
  EXPECT_EQ(CountConditionalBranches(*m->GetFunction("two")), 1u);
}

TEST(PathCountTest, SequentialDiamondsMultiply) {
  auto m = ParseModuleOrDie(R"(
    func @f(%c1: i1, %c2: i1, %c3: i1) -> i32 {
    e1:
      br %c1, label %a1, label %b1
    a1:
      br label %e2
    b1:
      br label %e2
    e2:
      br %c2, label %a2, label %b2
    a2:
      br label %e3
    b2:
      br label %e3
    e3:
      br %c3, label %a3, label %b3
    a3:
      br label %done
    b3:
      br label %done
    done:
      ret i32 0
    }
  )");
  EXPECT_EQ(CountAcyclicPaths(*m->GetFunction("f")), 8u);
}

TEST(PathCountTest, BackEdgesCut) {
  auto m = ParseModuleOrDie(R"(
    func @loop(%n: i32) -> i32 {
    entry:
      br label %header
    header:
      %i = phi i32 [ i32 0, %entry ], [ %ni, %header ]
      %ni = add %i, i32 1
      %c = icmp slt %ni, %n
      br %c, label %header, label %exit
    exit:
      ret %i
    }
  )");
  EXPECT_EQ(CountAcyclicPaths(*m->GetFunction("loop")), 1u);
}

}  // namespace
}  // namespace overify
