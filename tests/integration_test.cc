// End-to-end integration tests: the paper's wc example through all four
// build configurations, semantic equivalence across levels, and the
// bug-preservation property (§4: "all bugs discovered by KLEE with -O0 and
// -O3 are also found with -OSYMBEX").
#include <gtest/gtest.h>

#include "src/driver/compiler.h"
#include "src/exec/interpreter.h"
#include "src/ir/verifier.h"
#include "src/support/rng.h"

namespace overify {
namespace {

const char* kWcProgram = R"(
int wc(unsigned char *str, int any) {
  int res = 0;
  int new_word = 1;
  for (unsigned char *p = str; *p; ++p) {
    if (isspace((int)*p) || (any && !isalpha((int)*p))) {
      new_word = 1;
    } else {
      if (new_word) {
        ++res;
        new_word = 0;
      }
    }
  }
  return res;
}
int umain(unsigned char *in, int n) { return wc(in, 1); }
)";

const std::vector<OptLevel>& AllLevels() {
  static const std::vector<OptLevel>* kLevels = new std::vector<OptLevel>{
      OptLevel::kO0, OptLevel::kO1, OptLevel::kO2, OptLevel::kO3, OptLevel::kOverify};
  return *kLevels;
}

CompileResult CompileLevel(const std::string& source, OptLevel level) {
  Compiler compiler;
  CompileResult result = compiler.Compile(source, level);
  EXPECT_TRUE(result.ok) << result.errors;
  if (result.ok) {
    auto errors = VerifyModule(*result.module);
    EXPECT_TRUE(errors.empty()) << OptLevelName(level) << ": " << errors[0];
  }
  return result;
}

SymexResult AnalyzeLevel(CompileResult& compiled, unsigned bytes,
                         uint64_t max_paths = 5000000) {
  SymexLimits limits;
  limits.max_paths = max_paths;
  limits.max_seconds = 120;
  return Analyze(compiled, "umain", bytes, limits);
}

TEST(WcTable1Test, PathCountsFollowThePaper) {
  // 4 symbolic bytes keeps -O0 exhaustive within seconds.
  const unsigned kBytes = 4;

  auto o0 = CompileLevel(kWcProgram, OptLevel::kO0);
  auto r0 = AnalyzeLevel(o0, kBytes);
  ASSERT_TRUE(r0.exhausted);

  auto o2 = CompileLevel(kWcProgram, OptLevel::kO2);
  auto r2 = AnalyzeLevel(o2, kBytes);
  ASSERT_TRUE(r2.exhausted);

  auto o3 = CompileLevel(kWcProgram, OptLevel::kO3);
  auto r3 = AnalyzeLevel(o3, kBytes);
  ASSERT_TRUE(r3.exhausted);

  auto ov = CompileLevel(kWcProgram, OptLevel::kOverify);
  auto rv = AnalyzeLevel(ov, kBytes);
  ASSERT_TRUE(rv.exhausted);

  // Paper Table 1: -O2 reduces instructions but "the number of explored
  // paths remains the same as for -O0".
  EXPECT_EQ(r0.paths_completed, r2.paths_completed);
  EXPECT_LT(o2.instruction_count, o0.instruction_count);

  // -O3 fundamentally restructures: far fewer paths.
  EXPECT_LT(r3.paths_completed * 10, r2.paths_completed);

  // -OVERIFY leaves only the loop-exit branch: exactly n+1 paths.
  EXPECT_EQ(rv.paths_completed, kBytes + 1);

  // And the work shrinks monotonically along the headline ordering.
  EXPECT_GT(r0.instructions, r2.instructions);
  EXPECT_GT(r2.instructions, r3.instructions);
  EXPECT_GT(r3.instructions, rv.instructions);

  // No level may invent a bug in a bug-free program.
  EXPECT_TRUE(r0.bugs.empty());
  EXPECT_TRUE(r2.bugs.empty());
  EXPECT_TRUE(r3.bugs.empty());
  EXPECT_TRUE(rv.bugs.empty());
}

TEST(WcTable1Test, RunCostsShowTheExecutionVerificationConflict) {
  std::string text = "the quick brown fox jumps over the lazy dog 0123 !";
  uint64_t cost_o3 = 0;
  uint64_t cost_overify = 0;
  uint64_t cost_o0 = 0;
  int64_t expected = -1;
  for (OptLevel level : AllLevels()) {
    auto compiled = CompileLevel(kWcProgram, level);
    Interpreter interp(*compiled.module);
    auto run = interp.Run("umain", text);
    ASSERT_TRUE(run.ok) << OptLevelName(level) << ": " << run.error;
    if (expected < 0) {
      expected = run.return_value;
    }
    EXPECT_EQ(run.return_value, expected) << OptLevelName(level);
    if (level == OptLevel::kO0) {
      cost_o0 = run.cost_units;
    }
    if (level == OptLevel::kO3) {
      cost_o3 = run.cost_units;
    }
    if (level == OptLevel::kOverify) {
      cost_overify = run.cost_units;
    }
  }
  // Paper: the branch-free -OVERIFY build runs slower than -O3 on a CPU
  // (2.5x there; the exact factor depends on the cost model), while -O0 is
  // slowest by far.
  EXPECT_GT(cost_overify, cost_o3);
  EXPECT_GT(cost_o0, cost_overify);
}

TEST(WcTable1Test, SemanticEquivalenceAcrossLevelsOnRandomInputs) {
  std::vector<CompileResult> compiled;
  for (OptLevel level : AllLevels()) {
    compiled.push_back(CompileLevel(kWcProgram, level));
  }
  Rng rng(2013);
  for (int trial = 0; trial < 40; ++trial) {
    size_t len = rng.NextBelow(24);
    std::string input;
    for (size_t i = 0; i < len; ++i) {
      // Mixed printable bytes with plenty of separators.
      const char alphabet[] = "ab z \t.19-";
      input += alphabet[rng.NextBelow(sizeof(alphabet) - 1)];
    }
    int64_t expected = 0;
    for (size_t i = 0; i < compiled.size(); ++i) {
      Interpreter interp(*compiled[i].module);
      auto run = interp.Run("umain", input);
      ASSERT_TRUE(run.ok) << OptLevelName(AllLevels()[i]) << " on '" << input << "'";
      if (i == 0) {
        expected = run.return_value;
      } else {
        EXPECT_EQ(run.return_value, expected)
            << OptLevelName(AllLevels()[i]) << " diverges on '" << input << "'";
      }
    }
  }
}

// ---- Bug preservation --------------------------------------------------

struct BuggyProgram {
  const char* name;
  const char* source;
  BugKind expected;
  unsigned bytes;
};

const BuggyProgram kBuggyPrograms[] = {
    {"div_by_zero",
     R"(
       int umain(unsigned char *in, int n) {
         int d = in[0] - 'k';
         return 1000 / d;
       }
     )",
     BugKind::kDivByZero, 2},
    {"oob_index",
     R"(
       int umain(unsigned char *in, int n) {
         int table[8] = {1, 2, 3, 4, 5, 6, 7, 8};
         int i = in[0] & 15;
         return table[i];
       }
     )",
     BugKind::kOutOfBounds, 2},
    {"failed_check",
     R"(
       int umain(unsigned char *in, int n) {
         int sum = 0;
         for (int i = 0; i < n; i++) { sum += in[i]; }
         __check(sum != 194, "sum collision");
         return sum;
       }
     )",
     BugKind::kCheckFailed, 2},
    {"null_deref",
     R"(
       int umain(unsigned char *in, int n) {
         unsigned char *p = 0;
         if (in[0] != 'S') { p = in; }
         return *p;
       }
     )",
     BugKind::kNullDeref, 2},
    {"libc_misuse",
     R"(
       int umain(unsigned char *in, int n) {
         char buf[4];
         /* overflows buf when the input is longer than 3 chars */
         strcpy(buf, (char*)in);
         return buf[0];
       }
     )",
     BugKind::kOutOfBounds, 6},
};

class BugPreservationTest : public ::testing::TestWithParam<BuggyProgram> {};

TEST_P(BugPreservationTest, BugFoundAtO0IsFoundAtEveryLevel) {
  const BuggyProgram& program = GetParam();
  auto baseline = CompileLevel(program.source, OptLevel::kO0);
  auto baseline_result = AnalyzeLevel(baseline, program.bytes);
  ASSERT_TRUE(baseline_result.FoundBug(program.expected))
      << program.name << ": bug not found at -O0";

  for (OptLevel level : AllLevels()) {
    auto compiled = CompileLevel(program.source, level);
    auto result = AnalyzeLevel(compiled, program.bytes);
    EXPECT_TRUE(result.FoundBug(program.expected))
        << program.name << ": bug lost at " << OptLevelName(level);
  }
}

INSTANTIATE_TEST_SUITE_P(AllBuggyPrograms, BugPreservationTest,
                         ::testing::ValuesIn(kBuggyPrograms),
                         [](const ::testing::TestParamInfo<BuggyProgram>& info) {
                           return info.param.name;
                         });

TEST(BugReproTest, ReportedInputsActuallyTriggerTheBug) {
  // Reproducing inputs from the engine must make the concrete interpreter
  // trap as well (end-to-end witness validation).
  const char* source = kBuggyPrograms[0].source;  // div_by_zero
  auto compiled = CompileLevel(source, OptLevel::kOverify);
  auto result = AnalyzeLevel(compiled, 2);
  ASSERT_FALSE(result.bugs.empty());
  for (const BugReport& bug : result.bugs) {
    ASSERT_FALSE(bug.example_input.empty());
    Interpreter interp(*compiled.module);
    auto run = interp.Run(compiled.module->GetFunction("umain"), bug.example_input);
    EXPECT_FALSE(run.ok) << "witness did not reproduce for " << bug.message;
  }
}

TEST(AnnotationTest, AnnotationsDecideBranchesWithoutSolver) {
  // (x & 7) < 10 is always true but survives instcombine (no range logic
  // there); the annotation pass proves it and the engine skips the solver.
  const char* source = R"(
    int umain(unsigned char *in, int n) {
      int x = in[0];
      int masked = x & 7;
      if (masked < 10) { return 1; }
      return 0;
    }
  )";
  auto compiled = CompileLevel(source, OptLevel::kOverify);
  ASSERT_NE(compiled.annotations, nullptr);
  auto result = AnalyzeLevel(compiled, 1);
  EXPECT_TRUE(result.exhausted);
  // Either the branch was folded outright (paths == 1) or annotations
  // short-circuited it; in no case may both arms survive.
  EXPECT_EQ(result.paths_completed, 1u);
}

TEST(PipelineStatsTest, OverifyPerformsMoreTransformationsThanO3) {
  // Table 3's qualitative claim: -OSYMBEX inlines/unswitches/converts far
  // more than -O3 on the same code.
  const char* source = R"(
    int process(unsigned char *s, int mode) {
      int count = 0;
      for (long i = 0; s[i]; i++) {
        if (mode && isalpha((int)s[i])) { count++; }
        else if (isdigit((int)s[i])) { count += 2; }
      }
      return count;
    }
    int umain(unsigned char *in, int n) {
      return process(in, 1) + process(in, 0);
    }
  )";
  auto o3 = CompileLevel(source, OptLevel::kO3);
  auto ov = CompileLevel(source, OptLevel::kOverify);
  auto stat = [](const CompileResult& r, const char* name) {
    auto it = r.pass_stats.find(name);
    return it == r.pass_stats.end() ? int64_t{0} : it->second;
  };
  // -OVERIFY must exercise its signature transformations. (Raw counts are
  // not comparable against -O3 here because the two levels link different
  // libc flavors; the Table 3 benchmark reports the full-suite numbers.)
  EXPECT_GT(stat(ov, "ifconvert.branches_converted"), 0);
  EXPECT_GT(stat(ov, "inline.functions_inlined"), 0);
  EXPECT_GT(stat(ov, "unswitch.loops_unswitched"), 0);

  // The outcome that matters: -OVERIFY's build is strictly cheaper to
  // analyze than -O3's.
  auto o3_result = AnalyzeLevel(o3, 3);
  auto ov_result = AnalyzeLevel(ov, 3);
  ASSERT_TRUE(o3_result.exhausted);
  ASSERT_TRUE(ov_result.exhausted);
  EXPECT_LE(ov_result.paths_completed, o3_result.paths_completed);
  EXPECT_LT(ov_result.instructions, o3_result.instructions);
}

TEST(CompileErrorsTest, DriverSurfacesFrontendErrors) {
  Compiler compiler;
  auto result = compiler.Compile("int umain(unsigned char *in, int n) { return oops; }",
                                 OptLevel::kOverify);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.errors.find("undeclared"), std::string::npos);
}

// ---- Malformed driver input degrades to structured errors, never aborts
// (docs/robustness.md).

TEST(DriverErrorTest, AnalyzingFailedCompilationReturnsError) {
  Compiler compiler;
  CompileResult bad = compiler.Compile("int umain(unsigned char *in, int n) { return oops; }",
                                       OptLevel::kOverify);
  ASSERT_FALSE(bad.ok);
  SymexLimits limits;
  SymexResult result = Analyze(bad, "umain", 4, limits);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("failed compilation"), std::string::npos) << result.error;
  // The compile diagnostics ride along so callers can show the real cause.
  EXPECT_NE(result.error.find("undeclared"), std::string::npos) << result.error;
}

TEST(DriverErrorTest, MissingEntryFunctionReturnsError) {
  CompileResult compiled = CompileLevel(kWcProgram, OptLevel::kOverify);
  ASSERT_TRUE(compiled.ok);
  SymexLimits limits;
  SymexResult result = Analyze(compiled, "no_such_entry", 4, limits);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("no_such_entry"), std::string::npos) << result.error;
}

TEST(DriverErrorTest, ZeroWidthSymbolicBufferReturnsError) {
  CompileResult compiled = CompileLevel(kWcProgram, OptLevel::kOverify);
  ASSERT_TRUE(compiled.ok);
  SymexLimits limits;
  SymexResult result = Analyze(compiled, "umain", 0, limits);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("zero-width"), std::string::npos) << result.error;
}

TEST(DriverErrorTest, FourArgEntryNeedsRoomForTheSizeSplit) {
  CompileResult compiled = CompileLevel(R"(
    int umain(unsigned char *a, int n, unsigned char *b, int m) {
      return (int)a[0] + (int)b[0];
    }
  )", OptLevel::kOverify);
  ASSERT_TRUE(compiled.ok);
  SymexLimits limits;
  SymexResult result = Analyze(compiled, "umain", 1, limits);
  EXPECT_FALSE(result.ok);
  EXPECT_FALSE(result.error.empty());
  // Two bytes is the minimum: one per buffer.
  SymexResult ok = Analyze(compiled, "umain", 2, limits);
  EXPECT_TRUE(ok.ok) << ok.error;
}

}  // namespace
}  // namespace overify
