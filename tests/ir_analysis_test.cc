// Tests for CFG utilities, dominators, loop info and cloning.
#include <gtest/gtest.h>

#include "src/ir/cfg.h"
#include "src/ir/cloning.h"
#include "src/ir/dominators.h"
#include "src/ir/loop_info.h"
#include "src/ir/parser.h"
#include "src/ir/verifier.h"

namespace overify {
namespace {

BasicBlock* FindBlock(Function* f, const std::string& name) {
  for (BasicBlock& bb : *f) {
    if (bb.name() == name) {
      return &bb;
    }
  }
  return nullptr;
}

const char* kDiamond = R"(
  func @d(%c: i1) -> i32 {
  entry:
    br %c, label %left, label %right
  left:
    br label %join
  right:
    br label %join
  join:
    %r = phi i32 [ i32 1, %left ], [ i32 2, %right ]
    ret %r
  }
)";

TEST(CfgTest, ReversePostOrderStartsAtEntry) {
  auto m = ParseModuleOrDie(kDiamond);
  Function* f = m->GetFunction("d");
  auto rpo = ReversePostOrder(*f);
  ASSERT_EQ(rpo.size(), 4u);
  EXPECT_EQ(rpo.front()->name(), "entry");
  EXPECT_EQ(rpo.back()->name(), "join");
}

TEST(CfgTest, PredecessorMapComplete) {
  auto m = ParseModuleOrDie(kDiamond);
  Function* f = m->GetFunction("d");
  auto preds = PredecessorMap(*f);
  EXPECT_EQ(preds[FindBlock(f, "join")].size(), 2u);
  EXPECT_EQ(preds[FindBlock(f, "entry")].size(), 0u);
}

TEST(CfgTest, RemoveUnreachableBlocksFixesPhis) {
  auto m = ParseModuleOrDie(R"(
    func @f(%c: i1) -> i32 {
    entry:
      br label %join
    dead:
      br label %join
    join:
      %r = phi i32 [ i32 1, %entry ], [ i32 2, %dead ]
      ret %r
    }
  )");
  Function* f = m->GetFunction("f");
  EXPECT_EQ(RemoveUnreachableBlocks(*f), 1u);
  EXPECT_EQ(f->NumBlocks(), 2u);
  auto* phi = DynCast<PhiInst>(FindBlock(f, "join")->begin()->get());
  ASSERT_NE(phi, nullptr);
  EXPECT_EQ(phi->NumIncoming(), 1u);
  EXPECT_TRUE(VerifyModule(*m).empty());
}

TEST(CfgTest, SplitEdgeRedirectsPhi) {
  auto m = ParseModuleOrDie(kDiamond);
  Function* f = m->GetFunction("d");
  BasicBlock* left = FindBlock(f, "left");
  BasicBlock* join = FindBlock(f, "join");
  BasicBlock* middle = SplitEdge(left, join);
  ASSERT_NE(middle, nullptr);
  EXPECT_TRUE(VerifyModule(*m).empty());
  auto* phi = Cast<PhiInst>(join->begin()->get());
  EXPECT_GE(phi->IncomingIndexFor(middle), 0);
  EXPECT_EQ(phi->IncomingIndexFor(left), -1);
}

TEST(DominatorTest, DiamondDominance) {
  auto m = ParseModuleOrDie(kDiamond);
  Function* f = m->GetFunction("d");
  DominatorTree dom(*f);
  BasicBlock* entry = FindBlock(f, "entry");
  BasicBlock* left = FindBlock(f, "left");
  BasicBlock* join = FindBlock(f, "join");
  EXPECT_TRUE(dom.Dominates(entry, join));
  EXPECT_TRUE(dom.Dominates(entry, entry));
  EXPECT_FALSE(dom.Dominates(left, join));
  EXPECT_EQ(dom.ImmediateDominator(join), entry);
  EXPECT_EQ(dom.ImmediateDominator(left), entry);
  EXPECT_EQ(dom.ImmediateDominator(entry), nullptr);
}

TEST(DominatorTest, DominanceFrontierOfDiamond) {
  auto m = ParseModuleOrDie(kDiamond);
  Function* f = m->GetFunction("d");
  DominatorTree dom(*f);
  auto& frontiers = dom.DominanceFrontiers();
  BasicBlock* left = FindBlock(f, "left");
  BasicBlock* join = FindBlock(f, "join");
  ASSERT_EQ(frontiers.at(left).size(), 1u);
  EXPECT_EQ(frontiers.at(left)[0], join);
  EXPECT_TRUE(frontiers.at(join).empty());
}

const char* kLoop = R"(
  func @l(%n: i32) -> i32 {
  entry:
    br label %header
  header:
    %i = phi i32 [ i32 0, %entry ], [ %ni, %latch ]
    %cmp = icmp slt %i, %n
    br %cmp, label %body, label %exit
  body:
    br label %latch
  latch:
    %ni = add %i, i32 1
    br label %header
  exit:
    ret %i
  }
)";

TEST(LoopInfoTest, DetectsNaturalLoop) {
  auto m = ParseModuleOrDie(kLoop);
  Function* f = m->GetFunction("l");
  DominatorTree dom(*f);
  LoopInfo loops(*f, dom);
  ASSERT_EQ(loops.NumLoops(), 1u);
  Loop* loop = loops.TopLevelLoops()[0];
  EXPECT_EQ(loop->header()->name(), "header");
  EXPECT_EQ(loop->blocks().size(), 3u);
  EXPECT_EQ(loop->depth(), 1u);
  EXPECT_EQ(loop->Preheader()->name(), "entry");
  EXPECT_EQ(loop->Latch()->name(), "latch");
  auto exiting = loop->ExitingBlocks();
  ASSERT_EQ(exiting.size(), 1u);
  EXPECT_EQ(exiting[0]->name(), "header");
  auto exits = loop->ExitBlocks();
  ASSERT_EQ(exits.size(), 1u);
  EXPECT_EQ(exits[0]->name(), "exit");
}

TEST(LoopInfoTest, LoopInvariance) {
  auto m = ParseModuleOrDie(kLoop);
  Function* f = m->GetFunction("l");
  DominatorTree dom(*f);
  LoopInfo loops(*f, dom);
  Loop* loop = loops.TopLevelLoops()[0];
  EXPECT_TRUE(loop->IsInvariant(f->Arg(0)));
  BasicBlock* header = FindBlock(f, "header");
  EXPECT_FALSE(loop->IsInvariant(header->begin()->get()));  // the phi
}

TEST(LoopInfoTest, NestedLoops) {
  auto m = ParseModuleOrDie(R"(
    func @nest(%n: i32) -> i32 {
    entry:
      br label %outer
    outer:
      %i = phi i32 [ i32 0, %entry ], [ %ni, %outer_latch ]
      br label %inner
    inner:
      %j = phi i32 [ i32 0, %outer ], [ %nj, %inner ]
      %nj = add %j, i32 1
      %jc = icmp slt %nj, %n
      br %jc, label %inner, label %outer_latch
    outer_latch:
      %ni = add %i, i32 1
      %ic = icmp slt %ni, %n
      br %ic, label %outer, label %exit
    exit:
      ret %i
    }
  )");
  Function* f = m->GetFunction("nest");
  DominatorTree dom(*f);
  LoopInfo loops(*f, dom);
  ASSERT_EQ(loops.NumLoops(), 2u);
  ASSERT_EQ(loops.TopLevelLoops().size(), 1u);
  Loop* outer = loops.TopLevelLoops()[0];
  ASSERT_EQ(outer->subloops().size(), 1u);
  Loop* inner = outer->subloops()[0];
  EXPECT_EQ(inner->depth(), 2u);
  EXPECT_EQ(inner->header()->name(), "inner");
  EXPECT_TRUE(outer->Contains(inner));
  EXPECT_FALSE(inner->Contains(outer));
  EXPECT_EQ(loops.LoopFor(FindBlock(f, "inner")), inner);
  EXPECT_EQ(loops.LoopFor(FindBlock(f, "outer_latch")), outer);
  EXPECT_EQ(loops.LoopFor(FindBlock(f, "exit")), nullptr);
  auto order = loops.LoopsInnermostFirst();
  EXPECT_EQ(order[0], inner);
  EXPECT_EQ(order[1], outer);
}

TEST(CloningTest, CloneLoopBodyRemapsInternals) {
  auto m = ParseModuleOrDie(kLoop);
  Function* f = m->GetFunction("l");
  DominatorTree dom(*f);
  LoopInfo loops(*f, dom);
  Loop* loop = loops.TopLevelLoops()[0];
  std::vector<BasicBlock*> region(loop->blocks().begin(), loop->blocks().end());

  CloneMapping mapping;
  CloneBlocksInto(region, f, ".clone", mapping);
  EXPECT_EQ(f->NumBlocks(), 5u + 3u);

  // The cloned latch's add must use the cloned phi, not the original.
  BasicBlock* latch = FindBlock(f, "latch");
  BasicBlock* latch_clone = mapping.Lookup(latch);
  ASSERT_NE(latch_clone, latch);
  Instruction* add_clone = latch_clone->begin()->get();
  EXPECT_EQ(add_clone->opcode(), Opcode::kAdd);
  BasicBlock* header = FindBlock(f, "header");
  Instruction* orig_phi = header->begin()->get();
  EXPECT_NE(add_clone->Operand(0), orig_phi);
  EXPECT_EQ(add_clone->Operand(0), mapping.Lookup(static_cast<Value*>(orig_phi)));
}

}  // namespace
}  // namespace overify
