// Unit tests for src/support.
#include <gtest/gtest.h>

#include "src/support/diagnostics.h"
#include "src/support/rng.h"
#include "src/support/statistics.h"
#include "src/support/string_utils.h"
#include "src/support/table.h"

namespace overify {
namespace {

TEST(DiagnosticsTest, CollectsAndCountsErrors) {
  DiagnosticEngine diags;
  EXPECT_FALSE(diags.HasErrors());
  diags.Warning(SourceLoc{1, 2}, "watch out");
  EXPECT_FALSE(diags.HasErrors());
  diags.Error(SourceLoc{3, 4}, "broken");
  EXPECT_TRUE(diags.HasErrors());
  EXPECT_EQ(diags.ErrorCount(), 1u);
  EXPECT_EQ(diags.Diagnostics().size(), 2u);
}

TEST(DiagnosticsTest, PrintsLocations) {
  DiagnosticEngine diags;
  diags.Error(SourceLoc{7, 12}, "bad token");
  EXPECT_EQ(diags.ToString(), "error 7:12: bad token\n");
}

TEST(DiagnosticsTest, PrintsWithoutLocationWhenUnknown) {
  DiagnosticEngine diags;
  diags.Error(SourceLoc{}, "general failure");
  EXPECT_EQ(diags.ToString(), "error: general failure\n");
}

TEST(DiagnosticsTest, ClearResets) {
  DiagnosticEngine diags;
  diags.Error(SourceLoc{1, 1}, "x");
  diags.Clear();
  EXPECT_FALSE(diags.HasErrors());
  EXPECT_TRUE(diags.Diagnostics().empty());
}

TEST(StatisticsTest, CountersAccumulate) {
  StatisticsRegistry::Global().Reset();
  Statistic counter("test.counter");
  EXPECT_EQ(counter.Value(), 0);
  ++counter;
  counter += 4;
  EXPECT_EQ(counter.Value(), 5);
}

TEST(StatisticsTest, SnapshotDeltaReportsOnlyChanges) {
  StatisticsRegistry::Global().Reset();
  Statistic a("test.a");
  Statistic b("test.b");
  ++a;
  auto before = StatisticsRegistry::Global().Snapshot();
  ++b;
  b += 2;
  auto after = StatisticsRegistry::Global().Snapshot();
  auto delta = SnapshotDelta(before, after);
  EXPECT_EQ(delta.size(), 1u);
  EXPECT_EQ(delta.at("test.b"), 3);
}

TEST(StringUtilsTest, SplitAndJoin) {
  auto parts = SplitString("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(JoinStrings(parts, "-"), "a-b--c");
}

TEST(StringUtilsTest, TrimWhitespace) {
  EXPECT_EQ(TrimWhitespace("  x y \t\n"), "x y");
  EXPECT_EQ(TrimWhitespace(""), "");
  EXPECT_EQ(TrimWhitespace("   "), "");
}

TEST(StringUtilsTest, StrFormatFormats) {
  EXPECT_EQ(StrFormat("%d-%s", 42, "ok"), "42-ok");
  EXPECT_EQ(StrFormat("%s", ""), "");
}

TEST(StringUtilsTest, EscapeStringEscapesControlChars) {
  EXPECT_EQ(EscapeString(std::string("a\0b", 3)), "a\\0b");
  EXPECT_EQ(EscapeString("tab\there"), "tab\\there");
  EXPECT_EQ(EscapeString("\x01"), "\\x01");
  EXPECT_EQ(EscapeString("quote\"backslash\\"), "quote\\\"backslash\\\\");
}

TEST(StringUtilsTest, FormatDoubleTrimsZeros) {
  EXPECT_EQ(FormatDouble(1.5, 3), "1.5");
  EXPECT_EQ(FormatDouble(2.0, 3), "2");
  EXPECT_EQ(FormatDouble(0.13, 2), "0.13");
  EXPECT_EQ(FormatDouble(10.0, 0), "10");
}

TEST(RngTest, DeterministicStream) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  EXPECT_NE(a.Next(), b.Next());
}

TEST(RngTest, RangesRespected) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = rng.NextBelow(10);
    EXPECT_LT(v, 10u);
    int64_t r = rng.NextInRange(-5, 5);
    EXPECT_GE(r, -5);
    EXPECT_LE(r, 5);
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(TextTableTest, AlignsColumns) {
  TextTable table({"name", "value"});
  table.AddRow({"x", "1"});
  table.AddRow({"longer", "22"});
  std::string out = table.ToString();
  EXPECT_NE(out.find("| name   | value |"), std::string::npos);
  EXPECT_NE(out.find("| longer | 22    |"), std::string::npos);
}

TEST(TextTableTest, MissingCellsRenderEmpty) {
  TextTable table({"a", "b", "c"});
  table.AddRow({"1"});
  EXPECT_EQ(table.RowCount(), 1u);
  EXPECT_NE(table.ToString().find("| 1 |   |   |"), std::string::npos);
}

TEST(TextTableTest, SeparatorInsertsRule) {
  TextTable table({"a"});
  table.AddRow({"1"});
  table.AddSeparator();
  table.AddRow({"2"});
  std::string out = table.ToString();
  // header rule + top/bottom + separator = 4 rules
  size_t rules = 0;
  for (size_t pos = 0; (pos = out.find("+---", pos)) != std::string::npos; ++pos) {
    ++rules;
  }
  EXPECT_EQ(rules, 4u);
}

}  // namespace
}  // namespace overify
