// Tests for scalar/local passes: mem2reg, instcombine, dce, simplifycfg,
// cse, sroa, runtime checks.
#include <gtest/gtest.h>

#include "src/analysis/path_count.h"
#include "src/ir/parser.h"
#include "src/ir/printer.h"
#include "src/ir/verifier.h"
#include "src/passes/cse.h"
#include "src/passes/dce.h"
#include "src/passes/instcombine.h"
#include "src/passes/mem2reg.h"
#include "src/passes/runtime_checks.h"
#include "src/passes/simplify_cfg.h"
#include "src/passes/sroa.h"

namespace overify {
namespace {

size_t CountOpcode(Function& fn, Opcode opcode) {
  size_t count = 0;
  for (BasicBlock& block : fn) {
    for (auto& inst : block) {
      if (inst->opcode() == opcode) {
        ++count;
      }
    }
  }
  return count;
}

void ExpectValid(Module& m) {
  auto errors = VerifyModule(m);
  EXPECT_TRUE(errors.empty()) << (errors.empty() ? "" : errors[0]);
}

TEST(Mem2RegTest, PromotesScalarsAndInsertsPhis) {
  auto m = ParseModuleOrDie(R"(
    func @max(%a: i32, %b: i32) -> i32 {
    entry:
      %r = alloca i32
      %c = icmp sgt %a, %b
      br %c, label %t, label %f
    t:
      store %a, %r
      br label %done
    f:
      store %b, %r
      br label %done
    done:
      %v = load %r
      ret %v
    }
  )");
  Function* f = m->GetFunction("max");
  EXPECT_TRUE(Mem2RegPass().RunOnFunction(*f));
  ExpectValid(*m);
  EXPECT_EQ(CountOpcode(*f, Opcode::kAlloca), 0u);
  EXPECT_EQ(CountOpcode(*f, Opcode::kLoad), 0u);
  EXPECT_EQ(CountOpcode(*f, Opcode::kStore), 0u);
  EXPECT_EQ(CountOpcode(*f, Opcode::kPhi), 1u);
}

TEST(Mem2RegTest, LoopCarriedVariable) {
  auto m = ParseModuleOrDie(R"(
    func @sum(%n: i32) -> i32 {
    entry:
      %acc = alloca i32
      %i = alloca i32
      store i32 0, %acc
      store i32 0, %i
      br label %header
    header:
      %iv = load %i
      %c = icmp slt %iv, %n
      br %c, label %body, label %exit
    body:
      %av = load %acc
      %a2 = add %av, %iv
      store %a2, %acc
      %i2 = add %iv, i32 1
      store %i2, %i
      br label %header
    exit:
      %r = load %acc
      ret %r
    }
  )");
  Function* f = m->GetFunction("sum");
  EXPECT_TRUE(Mem2RegPass().RunOnFunction(*f));
  ExpectValid(*m);
  EXPECT_EQ(CountOpcode(*f, Opcode::kAlloca), 0u);
  EXPECT_EQ(CountOpcode(*f, Opcode::kPhi), 2u);  // acc and i at the header
}

TEST(Mem2RegTest, SkipsEscapingAlloca) {
  auto m = ParseModuleOrDie(R"(
    declare @ext(i32*) -> void
    func @f() -> i32 {
    entry:
      %a = alloca i32
      store i32 1, %a
      call @ext(%a)
      %v = load %a
      ret %v
    }
  )");
  Function* f = m->GetFunction("f");
  Mem2RegPass().RunOnFunction(*f);
  ExpectValid(*m);
  EXPECT_EQ(CountOpcode(*f, Opcode::kAlloca), 1u);  // must stay
}

TEST(Mem2RegTest, LoadBeforeStoreBecomesUndef) {
  auto m = ParseModuleOrDie(R"(
    func @f() -> i32 {
    entry:
      %a = alloca i32
      %v = load %a
      ret %v
    }
  )");
  Function* f = m->GetFunction("f");
  EXPECT_TRUE(Mem2RegPass().RunOnFunction(*f));
  ExpectValid(*m);
  auto* ret = Cast<RetInst>(f->entry()->Terminator());
  EXPECT_TRUE(Isa<UndefValue>(ret->value()));
}

TEST(InstCombineTest, ConstantFolding) {
  auto m = ParseModuleOrDie(R"(
    func @f() -> i32 {
    entry:
      %a = add i32 2, i32 3
      %b = mul %a, i32 4
      %c = sub %b, i32 20
      ret %c
    }
  )");
  Function* f = m->GetFunction("f");
  EXPECT_TRUE(InstCombinePass().RunOnFunction(*f));
  DcePass().RunOnFunction(*f);
  ExpectValid(*m);
  auto* ret = Cast<RetInst>(f->entry()->Terminator());
  auto* c = DynCast<ConstantInt>(ret->value());
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->value(), 0u);
  EXPECT_EQ(f->entry()->size(), 1u);  // everything folded away
}

TEST(InstCombineTest, PaperExampleSelfSubtraction) {
  // §3: "x = input(); y = x; x -= y" must become x == 0.
  auto m = ParseModuleOrDie(R"(
    func @f(%input: i32) -> i32 {
    entry:
      %x = sub %input, %input
      ret %x
    }
  )");
  Function* f = m->GetFunction("f");
  EXPECT_TRUE(InstCombinePass().RunOnFunction(*f));
  ExpectValid(*m);
  auto* ret = Cast<RetInst>(f->entry()->Terminator());
  auto* c = DynCast<ConstantInt>(ret->value());
  ASSERT_NE(c, nullptr);
  EXPECT_TRUE(c->IsZero());
}

TEST(InstCombineTest, AlgebraicIdentities) {
  auto m = ParseModuleOrDie(R"(
    func @f(%x: i32) -> i32 {
    entry:
      %a = add %x, i32 0
      %b = mul %a, i32 1
      %c = or %b, i32 0
      %d = and %c, i32 -1
      %e = xor %d, i32 0
      ret %e
    }
  )");
  Function* f = m->GetFunction("f");
  EXPECT_TRUE(InstCombinePass().RunOnFunction(*f));
  ExpectValid(*m);
  auto* ret = Cast<RetInst>(f->entry()->Terminator());
  EXPECT_EQ(ret->value(), f->Arg(0));
}

TEST(InstCombineTest, ReassociatesConstantChains) {
  auto m = ParseModuleOrDie(R"(
    func @f(%x: i32) -> i32 {
    entry:
      %a = add %x, i32 5
      %b = add %a, i32 7
      ret %b
    }
  )");
  Function* f = m->GetFunction("f");
  EXPECT_TRUE(InstCombinePass().RunOnFunction(*f));
  DcePass().RunOnFunction(*f);
  ExpectValid(*m);
  // Expect a single add of 12.
  EXPECT_EQ(CountOpcode(*f, Opcode::kAdd), 1u);
  std::string text = PrintFunction(*f);
  EXPECT_NE(text.find("add %x, i32 12"), std::string::npos);
}

TEST(InstCombineTest, ICmpSimplifications) {
  auto m = ParseModuleOrDie(R"(
    func @f(%x: i32, %b: i1) -> i1 {
    entry:
      %self = icmp slt %x, %x
      %zext = zext %b to i32
      %narrow = icmp ne %zext, i32 0
      %both = and %self, %narrow
      ret %both
    }
  )");
  Function* f = m->GetFunction("f");
  EXPECT_TRUE(InstCombinePass().RunOnFunction(*f));
  DcePass().RunOnFunction(*f);
  ExpectValid(*m);
  // icmp slt x,x -> false; icmp ne (zext b),0 -> b; and false, b -> false.
  auto* ret = Cast<RetInst>(f->entry()->Terminator());
  auto* c = DynCast<ConstantInt>(ret->value());
  ASSERT_NE(c, nullptr);
  EXPECT_TRUE(c->IsZero());
}

TEST(InstCombineTest, SelectSimplifications) {
  auto m = ParseModuleOrDie(R"(
    func @f(%c: i1, %x: i32) -> i32 {
    entry:
      %same = select %c, %x, %x
      %konst = select i1 1, %same, i32 9
      ret %konst
    }
  )");
  Function* f = m->GetFunction("f");
  EXPECT_TRUE(InstCombinePass().RunOnFunction(*f));
  ExpectValid(*m);
  auto* ret = Cast<RetInst>(f->entry()->Terminator());
  EXPECT_EQ(ret->value(), f->Arg(1));
}

TEST(DceTest, RemovesDeadChainsAndCycles) {
  auto m = ParseModuleOrDie(R"(
    func @f(%n: i32) -> i32 {
    entry:
      %dead1 = add %n, i32 1
      %dead2 = mul %dead1, i32 2
      br label %loop
    loop:
      %dead_phi = phi i32 [ i32 0, %entry ], [ %dead_next, %loop ]
      %dead_next = add %dead_phi, i32 1
      %live = phi i32 [ i32 0, %entry ], [ %live_next, %loop ]
      %live_next = add %live, i32 2
      %c = icmp slt %live_next, %n
      br %c, label %loop, label %exit
    exit:
      ret %live
    }
  )");
  Function* f = m->GetFunction("f");
  EXPECT_TRUE(DcePass().RunOnFunction(*f));
  ExpectValid(*m);
  EXPECT_EQ(CountOpcode(*f, Opcode::kPhi), 1u);   // dead phi cycle removed
  EXPECT_EQ(CountOpcode(*f, Opcode::kMul), 0u);
}

TEST(DceTest, KeepsSideEffects) {
  auto m = ParseModuleOrDie(R"(
    declare @ext(i32) -> i32
    func @f(%x: i32) -> i32 {
    entry:
      %unused = call @ext(%x)
      %a = alloca i32
      store %x, %a
      ret %x
    }
  )");
  Function* f = m->GetFunction("f");
  DcePass().RunOnFunction(*f);
  ExpectValid(*m);
  EXPECT_EQ(CountOpcode(*f, Opcode::kCall), 1u);
  EXPECT_EQ(CountOpcode(*f, Opcode::kStore), 1u);
}

TEST(SimplifyCfgTest, FoldsConstantBranches) {
  auto m = ParseModuleOrDie(R"(
    func @f(%x: i32) -> i32 {
    entry:
      br i1 1, label %live, label %dead
    live:
      ret %x
    dead:
      %y = add %x, i32 1
      ret %y
    }
  )");
  Function* f = m->GetFunction("f");
  EXPECT_TRUE(SimplifyCfgPass().RunOnFunction(*f));
  ExpectValid(*m);
  EXPECT_EQ(f->NumBlocks(), 1u);
  EXPECT_EQ(CountOpcode(*f, Opcode::kAdd), 0u);
}

TEST(SimplifyCfgTest, MergesChains) {
  auto m = ParseModuleOrDie(R"(
    func @f(%x: i32) -> i32 {
    entry:
      br label %mid
    mid:
      %a = add %x, i32 1
      br label %tail
    tail:
      ret %a
    }
  )");
  Function* f = m->GetFunction("f");
  EXPECT_TRUE(SimplifyCfgPass().RunOnFunction(*f));
  ExpectValid(*m);
  EXPECT_EQ(f->NumBlocks(), 1u);
}

TEST(SimplifyCfgTest, ForwardsEmptyBlocksWithPhiFixup) {
  auto m = ParseModuleOrDie(R"(
    func @f(%c: i1) -> i32 {
    entry:
      br %c, label %hop, label %other
    hop:
      br label %join
    other:
      br label %join
    join:
      %r = phi i32 [ i32 1, %hop ], [ i32 2, %other ]
      ret %r
    }
  )");
  Function* f = m->GetFunction("f");
  EXPECT_TRUE(SimplifyCfgPass().RunOnFunction(*f));
  ExpectValid(*m);
  // `hop` forwards (entry joins directly); `other` must stay because entry
  // then already reaches join and the phi needs distinct values per edge.
  EXPECT_EQ(f->NumBlocks(), 3u);
  Instruction* phi = nullptr;
  for (BasicBlock& bb : *f) {
    for (auto& inst : bb) {
      if (inst->opcode() == Opcode::kPhi) {
        phi = inst.get();
      }
    }
  }
  ASSERT_NE(phi, nullptr);
  EXPECT_EQ(Cast<PhiInst>(phi)->NumIncoming(), 2u);
}

TEST(CseTest, EliminatesRedundantExpressions) {
  auto m = ParseModuleOrDie(R"(
    func @f(%a: i32, %b: i32) -> i32 {
    entry:
      %x = add %a, %b
      %y = add %a, %b
      %z = add %b, %a
      %s1 = add %x, %y
      %s2 = add %s1, %z
      ret %s2
    }
  )");
  Function* f = m->GetFunction("f");
  EXPECT_TRUE(CsePass().RunOnFunction(*f));
  ExpectValid(*m);
  // x, y, z collapse into one (commutative canonicalization included).
  EXPECT_EQ(CountOpcode(*f, Opcode::kAdd), 3u);
}

TEST(CseTest, DominatorScopedAcrossBlocks) {
  auto m = ParseModuleOrDie(R"(
    func @f(%a: i32, %c: i1) -> i32 {
    entry:
      %x = mul %a, %a
      br %c, label %t, label %e
    t:
      %y = mul %a, %a
      ret %y
    e:
      %z = mul %a, %a
      ret %z
    }
  )");
  Function* f = m->GetFunction("f");
  EXPECT_TRUE(CsePass().RunOnFunction(*f));
  ExpectValid(*m);
  EXPECT_EQ(CountOpcode(*f, Opcode::kMul), 1u);
}

TEST(CseTest, SiblingBlocksDoNotShare) {
  auto m = ParseModuleOrDie(R"(
    func @f(%a: i32, %c: i1) -> i32 {
    entry:
      br %c, label %t, label %e
    t:
      %y = mul %a, %a
      ret %y
    e:
      %z = mul %a, %a
      ret %z
    }
  )");
  Function* f = m->GetFunction("f");
  EXPECT_FALSE(CsePass().RunOnFunction(*f));
  EXPECT_EQ(CountOpcode(*f, Opcode::kMul), 2u);
}

TEST(CseTest, LoadEliminationRespectsStores) {
  auto m = ParseModuleOrDie(R"(
    func @f(%p: i32*, %q: i32*) -> i32 {
    entry:
      %v1 = load %p
      %v2 = load %p
      store i32 5, %q
      %v3 = load %p
      %s1 = add %v1, %v2
      %s2 = add %s1, %v3
      ret %s2
    }
  )");
  Function* f = m->GetFunction("f");
  EXPECT_TRUE(CsePass().RunOnFunction(*f));
  ExpectValid(*m);
  // v2 folds into v1; v3 must stay (q may alias p).
  EXPECT_EQ(CountOpcode(*f, Opcode::kLoad), 2u);
}

TEST(CseTest, StoreForwardsToLoad) {
  auto m = ParseModuleOrDie(R"(
    func @f(%p: i32*, %x: i32) -> i32 {
    entry:
      store %x, %p
      %v = load %p
      ret %v
    }
  )");
  Function* f = m->GetFunction("f");
  EXPECT_TRUE(CsePass().RunOnFunction(*f));
  ExpectValid(*m);
  EXPECT_EQ(CountOpcode(*f, Opcode::kLoad), 0u);
  auto* ret = Cast<RetInst>(f->entry()->Terminator());
  EXPECT_EQ(ret->value(), f->Arg(1));
}

TEST(SroaTest, SplitsConstantIndexedArray) {
  auto m = ParseModuleOrDie(R"(
    func @f(%x: i32) -> i32 {
    entry:
      %buf = alloca [4 x i32]
      %p0 = gep [4 x i32], %buf, i64 0, i64 0
      %p2 = gep [4 x i32], %buf, i64 0, i64 2
      store %x, %p0
      store i32 7, %p2
      %v0 = load %p0
      %v2 = load %p2
      %s = add %v0, %v2
      ret %s
    }
  )");
  Function* f = m->GetFunction("f");
  EXPECT_TRUE(SroaPass().RunOnFunction(*f));
  ExpectValid(*m);
  EXPECT_EQ(CountOpcode(*f, Opcode::kGep), 0u);
  EXPECT_EQ(CountOpcode(*f, Opcode::kAlloca), 2u);
  // And now mem2reg can promote both.
  EXPECT_TRUE(Mem2RegPass().RunOnFunction(*f));
  EXPECT_EQ(CountOpcode(*f, Opcode::kAlloca), 0u);
}

TEST(SroaTest, SkipsVariableIndexAccess) {
  auto m = ParseModuleOrDie(R"(
    func @f(%i: i64) -> i32 {
    entry:
      %buf = alloca [4 x i32]
      %p = gep [4 x i32], %buf, i64 0, %i
      %v = load %p
      ret %v
    }
  )");
  Function* f = m->GetFunction("f");
  EXPECT_FALSE(SroaPass().RunOnFunction(*f));
  EXPECT_EQ(CountOpcode(*f, Opcode::kAlloca), 1u);
}

TEST(SroaTest, SplitsStructFields) {
  auto m = ParseModuleOrDie(R"(
    func @f(%x: i32) -> i32 {
    entry:
      %s = alloca {i32, i8, i32}
      %f0 = gep {i32, i8, i32}, %s, i64 0, i64 0
      %f2 = gep {i32, i8, i32}, %s, i64 0, i64 2
      store %x, %f0
      store i32 3, %f2
      %a = load %f0
      %b = load %f2
      %r = add %a, %b
      ret %r
    }
  )");
  Function* f = m->GetFunction("f");
  EXPECT_TRUE(SroaPass().RunOnFunction(*f));
  ExpectValid(*m);
  EXPECT_EQ(CountOpcode(*f, Opcode::kAlloca), 2u);
}

TEST(RuntimeChecksTest, GuardsDivisionAndShift) {
  auto m = ParseModuleOrDie(R"(
    func @f(%a: i32, %b: i32) -> i32 {
    entry:
      %q = sdiv %a, %b
      %s = shl %q, %b
      %safe = udiv %a, i32 8
      ret %s
    }
  )");
  Function* f = m->GetFunction("f");
  EXPECT_TRUE(RuntimeCheckPass(RuntimeCheckOptions{}).RunOnFunction(*f));
  ExpectValid(*m);
  EXPECT_EQ(CountOpcode(*f, Opcode::kCheck), 2u);  // div by %b, shift by %b; const div skipped
}

TEST(RuntimeChecksTest, ElidesWhenRangeProvesSafe) {
  auto m = ParseModuleOrDie(R"(
    func @f(%a: i32, %b: i32) -> i32 {
    entry:
      %masked = and %b, i32 7
      %nonzero = or %masked, i32 1
      %q = sdiv %a, %nonzero
      %s = shl %q, %masked
      ret %s
    }
  )");
  Function* f = m->GetFunction("f");
  // nonzero in [1,7]: no div check; masked in [0,7] < 32: no shift check.
  EXPECT_FALSE(RuntimeCheckPass(RuntimeCheckOptions{}).RunOnFunction(*f));
  EXPECT_EQ(CountOpcode(*f, Opcode::kCheck), 0u);
}

TEST(RuntimeChecksTest, GuardsVariableArrayIndex) {
  auto m = ParseModuleOrDie(R"(
    global @tab : [4 x i8] const = [1, 2, 3, 4]
    func @f(%i: i64) -> i8 {
    entry:
      %p = gep [4 x i8], @tab, i64 0, %i
      %v = load %p
      ret %v
    }
  )");
  Function* f = m->GetFunction("f");
  EXPECT_TRUE(RuntimeCheckPass(RuntimeCheckOptions{}).RunOnFunction(*f));
  ExpectValid(*m);
  EXPECT_EQ(CountOpcode(*f, Opcode::kCheck), 1u);
}

}  // namespace
}  // namespace overify
