// Tests for the slicing subsystem (docs/slicing.md): post-dominators and
// control dependence, call-graph mod/ref + may-trap summaries, the alias and
// call-graph edge cases the slicer leans on, slice extraction + IR
// verification, and slice-vs-whole-program verdict equivalence with the
// full-program interpreter as the soundness oracle.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "src/analysis/call_graph.h"
#include "src/analysis/dependence_graph.h"
#include "src/analysis/slicer.h"
#include "src/driver/compiler.h"
#include "src/exec/interpreter.h"
#include "src/ir/dominators.h"
#include "src/ir/parser.h"
#include "src/ir/verifier.h"
#include "src/workloads/textgen.h"
#include "src/workloads/workloads.h"

namespace overify {
namespace {

BasicBlock* FindBlock(Function* fn, const std::string& name) {
  for (BasicBlock& block : *fn) {
    if (block.name() == name) {
      return &block;
    }
  }
  return nullptr;
}

// ---------------------------------------------------------------- post-dom

TEST(PostDominatorTest, DiamondJoins) {
  auto m = ParseModuleOrDie(R"(
    func @f(%c: i1) -> i32 {
    entry:
      br %c, label %then, label %else
    then:
      br label %join
    else:
      br label %join
    join:
      ret i32 0
    }
  )");
  Function* f = m->GetFunction("f");
  PostDominatorTree pdt(*f);
  BasicBlock* entry = FindBlock(f, "entry");
  BasicBlock* then_bb = FindBlock(f, "then");
  BasicBlock* else_bb = FindBlock(f, "else");
  BasicBlock* join = FindBlock(f, "join");
  EXPECT_EQ(pdt.ImmediatePostDominator(entry), join);
  EXPECT_EQ(pdt.ImmediatePostDominator(then_bb), join);
  EXPECT_EQ(pdt.ImmediatePostDominator(else_bb), join);
  EXPECT_EQ(pdt.ImmediatePostDominator(join), nullptr);  // virtual exit
  EXPECT_TRUE(pdt.PostDominates(join, entry));
  EXPECT_FALSE(pdt.PostDominates(then_bb, entry));
  EXPECT_TRUE(pdt.PostDominates(join, join));

  // then/else are control-dependent on entry; join is not.
  const auto& deps = pdt.ControlDependencies();
  ASSERT_EQ(deps.count(then_bb), 1u);
  EXPECT_EQ(deps.at(then_bb), std::vector<BasicBlock*>{entry});
  ASSERT_EQ(deps.count(else_bb), 1u);
  EXPECT_EQ(deps.count(join), 0u);
}

TEST(PostDominatorTest, MultipleExitsMeetAtVirtualExit) {
  auto m = ParseModuleOrDie(R"(
    func @f(%c: i1) -> i32 {
    entry:
      br %c, label %a, label %b
    a:
      ret i32 1
    b:
      ret i32 2
    }
  )");
  Function* f = m->GetFunction("f");
  PostDominatorTree pdt(*f);
  // No common block post-dominates entry: its ipdom is the virtual exit.
  EXPECT_EQ(pdt.ImmediatePostDominator(FindBlock(f, "entry")), nullptr);
  EXPECT_TRUE(pdt.HasInfo(FindBlock(f, "entry")));
}

TEST(PostDominatorTest, LoopBlocksDependOnLoopBranch) {
  auto m = ParseModuleOrDie(R"(
    func @f(%n: i32) -> i32 {
    entry:
      br label %header
    header:
      %i = phi i32 [ i32 0, %entry ], [ %inc, %body ]
      %cont = icmp slt %i, %n
      br %cont, label %body, label %exit
    body:
      %inc = add %i, i32 1
      br label %header
    exit:
      ret %i
    }
  )");
  Function* f = m->GetFunction("f");
  PostDominatorTree pdt(*f);
  BasicBlock* header = FindBlock(f, "header");
  BasicBlock* body = FindBlock(f, "body");
  auto& deps = const_cast<PostDominatorTree&>(pdt).ControlDependencies();
  // The body runs iff the header branch goes its way; the header re-runs
  // when the loop iterates, so it is control-dependent on itself.
  ASSERT_EQ(deps.count(body), 1u);
  EXPECT_EQ(deps.at(body), std::vector<BasicBlock*>{header});
  ASSERT_EQ(deps.count(header), 1u);
  EXPECT_EQ(deps.at(header), std::vector<BasicBlock*>{header});
}

// ----------------------------------------------------------------- mod/ref

TEST(ModRefTest, GlobalReadAndWriteAttribution) {
  auto m = ParseModuleOrDie(R"(
    global @counter : i32 = [7, 0, 0, 0]
    global @table : i32 const = [9, 0, 0, 0]

    func @bump() -> i32 {
    entry:
      %v = load @counter
      %w = load @table
      %s = add %v, %w
      store %s, @counter
      ret %s
    }
    func @caller() -> i32 {
    entry:
      %r = call @bump()
      ret %r
    }
  )");
  CallGraph cg(*m);
  ModRefSummaries summaries(*m, cg);
  const GlobalVariable* counter = m->GetGlobal("counter");
  const GlobalVariable* table = m->GetGlobal("table");

  const ModRefSummary& bump = summaries.Of(m->GetFunction("bump"));
  EXPECT_EQ(bump.ref_globals.count(counter), 1u);
  EXPECT_EQ(bump.ref_globals.count(table), 1u);
  EXPECT_EQ(bump.mod_globals.count(counter), 1u);
  EXPECT_EQ(bump.mod_globals.count(table), 0u);
  EXPECT_FALSE(bump.reads_unknown);
  EXPECT_FALSE(bump.writes_unknown);
  EXPECT_FALSE(bump.may_trap);  // constant-offset global accesses are safe

  // The caller inherits the callee's global mod/ref transitively.
  const ModRefSummary& caller = summaries.Of(m->GetFunction("caller"));
  EXPECT_EQ(caller.ref_globals.count(counter), 1u);
  EXPECT_EQ(caller.mod_globals.count(counter), 1u);
  EXPECT_FALSE(caller.may_trap);
}

TEST(ModRefTest, ParamModRefTranslatesThroughCallSites) {
  auto m = ParseModuleOrDie(R"(
    func @sink(%p: i8*) -> i32 {
    entry:
      store i8 1, %p
      ret i32 0
    }
    func @caller() -> i32 {
    entry:
      %buf = alloca [4 x i8]
      %p = gep [4 x i8], %buf, i64 0, i64 0
      %r = call @sink(%p)
      ret %r
    }
  )");
  CallGraph cg(*m);
  ModRefSummaries summaries(*m, cg);
  const ModRefSummary& sink = summaries.Of(m->GetFunction("sink"));
  EXPECT_EQ(sink.mod_params.count(0u), 1u);
  EXPECT_TRUE(sink.may_trap);  // a store through an argument can trap
  // At the call site the write lands in the caller's own alloca, which is
  // local: nothing escapes into the caller's summary sets.
  const ModRefSummary& caller = summaries.Of(m->GetFunction("caller"));
  EXPECT_TRUE(caller.mod_params.empty());
  EXPECT_TRUE(caller.mod_globals.empty());
  EXPECT_FALSE(caller.writes_unknown);
  EXPECT_TRUE(caller.may_trap);  // inherited from @sink
}

TEST(ModRefTest, RecursionAndIndirectChainsMayTrap) {
  auto m = ParseModuleOrDie(R"(
    func @even(%n: i32) -> i32 {
    entry:
      %z = icmp eq %n, i32 0
      br %z, label %yes, label %no
    yes:
      ret i32 1
    no:
      %m1 = sub %n, i32 1
      %r = call @odd(%m1)
      ret %r
    }
    func @odd(%n: i32) -> i32 {
    entry:
      %z = icmp eq %n, i32 0
      br %z, label %yes, label %no
    yes:
      ret i32 0
    no:
      %m1 = sub %n, i32 1
      %r = call @even(%m1)
      ret %r
    }
    func @top(%n: i32) -> i32 {
    entry:
      %r = call @even(%n)
      ret %r
    }
    func @leafy(%n: i32) -> i32 {
    entry:
      %d = add %n, i32 2
      ret %d
    }
    func @mid(%n: i32) -> i32 {
    entry:
      %r = call @leafy(%n)
      ret %r
    }
  )");
  CallGraph cg(*m);
  // Mutual recursion is a cycle even without self-loops.
  EXPECT_TRUE(cg.IsRecursive(m->GetFunction("even")));
  EXPECT_TRUE(cg.IsRecursive(m->GetFunction("odd")));
  EXPECT_FALSE(cg.IsRecursive(m->GetFunction("top")));
  EXPECT_FALSE(cg.IsRecursive(m->GetFunction("mid")));

  ModRefSummaries summaries(*m, cg);
  // Recursive functions may blow the engine's stack-depth limit; callers of
  // recursive functions inherit that.
  EXPECT_TRUE(summaries.Of(m->GetFunction("even")).may_trap);
  EXPECT_TRUE(summaries.Of(m->GetFunction("top")).may_trap);
  // A recursion-free call chain of safe functions stays trap-free.
  EXPECT_FALSE(summaries.Of(m->GetFunction("leafy")).may_trap);
  EXPECT_FALSE(summaries.Of(m->GetFunction("mid")).may_trap);
}

// --------------------------------------------- alias edge cases for slicing

TEST(AliasSlicingEdgeCases, TwoBufferArgumentsMayAlias) {
  // The two-input umain contract passes two distinct buffers, but the alias
  // analysis cannot prove that from the IR alone: the slicer must see
  // may-alias so cross-buffer memory dependences are kept.
  auto m = ParseModuleOrDie(R"(
    func @umain(%a: i8*, %na: i32, %b: i8*, %nb: i32) -> i32 {
    entry:
      %x = load %a
      %y = load %b
      %s = add %x, %y
      ret i32 0
    }
  )");
  Function* f = m->GetFunction("umain");
  EXPECT_EQ(Alias(f->Arg(0), 1, f->Arg(2), 1), AliasResult::kMayAlias);
  EXPECT_EQ(Alias(f->Arg(0), 1, f->Arg(0), 1), AliasResult::kMustAlias);
}

TEST(AliasSlicingEdgeCases, NonEscapingAllocaNeverAliasesArgument) {
  auto m = ParseModuleOrDie(R"(
    func @umain(%in: i8*, %n: i32) -> i32 {
    entry:
      %local = alloca i32
      store i32 5, %local
      %v = load %local
      %c = load %in
      %cw = zext %c to i32
      %s = add %v, %cw
      ret %s
    }
  )");
  Function* f = m->GetFunction("umain");
  Instruction* local = nullptr;
  for (auto& inst : *f->entry()) {
    if (inst->name() == "local") {
      local = inst.get();
    }
  }
  ASSERT_NE(local, nullptr);
  EXPECT_EQ(Alias(local, 4, f->Arg(0), 1), AliasResult::kNoAlias);
}

// ------------------------------------------------------------------ slicer

// Compiles MiniC at a level and returns the module + slice result.
struct SlicedProgram {
  CompileResult compiled;
  SliceResult slices;
};

SlicedProgram SliceProgram(const std::string& source, OptLevel level) {
  SlicedProgram out;
  Compiler compiler;
  out.compiled = compiler.Compile(source, level);
  EXPECT_TRUE(out.compiled.ok) << out.compiled.errors;
  if (out.compiled.ok) {
    Slicer slicer(*out.compiled.module, out.compiled.module->GetFunction("umain"));
    out.slices = slicer.Run();
  }
  return out;
}

TEST(SlicerTest, SlicesVerifyAndShrink) {
  const Workload* wc = FindWorkload("wc");
  ASSERT_NE(wc, nullptr);
  for (OptLevel level : {OptLevel::kOverify, OptLevel::kO3, OptLevel::kO0}) {
    SlicedProgram p = SliceProgram(wc->source, level);
    ASSERT_TRUE(p.slices.ok) << p.slices.error;
    EXPECT_GT(p.slices.checks_found, 0u);
    ASSERT_GT(p.slices.slices.size(), 0u);
    for (const Slice& slice : p.slices.slices) {
      // Every emitted slice passes the IR verifier (also enforced inside
      // Slicer::Run, re-checked here at module level under ASan/UBSan CI).
      EXPECT_TRUE(VerifyFunction(*slice.fn).empty());
      EXPECT_LE(slice.instructions, p.slices.entry_instructions);
      EXPECT_FALSE(slice.criteria.empty());
    }
    // Erasure restores the module (no dangling slice functions).
    size_t built = p.slices.slices.size();
    size_t fns_with_slices = p.compiled.module->functions().size();
    Slicer::EraseSlices(*p.compiled.module, p.slices);
    EXPECT_EQ(p.compiled.module->functions().size(), fns_with_slices - built);
    for (const auto& fn : p.compiled.module->functions()) {
      EXPECT_EQ(fn->name().find(".slice."), std::string::npos);
    }
  }
}

// Distinct (kind, confirmed) verdict set of an Analyze run, the semantic
// the slicing differential pins: `confirmed` means the bug's model input
// reproduces a trap on the full-program concrete interpreter.
std::set<std::pair<std::string, bool>> VerdictSet(const SymexResult& result,
                                                  Module& module) {
  std::set<std::pair<std::string, bool>> verdicts;
  for (const BugReport& bug : result.bugs) {
    Interpreter interp(module);
    InterpResult replay = interp.Run(module.GetFunction("umain"), bug.example_input);
    verdicts.emplace(BugKindName(bug.kind), !replay.ok);
  }
  return verdicts;
}

void ExpectSliceModeMatchesWholeProgram(const std::string& source,
                                        unsigned input_bytes, OptLevel level) {
  Compiler compiler;
  CompileResult compiled = compiler.Compile(source, level);
  ASSERT_TRUE(compiled.ok) << compiled.errors;
  SymexLimits limits;
  SymexOptions whole;
  SymexResult whole_result = Analyze(compiled, "umain", input_bytes, limits, whole);
  ASSERT_TRUE(whole_result.ok) << whole_result.error;

  SymexOptions sliced;
  sliced.slice_checks = true;
  SymexResult slice_result = Analyze(compiled, "umain", input_bytes, limits, sliced);
  ASSERT_TRUE(slice_result.ok) << slice_result.error;

  EXPECT_EQ(whole_result.exhausted, slice_result.exhausted);
  EXPECT_EQ(VerdictSet(whole_result, *compiled.module),
            VerdictSet(slice_result, *compiled.module));
  // Every slice-mode bug must replay (confirm) on the full program, unless
  // it is an engine-side error report with no model.
  for (const BugReport& bug : slice_result.bugs) {
    if (bug.kind == BugKind::kEngineError) {
      continue;
    }
    Interpreter interp(*compiled.module);
    EXPECT_FALSE(interp.Run(compiled.module->GetFunction("umain"), bug.example_input).ok)
        << "slice-mode bug did not reproduce: " << bug.message;
  }
}

TEST(SliceDifferentialTest, BuggyProgramsFindTheSameBugs) {
  // Division by an input byte and an input-indexed out-of-bounds read, each
  // behind its own branch: multiple criteria, distinct cones.
  const std::string buggy = R"(
int umain(unsigned char *in, int n) {
  int t[4];
  t[0] = 10; t[1] = 20; t[2] = 30; t[3] = 40;
  int r = 0;
  if (in[0] == 'd') { r = 100 / (in[1] - 48); }
  else if (in[0] == 'o') { r = t[in[1] % 8]; }
  return r;
}
)";
  for (OptLevel level : {OptLevel::kO0, OptLevel::kOverify, OptLevel::kO3}) {
    ExpectSliceModeMatchesWholeProgram(buggy, 3, level);
  }
}

TEST(SliceDifferentialTest, TrapFreeWorkloadAgrees) {
  const Workload* wc = FindWorkload("wc_any");
  ASSERT_NE(wc, nullptr);
  ExpectSliceModeMatchesWholeProgram(wc->source, 4, OptLevel::kOverify);
}

TEST(SliceDifferentialTest, RandomizedKernelsPreserveVerdicts) {
  // Textgen kernels are total by construction: both modes must agree on
  // "no bugs, exhausted" — any divergence is a slicer soundness defect.
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    KernelGenOptions gen;
    gen.seed = seed;
    ExpectSliceModeMatchesWholeProgram(GenerateMiniCKernel(gen), 3,
                                       OptLevel::kOverify);
  }
}

TEST(SliceDifferentialTest, SliceCountersAreExported) {
  const Workload* wc = FindWorkload("wc");
  ASSERT_NE(wc, nullptr);
  Compiler compiler;
  CompileResult compiled = compiler.Compile(wc->source, OptLevel::kOverify);
  ASSERT_TRUE(compiled.ok);
  SymexLimits limits;
  SymexOptions sliced;
  sliced.slice_checks = true;
  SymexResult result = Analyze(compiled, "umain", 4, limits, sliced);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_GT(result.metrics.Get(Counter::kSliceChecksFound), 0u);
  EXPECT_GT(result.metrics.Get(Counter::kSlicesBuilt), 0u);
  EXPECT_GT(result.metrics.Get(Counter::kSliceConeInstructions), 0u);
  EXPECT_EQ(result.metrics.Get(Counter::kSliceFallbacks), 0u);
  EXPECT_EQ(result.metrics.hist(Hist::kSliceConeRatioPct).count(),
            result.metrics.Get(Counter::kSlicesBuilt));
  // All module functions named *.slice.* were erased after the run.
  for (const auto& fn : compiled.module->functions()) {
    EXPECT_EQ(fn->name().find(".slice."), std::string::npos);
  }
}

}  // namespace
}  // namespace overify
