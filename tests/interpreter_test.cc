// Tests for the concrete interpreter and its cost model.
#include <gtest/gtest.h>

#include "src/exec/interpreter.h"
#include "src/frontend/codegen.h"

namespace overify {
namespace {

std::unique_ptr<Module> CompileOrDie(const std::string& source) {
  DiagnosticEngine diags;
  auto m = CompileMiniC(source, "interp_test", diags);
  EXPECT_NE(m, nullptr) << diags.ToString();
  return m;
}

TEST(InterpreterTest, ArithmeticAndControlFlow) {
  auto m = CompileOrDie(R"(
    int umain(unsigned char *in, int n) {
      int sum = 0;
      for (int i = 1; i <= 10; i++) { sum += i; }
      return sum;
    }
  )");
  Interpreter interp(*m);
  auto result = interp.Run("umain", "");
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.return_value, 55);
  EXPECT_GT(result.instructions, 50u);
  EXPECT_GT(result.cost_units, result.instructions / 2);
}

TEST(InterpreterTest, ReadsInputBuffer) {
  auto m = CompileOrDie(R"(
    int umain(unsigned char *in, int n) {
      int sum = 0;
      for (int i = 0; i < n; i++) { sum += in[i]; }
      return sum;
    }
  )");
  Interpreter interp(*m);
  auto result = interp.Run("umain", "abc");
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.return_value, 'a' + 'b' + 'c');
}

TEST(InterpreterTest, SignedSemantics) {
  auto m = CompileOrDie(R"(
    int umain(unsigned char *in, int n) {
      char c = (char)in[0];      /* 0xFF -> -1 */
      int wide = c;
      int shifted = wide >> 1;   /* arithmetic shift */
      return shifted;
    }
  )");
  Interpreter interp(*m);
  auto result = interp.Run("umain", "\xFF");
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.return_value, -1);
}

TEST(InterpreterTest, DivisionByZeroTraps) {
  auto m = CompileOrDie(R"(
    int umain(unsigned char *in, int n) { return 7 / (in[0] - 'a'); }
  )");
  Interpreter interp(*m);
  auto bad = interp.Run("umain", "a");
  EXPECT_FALSE(bad.ok);
  EXPECT_NE(bad.error.find("division by zero"), std::string::npos);
  auto good = interp.Run("umain", "b");
  EXPECT_TRUE(good.ok);
  EXPECT_EQ(good.return_value, 7);
}

TEST(InterpreterTest, OutOfBoundsTraps) {
  auto m = CompileOrDie(R"(
    int umain(unsigned char *in, int n) {
      int a[2] = {1, 2};
      return a[in[0]];
    }
  )");
  Interpreter interp(*m);
  EXPECT_TRUE(interp.Run("umain", "\x01").ok);
  auto result = interp.Run("umain", "\x05");
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("out-of-bounds"), std::string::npos);
}

TEST(InterpreterTest, CheckTraps) {
  auto m = CompileOrDie(R"(
    int umain(unsigned char *in, int n) {
      __check(in[0] != 'x', "no x allowed");
      return 0;
    }
  )");
  Interpreter interp(*m);
  EXPECT_TRUE(interp.Run("umain", "y").ok);
  auto result = interp.Run("umain", "x");
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("no x allowed"), std::string::npos);
}

TEST(InterpreterTest, PutcharOutput) {
  auto m = CompileOrDie(R"(
    int umain(unsigned char *in, int n) {
      for (int i = 0; i < n; i++) { putchar(in[i] + 1); }
      return 0;
    }
  )");
  Interpreter interp(*m);
  auto result = interp.Run("umain", "abc");
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.output, "bcd");
}

TEST(InterpreterTest, GlobalsPersistAcrossCalls) {
  auto m = CompileOrDie(R"(
    int counter = 100;
    void bump(void) { counter += 1; }
    int umain(unsigned char *in, int n) {
      bump();
      bump();
      bump();
      return counter;
    }
  )");
  Interpreter interp(*m);
  auto result = interp.Run("umain", "");
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.return_value, 103);
}

TEST(InterpreterTest, RecursionAndStackDiscipline) {
  auto m = CompileOrDie(R"(
    int fib(int k) { return k < 2 ? k : fib(k - 1) + fib(k - 2); }
    int umain(unsigned char *in, int n) { return fib(12); }
  )");
  Interpreter interp(*m);
  auto result = interp.Run("umain", "");
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.return_value, 144);
}

TEST(InterpreterTest, InstructionLimitTrips) {
  auto m = CompileOrDie(R"(
    int umain(unsigned char *in, int n) {
      int i = 0;
      while (1) { i++; }
      return i;
    }
  )");
  Interpreter interp(*m);
  InterpLimits limits;
  limits.max_instructions = 10000;
  auto result = interp.Run(m->GetFunction("umain"), {}, limits);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("instruction limit"), std::string::npos);
}

TEST(InterpreterTest, CostModelWeightsApply) {
  auto m = CompileOrDie(R"(
    int umain(unsigned char *in, int n) {
      int a = in[0];
      return a / 3;
    }
  )");
  CostModel cheap;
  CostModel pricey;
  pricey.div = 100;
  Interpreter interp1(*m, cheap);
  Interpreter interp2(*m, pricey);
  auto r1 = interp1.Run("umain", "z");
  auto r2 = interp2.Run("umain", "z");
  ASSERT_TRUE(r1.ok && r2.ok);
  EXPECT_EQ(r1.return_value, r2.return_value);
  EXPECT_GT(r2.cost_units, r1.cost_units + 50);
}

}  // namespace
}  // namespace overify
