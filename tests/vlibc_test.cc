// Tests that both C library flavors compile and compute the same functions,
// and that the verify flavor's precondition checks fire on misuse.
//
// The equivalence sweep is property-style: every ctype predicate is compared
// against the host <cctype> on all 256 byte values, for both flavors, at
// -O0 and at -OVERIFY (so the optimization pipeline is part of what is
// being checked).
#include <gtest/gtest.h>

#include <cctype>
#include <string>

#include "src/driver/compiler.h"
#include "src/exec/interpreter.h"
#include "src/testing/diff_harness.h"

namespace overify {
namespace {

// Calls a one-int-arg libc function through a trampoline program.
struct LibcFixture {
  CompileResult compiled;

  LibcFixture(const std::string& fn, bool verify_flavor, OptLevel level) {
    std::string program =
        "int umain(unsigned char *in, int n) { return " + fn + "((int)in[0]); }";
    PipelineOptions options = PipelineOptions::For(level);
    options.use_verify_libc = verify_flavor;
    Compiler compiler;
    compiled = compiler.CompileWithOptions(program, options);
    EXPECT_TRUE(compiled.ok) << compiled.errors;
  }

  int Call(uint8_t c) {
    Interpreter interp(*compiled.module);
    auto result = interp.Run(compiled.module->GetFunction("umain"), {c});
    EXPECT_TRUE(result.ok) << result.error;
    return static_cast<int>(result.return_value);
  }
};

struct CtypeCase {
  const char* name;
  int (*reference)(int);
};

// The host functions are locale-dependent in theory; the C locale matches.
const CtypeCase kCtypeCases[] = {
    {"isspace", [](int c) { return std::isspace(c) != 0 ? 1 : 0; }},
    {"isdigit", [](int c) { return std::isdigit(c) != 0 ? 1 : 0; }},
    {"isalpha", [](int c) { return std::isalpha(c) != 0 ? 1 : 0; }},
    {"isalnum", [](int c) { return std::isalnum(c) != 0 ? 1 : 0; }},
    {"isupper", [](int c) { return std::isupper(c) != 0 ? 1 : 0; }},
    {"islower", [](int c) { return std::islower(c) != 0 ? 1 : 0; }},
    {"isprint", [](int c) { return std::isprint(c) != 0 ? 1 : 0; }},
    {"ispunct", [](int c) { return std::ispunct(c) != 0 ? 1 : 0; }},
    {"isxdigit", [](int c) { return std::isxdigit(c) != 0 ? 1 : 0; }},
    {"toupper", [](int c) { return std::toupper(c); }},
    {"tolower", [](int c) { return std::tolower(c); }},
};

class CtypeEquivalenceTest : public ::testing::TestWithParam<CtypeCase> {};

TEST_P(CtypeEquivalenceTest, BothFlavorsMatchHostOnAllBytes) {
  const CtypeCase& test_case = GetParam();
  LibcFixture standard(test_case.name, /*verify_flavor=*/false, OptLevel::kO0);
  LibcFixture verify(test_case.name, /*verify_flavor=*/true, OptLevel::kO0);
  LibcFixture verify_opt(test_case.name, /*verify_flavor=*/true, OptLevel::kOverify);
  for (int c = 0; c < 256; ++c) {
    int expected = test_case.reference(c);
    bool is_predicate = test_case.name[0] == 'i';
    auto norm = [&](int v) { return is_predicate ? (v != 0 ? 1 : 0) : v; };
    EXPECT_EQ(norm(standard.Call(static_cast<uint8_t>(c))), norm(expected))
        << test_case.name << "(" << c << ") standard flavor";
    EXPECT_EQ(norm(verify.Call(static_cast<uint8_t>(c))), norm(expected))
        << test_case.name << "(" << c << ") verify flavor";
    EXPECT_EQ(norm(verify_opt.Call(static_cast<uint8_t>(c))), norm(expected))
        << test_case.name << "(" << c << ") verify flavor at -OVERIFY";
  }
}

INSTANTIATE_TEST_SUITE_P(AllCtype, CtypeEquivalenceTest, ::testing::ValuesIn(kCtypeCases),
                         [](const ::testing::TestParamInfo<CtypeCase>& info) {
                           return info.param.name;
                         });

// String function equivalence across flavors via small driver programs.
struct StringCase {
  const char* name;
  const char* program;  // uses the input buffer; returns an int digest
  const char* input;
  int expected;
};

const StringCase kStringCases[] = {
    {"strlen_basic", "int umain(unsigned char *in, int n) { return (int)strlen((char*)in); }",
     "hello", 5},
    {"strlen_empty", "int umain(unsigned char *in, int n) { return (int)strlen((char*)in); }",
     "", 0},
    {"strcmp_equal",
     "int umain(unsigned char *in, int n) { return strcmp((char*)in, \"abc\"); }", "abc", 0},
    {"strcmp_less",
     "int umain(unsigned char *in, int n) { return strcmp((char*)in, \"abd\") < 0; }", "abc",
     1},
    {"strncmp_prefix",
     "int umain(unsigned char *in, int n) { return strncmp((char*)in, \"abX\", 2); }", "abc",
     0},
    {"strchr_found",
     R"(int umain(unsigned char *in, int n) {
          char *p = strchr((char*)in, 'l');
          return p ? (int)(*p) : -1;
        })",
     "hello", 'l'},
    {"strchr_missing",
     R"(int umain(unsigned char *in, int n) {
          char *p = strchr((char*)in, 'z');
          return p ? 1 : 0;
        })",
     "hello", 0},
    {"strrchr_last",
     R"(int umain(unsigned char *in, int n) {
          char buf[16];
          strcpy(buf, (char*)in);
          char *a = strchr(buf, 'l');
          char *b = strrchr(buf, 'l');
          return a != b;
        })",
     "hello", 1},
    {"strcpy_strcat",
     R"(int umain(unsigned char *in, int n) {
          char buf[32];
          strcpy(buf, (char*)in);
          strcat(buf, "!");
          return (int)strlen(buf);
        })",
     "hey", 4},
    {"strncpy_pads",
     R"(int umain(unsigned char *in, int n) {
          char buf[8];
          strncpy(buf, (char*)in, 8);
          return buf[5] == 0 && buf[7] == 0;
        })",
     "ab", 1},
    {"memcpy_memcmp",
     R"(int umain(unsigned char *in, int n) {
          unsigned char buf[8];
          memcpy(buf, in, (long)n);
          return memcmp(buf, in, (long)n);
        })",
     "xyzw", 0},
    {"memset_fill",
     R"(int umain(unsigned char *in, int n) {
          unsigned char buf[4];
          memset(buf, 7, 4);
          return buf[0] + buf[3];
        })",
     "", 14},
    {"atoi_basic", "int umain(unsigned char *in, int n) { return atoi((char*)in); }", "123",
     123},
    {"atoi_negative", "int umain(unsigned char *in, int n) { return atoi((char*)in); }",
     "  -45x", -45},
    {"abs_negative", "int umain(unsigned char *in, int n) { return abs(-7) + abs(3); }", "",
     10},
};

class StringEquivalenceTest : public ::testing::TestWithParam<StringCase> {};

TEST_P(StringEquivalenceTest, BothFlavorsAgree) {
  const StringCase& test_case = GetParam();
  for (bool verify_flavor : {false, true}) {
    for (OptLevel level : {OptLevel::kO0, OptLevel::kOverify}) {
      PipelineOptions options = PipelineOptions::For(level);
      options.use_verify_libc = verify_flavor;
      Compiler compiler;
      auto compiled = compiler.CompileWithOptions(test_case.program, options);
      ASSERT_TRUE(compiled.ok) << compiled.errors;
      Interpreter interp(*compiled.module);
      auto result = interp.Run("umain", test_case.input);
      ASSERT_TRUE(result.ok) << test_case.name << ": " << result.error;
      EXPECT_EQ(result.return_value, test_case.expected)
          << test_case.name << " flavor=" << verify_flavor << " level=" << OptLevelName(level);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllString, StringEquivalenceTest, ::testing::ValuesIn(kStringCases),
                         [](const ::testing::TestParamInfo<StringCase>& info) {
                           return info.param.name;
                         });

// ---- Symbolic-input property tests.
//
// The workload kernels lean on these helpers with *symbolic* arguments
// (comm_bufs passes a symbolic byte to strchr, seq_range parses symbolic
// digits with atoi, every filter runs tolower/toupper over symbolic bytes),
// so interpreting them on concrete bytes is not enough: the symbolic engine
// must explore them without false bugs, and both library flavors must
// produce the same differential signature. The differential harness is the
// oracle: each trampoline runs the full configuration lattice, which pits
// the standard flavor (-O0/-O3) against the verify flavor (-OVERIFY).

struct SymbolicHelperCase {
  const char* name;
  const char* program;
  unsigned sym_bytes;
};

const SymbolicHelperCase kSymbolicHelperCases[] = {
    {"strlen", "int umain(unsigned char *in, int n) { return (int)strlen((char*)in); }", 4},
    {"strcmp_sym",
     "int umain(unsigned char *in, int n) { return strcmp((char*)in, \"ab\"); }", 3},
    {"strncmp_sym",
     "int umain(unsigned char *in, int n) { return strncmp((char*)in, \"ab\", 2); }", 3},
    {"strchr_sym_char",  // symbolic needle, as comm_bufs uses it
     R"(int umain(unsigned char *in, int n) {
          char *p = strchr((char*)(in + 1), (int)in[0]);
          return p ? 1 : 0;
        })",
     4},
    {"strrchr_sym",
     R"(int umain(unsigned char *in, int n) {
          char *p = strrchr((char*)in, '/');
          return p ? (int)(unsigned char)p[1] : -1;
        })",
     4},
    {"atoi_sym", "int umain(unsigned char *in, int n) { return atoi((char*)in); }", 3},
    {"tolower_sym",
     "int umain(unsigned char *in, int n) { return tolower(in[0]) + toupper(in[1]); }", 2},
    {"isalnum_sym",
     R"(int umain(unsigned char *in, int n) {
          int c = 0;
          for (long i = 0; in[i]; i++) { if (isalnum(in[i])) { c++; } }
          return c;
        })",
     3},
};

class SymbolicHelperTest : public ::testing::TestWithParam<SymbolicHelperCase> {};

TEST_P(SymbolicHelperTest, FlavorsAgreeAcrossTheLattice) {
  const SymbolicHelperCase& test_case = GetParam();
  difftest::DiffOptions options;
  options.limits.max_seconds = 60;
  difftest::DiffReport report = difftest::RunDifferential(
      test_case.name, test_case.program, test_case.sym_bytes, options);
  EXPECT_TRUE(report.ok) << report.diff;
  for (const auto& cell : report.cells) {
    EXPECT_TRUE(cell.signature.exhausted) << cell.cell.Name();
    EXPECT_TRUE(cell.signature.bugs.empty())
        << cell.cell.Name() << ": " << cell.signature.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(AllHelpers, SymbolicHelperTest,
                         ::testing::ValuesIn(kSymbolicHelperCases),
                         [](const ::testing::TestParamInfo<SymbolicHelperCase>& info) {
                           return std::string(info.param.name);
                         });

// The verify flavor's branch-free ctype predicates are the reason -OVERIFY
// explores fewer paths (Table 1's O(3^n) at -O0 versus linear at -OVERIFY):
// a predicate call on one symbolic byte must not multiply paths at all.
TEST(SymbolicCtypeTest, VerifyFlavorPredicatesAreForkFreeAtOverify) {
  for (const char* fn : {"isspace", "isdigit", "isalpha", "isalnum", "isprint"}) {
    std::string program =
        "int umain(unsigned char *in, int n) { return " + std::string(fn) + "((int)in[0]); }";
    Compiler compiler;
    auto compiled = compiler.Compile(program, OptLevel::kOverify);
    ASSERT_TRUE(compiled.ok) << fn << ": " << compiled.errors;
    SymexLimits limits;
    limits.max_seconds = 30;
    auto result = Analyze(compiled, "umain", 1, limits);
    EXPECT_TRUE(result.exhausted) << fn;
    EXPECT_EQ(result.forks, 0u) << fn << ": verify-flavor predicate forked";
    EXPECT_EQ(result.paths_completed, 1u) << fn;
    EXPECT_TRUE(result.bugs.empty()) << fn;
  }
}

TEST(VlibcCheckTest, VerifyFlavorCatchesNullMisuse) {
  const char* program = R"(
    int umain(unsigned char *in, int n) {
      char *p = 0;
      if (in[0] == 'n') { return (int)strlen(p); }
      return 0;
    }
  )";
  PipelineOptions options = PipelineOptions::For(OptLevel::kOverify);
  Compiler compiler;
  auto compiled = compiler.CompileWithOptions(program, options);
  ASSERT_TRUE(compiled.ok) << compiled.errors;
  SymexLimits limits;
  limits.max_seconds = 30;
  auto result = Analyze(compiled, "umain", 1, limits);
  // The verify libc reports the failed precondition check (root cause),
  // not a raw null dereference deep inside the loop.
  EXPECT_TRUE(result.FoundBug(BugKind::kCheckFailed));
}

TEST(VlibcCheckTest, StandardFlavorStillTrapsViaEngine) {
  const char* program = R"(
    int umain(unsigned char *in, int n) {
      char *p = 0;
      if (in[0] == 'n') { return (int)strlen(p); }
      return 0;
    }
  )";
  Compiler compiler;
  auto compiled = compiler.Compile(program, OptLevel::kO0);
  ASSERT_TRUE(compiled.ok) << compiled.errors;
  SymexLimits limits;
  limits.max_seconds = 30;
  auto result = Analyze(compiled, "umain", 1, limits);
  EXPECT_TRUE(result.FoundBug(BugKind::kNullDeref));
}

}  // namespace
}  // namespace overify
