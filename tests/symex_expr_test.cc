// Tests for the symbolic expression DAG and its canonicalizing builder.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "src/ir/constant.h"
#include "src/symex/expr.h"

namespace overify {
namespace {

TEST(ExprTest, ConstantsInterned) {
  ExprContext ctx;
  EXPECT_EQ(ctx.Constant(5, 32), ctx.Constant(5, 32));
  EXPECT_NE(ctx.Constant(5, 32), ctx.Constant(5, 64));
  EXPECT_EQ(ctx.Constant(0x1FF, 8), ctx.Constant(0xFF, 8));  // truncation
  EXPECT_TRUE(ctx.True()->IsTrue());
  EXPECT_TRUE(ctx.False()->IsFalse());
}

TEST(ExprTest, SymbolsHaveSupport) {
  ExprContext ctx;
  const Expr* s0 = ctx.Symbol(0);
  const Expr* s3 = ctx.Symbol(3);
  EXPECT_EQ(s0, ctx.Symbol(0));
  EXPECT_EQ(s0->width(), 8u);
  const Expr* sum = ctx.Binary(ExprKind::kAdd, s0, s3);
  EXPECT_EQ(sum->Support().ToSet(), (std::set<unsigned>{0, 3}));
}

TEST(ExprTest, SupportOverflowBeyondMaskWidth) {
  // Symbol indices >= 64 spill from the bitmask word into the sorted
  // overflow vector; set algebra must agree across the boundary.
  ExprContext ctx;
  const Expr* lo = ctx.Symbol(3);
  const Expr* hi = ctx.Symbol(100);
  const Expr* sum = ctx.Binary(ExprKind::kAdd, lo, hi);
  EXPECT_EQ(sum->Support().ToSet(), (std::set<unsigned>{3, 100}));
  EXPECT_EQ(sum->Support().MaxSymbol(), 100u);
  EXPECT_TRUE(sum->Support().Contains(100));
  EXPECT_FALSE(sum->Support().Contains(64));
  EXPECT_TRUE(sum->Support().Intersects(hi->Support()));
  EXPECT_FALSE(lo->Support().Intersects(hi->Support()));
}

TEST(ExprTest, StructuralHashIsStableAndInterned) {
  ExprContext ctx;
  const Expr* a = ctx.Binary(ExprKind::kAdd, ctx.Symbol(0), ctx.Constant(5, 8));
  const Expr* b = ctx.Binary(ExprKind::kAdd, ctx.Symbol(0), ctx.Constant(5, 8));
  EXPECT_EQ(a, b);  // hash-consed: same pointer
  EXPECT_NE(a->hash(), 0u);
  EXPECT_EQ(a->hash(), b->hash());
}

TEST(ExprTest, ConstantFoldingMatchesFoldKernel) {
  ExprContext ctx;
  const Expr* a = ctx.Constant(200, 8);
  const Expr* b = ctx.Constant(100, 8);
  EXPECT_EQ(ctx.Binary(ExprKind::kAdd, a, b)->constant_value(), 44u);  // wraps mod 256
  EXPECT_EQ(ctx.Binary(ExprKind::kMul, a, b)->constant_value(), TruncateToWidth(20000, 8));
  EXPECT_TRUE(ctx.Compare(ICmpPredicate::kULT, b, a)->IsTrue());
  EXPECT_TRUE(ctx.Compare(ICmpPredicate::kSLT, a, b)->IsTrue());  // 200 is -56 signed
}

TEST(ExprTest, IdentitiesSimplify) {
  ExprContext ctx;
  const Expr* x = ctx.Symbol(0);
  const Expr* zero = ctx.Constant(0, 8);
  const Expr* ones = ctx.Constant(0xFF, 8);
  EXPECT_EQ(ctx.Binary(ExprKind::kAdd, x, zero), x);
  EXPECT_EQ(ctx.Binary(ExprKind::kMul, x, ctx.Constant(1, 8)), x);
  EXPECT_EQ(ctx.Binary(ExprKind::kMul, x, zero), zero);
  EXPECT_EQ(ctx.Binary(ExprKind::kAnd, x, ones), x);
  EXPECT_EQ(ctx.Binary(ExprKind::kAnd, x, zero), zero);
  EXPECT_EQ(ctx.Binary(ExprKind::kXor, x, x), zero);
  EXPECT_EQ(ctx.Binary(ExprKind::kSub, x, x), zero);
  EXPECT_EQ(ctx.Binary(ExprKind::kOr, x, x), x);
}

TEST(ExprTest, CommutativeCanonicalization) {
  ExprContext ctx;
  const Expr* x = ctx.Symbol(0);
  const Expr* y = ctx.Symbol(1);
  EXPECT_EQ(ctx.Binary(ExprKind::kAdd, x, y), ctx.Binary(ExprKind::kAdd, y, x));
  const Expr* c = ctx.Constant(7, 8);
  EXPECT_EQ(ctx.Binary(ExprKind::kAdd, c, x), ctx.Binary(ExprKind::kAdd, x, c));
}

TEST(ExprTest, ComparePredicatesCanonicalized) {
  ExprContext ctx;
  const Expr* x = ctx.Symbol(0);
  const Expr* c = ctx.Constant(10, 8);
  // x > c becomes c < x; x != c becomes Not(x == c).
  const Expr* gt = ctx.Compare(ICmpPredicate::kUGT, x, c);
  EXPECT_EQ(gt->kind(), ExprKind::kUlt);
  EXPECT_EQ(gt->a(), c);
  const Expr* ne = ctx.Compare(ICmpPredicate::kNe, x, c);
  EXPECT_EQ(ne->kind(), ExprKind::kXor);  // Not is Xor(e, true)
  EXPECT_EQ(ctx.Not(ne), ctx.Compare(ICmpPredicate::kEq, x, c));
}

TEST(ExprTest, SelectSimplifications) {
  ExprContext ctx;
  const Expr* x = ctx.Symbol(0);
  const Expr* y = ctx.Symbol(1);
  const Expr* cond = ctx.Compare(ICmpPredicate::kEq, x, ctx.Constant(0, 8));
  EXPECT_EQ(ctx.Select(ctx.True(), x, y), x);
  EXPECT_EQ(ctx.Select(ctx.False(), x, y), y);
  EXPECT_EQ(ctx.Select(cond, x, x), x);
  EXPECT_EQ(ctx.Select(cond, ctx.True(), ctx.False()), cond);
  EXPECT_EQ(ctx.Select(cond, ctx.False(), ctx.True()), ctx.Not(cond));
}

TEST(ExprTest, ExtractConcatRoundTrip) {
  ExprContext ctx;
  const Expr* x = ctx.Symbol(0);
  const Expr* y = ctx.Symbol(1);
  // Concat(y, x): y is the high byte.
  const Expr* pair = ctx.Concat(y, x);
  EXPECT_EQ(pair->width(), 16u);
  EXPECT_EQ(ctx.Extract(pair, 0, 8), x);
  EXPECT_EQ(ctx.Extract(pair, 8, 8), y);
  // Extract of extract composes.
  const Expr* wide = ctx.ZExt(x, 32);
  EXPECT_EQ(ctx.Extract(wide, 0, 8), x);
  EXPECT_EQ(ctx.Extract(wide, 16, 8), ctx.Constant(0, 8));
}

TEST(ExprTest, ByteRoundTrip) {
  ExprContext ctx;
  const Expr* x = ctx.Symbol(0);
  const Expr* wide = ctx.ZExt(x, 32);
  auto bytes = ctx.ToBytes(wide);
  ASSERT_EQ(bytes.size(), 4u);
  EXPECT_EQ(ctx.FromBytes(bytes), wide);
  // A 32-bit constant round-trips too.
  auto cbytes = ctx.ToBytes(ctx.Constant(0xDEADBEEF, 32));
  EXPECT_EQ(ctx.FromBytes(cbytes)->constant_value(), 0xDEADBEEFu);
}

TEST(ExprTest, CastsFold) {
  ExprContext ctx;
  EXPECT_EQ(ctx.ZExt(ctx.Constant(0xFF, 8), 32)->constant_value(), 0xFFu);
  EXPECT_EQ(ctx.SExt(ctx.Constant(0xFF, 8), 32)->constant_value(), 0xFFFFFFFFu);
  EXPECT_EQ(ctx.Trunc(ctx.Constant(0x1234, 32), 8)->constant_value(), 0x34u);
  const Expr* x = ctx.Symbol(0);
  EXPECT_EQ(ctx.ZExt(ctx.ZExt(x, 16), 32), ctx.ZExt(x, 32));
  EXPECT_EQ(ctx.Trunc(ctx.ZExt(x, 32), 8), x);
}

TEST(ExprTest, EvaluateAgreesWithStructure) {
  ExprContext ctx;
  const Expr* x = ctx.Symbol(0);
  const Expr* y = ctx.Symbol(1);
  // (zext(x,32) * 3 + zext(y,32)) < 100 ?
  const Expr* e = ctx.Compare(
      ICmpPredicate::kULT,
      ctx.Binary(ExprKind::kAdd,
                 ctx.Binary(ExprKind::kMul, ctx.ZExt(x, 32), ctx.Constant(3, 32)),
                 ctx.ZExt(y, 32)),
      ctx.Constant(100, 32));
  std::vector<uint8_t> bytes = {30, 9};  // 30*3+9 = 99 < 100
  ctx.NewEvaluation();
  EXPECT_EQ(ctx.Evaluate(e, bytes), 1u);
  bytes = {30, 10};  // 100 < 100 is false
  ctx.NewEvaluation();
  EXPECT_EQ(ctx.Evaluate(e, bytes), 0u);
}

TEST(ExprTest, EvaluateSignedOps) {
  ExprContext ctx;
  const Expr* x = ctx.Symbol(0);
  const Expr* sx = ctx.SExt(x, 32);
  const Expr* neg = ctx.Compare(ICmpPredicate::kSLT, sx, ctx.Constant(0, 32));
  std::vector<uint8_t> bytes = {0x80};  // -128 as signed char
  ctx.NewEvaluation();
  EXPECT_EQ(ctx.Evaluate(neg, bytes), 1u);
  bytes = {0x7F};
  ctx.NewEvaluation();
  EXPECT_EQ(ctx.Evaluate(neg, bytes), 0u);
}

// ---- The sharded, lock-striped interner shared across contexts.

TEST(SharedInternerTest, RacingContextsConvergeOnOneCanonicalNode) {
  ExprInterner interner(/*concurrent=*/true);
  constexpr int kThreads = 4;
  std::vector<const Expr*> roots(kThreads, nullptr);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&interner, &roots, t] {
      // Each worker builds the identical DAG through its own context view;
      // hash-consing in the shared tables must give every thread the same
      // pointers despite the races.
      ExprContext ctx(interner);
      const Expr* acc = ctx.Constant(0, 32);
      for (unsigned i = 0; i < 200; ++i) {
        const Expr* term = ctx.Binary(ExprKind::kMul, ctx.ZExt(ctx.Symbol(i % 8), 32),
                                      ctx.Constant(i + 1, 32));
        acc = ctx.Binary(ExprKind::kAdd, acc, term);
      }
      roots[t] = acc;
    });
  }
  for (std::thread& th : threads) {
    th.join();
  }
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(roots[0], roots[t]) << "thread " << t;
  }
  EXPECT_TRUE(interner.Owns(roots[0]));
}

TEST(SharedInternerTest, OwnsRejectsForeignNodes) {
  ExprInterner interner(/*concurrent=*/true);
  ExprContext view(interner);
  const Expr* inside = view.Constant(7, 32);
  EXPECT_TRUE(interner.Owns(inside));
  ExprContext private_ctx;
  EXPECT_FALSE(interner.Owns(private_ctx.Constant(123456, 32)));
}

TEST(SharedInternerTest, PerContextMemosEvaluateTheSharedDagIndependently) {
  ExprInterner interner(/*concurrent=*/true);
  ExprContext a(interner);
  const Expr* sum = a.Binary(ExprKind::kAdd, a.ZExt(a.Symbol(0), 32),
                             a.ZExt(a.Symbol(1), 32));
  // Two views evaluate the same node under different assignments; their
  // generation-stamped memo tables must not bleed into each other (with
  // inline slots on the shared Expr they would).
  ExprContext b(interner);
  std::vector<uint8_t> x{10, 20};
  std::vector<uint8_t> y{1, 2};
  a.NewEvaluation();
  b.NewEvaluation();
  EXPECT_EQ(a.Evaluate(sum, x), 30u);
  EXPECT_EQ(b.Evaluate(sum, y), 3u);
  EXPECT_EQ(a.Evaluate(sum, x), 30u);  // memoized, still correct
}

}  // namespace
}  // namespace overify
