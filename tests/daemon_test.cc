// The verification daemon (src/daemon/, docs/daemon.md): wire protocol
// round trips, the server loop driven end-to-end over a real Unix socket,
// and the property the daemon exists for — a warm repeat request answers
// from the run cache with a signature bit-identical to the executed run,
// and a restarted daemon rehydrates its warmth from the saved store.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/daemon/client.h"
#include "src/daemon/protocol.h"
#include "src/daemon/server.h"
#include "src/support/serialize.h"

namespace overify {
namespace daemon {
namespace {

// ---- Protocol round trips ----

TEST(Protocol, AnalyzeRequestRoundTrip) {
  AnalyzeRequest request;
  request.workload = "wc";
  request.opt_level = 3;
  request.sym_bytes = 6;
  request.force_run = 1;
  request.slice_checks = 1;
  request.jobs = 4;
  request.max_paths = 12345;
  request.max_seconds_ms = 6789;
  AnalyzeRequest decoded;
  ASSERT_TRUE(DecodeAnalyzeRequest(EncodeAnalyzeRequest(request), decoded));
  EXPECT_EQ(decoded.workload, "wc");
  EXPECT_EQ(decoded.opt_level, 3);
  EXPECT_EQ(decoded.sym_bytes, 6u);
  EXPECT_EQ(decoded.force_run, 1);
  EXPECT_EQ(decoded.slice_checks, 1);
  EXPECT_EQ(decoded.jobs, 4u);
  EXPECT_EQ(decoded.max_paths, 12345u);
  EXPECT_EQ(decoded.max_seconds_ms, 6789u);
}

TEST(Protocol, AnalyzeReplyRoundTripBothArms) {
  AnalyzeReply ok;
  ok.ok = true;
  ok.run_hit = true;
  ok.signature = "exhausted paths=7";
  ok.paths = 7;
  ok.persist_hits = 12;
  ok.core_queries = 12;
  AnalyzeReply decoded;
  ASSERT_TRUE(DecodeAnalyzeReply(EncodeAnalyzeReply(ok), decoded));
  EXPECT_TRUE(decoded.ok);
  EXPECT_TRUE(decoded.run_hit);
  EXPECT_EQ(decoded.signature, "exhausted paths=7");
  EXPECT_EQ(decoded.persist_hits, 12u);

  AnalyzeReply error;
  error.ok = false;
  error.error = "unknown workload 'nope'";
  ASSERT_TRUE(DecodeAnalyzeReply(EncodeAnalyzeReply(error), decoded));
  EXPECT_FALSE(decoded.ok);
  EXPECT_EQ(decoded.error, "unknown workload 'nope'");
}

TEST(Protocol, TruncatedReplyIsRejected) {
  AnalyzeReply ok;
  ok.ok = true;
  ok.signature = "sig";
  std::vector<uint8_t> bytes = EncodeAnalyzeReply(ok);
  bytes.resize(bytes.size() - 1);
  AnalyzeReply decoded;
  EXPECT_FALSE(DecodeAnalyzeReply(bytes, decoded));
}

// ---- The server over a real socket ----

class DaemonEndToEnd : public ::testing::Test {
 protected:
  std::string SocketPath() const {
    return ::testing::TempDir() + "/overify_daemon_test.sock";
  }
  std::string StorePath() const {
    return ::testing::TempDir() + "/overify_daemon_test.store";
  }

  // Serves until a client sends Shutdown; joins in the destructor.
  void StartServer(const std::string& store_path) {
    ServerOptions options;
    options.socket_path = SocketPath();
    options.store_path = store_path;
    server_ = std::make_unique<DaemonServer>(std::move(options));
    thread_ = std::thread([this] { exit_code_ = server_->Run(); });
  }

  // The socket file appears when the server is accepting.
  bool ConnectWithRetry(Client& client) {
    for (int i = 0; i < 200; ++i) {
      if (client.Connect(SocketPath())) {
        return true;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    return false;
  }

  void TearDown() override {
    if (thread_.joinable()) {
      Client client;
      if (client.Connect(SocketPath())) {
        client.Shutdown();
      }
      thread_.join();
    }
    std::remove(SocketPath().c_str());
    std::remove(StorePath().c_str());
  }

  std::unique_ptr<DaemonServer> server_;
  std::thread thread_;
  int exit_code_ = -1;
};

TEST_F(DaemonEndToEnd, WarmRepeatIsRunHitWithIdenticalSignature) {
  std::remove(StorePath().c_str());
  StartServer(StorePath());
  Client client;
  ASSERT_TRUE(ConnectWithRetry(client)) << client.error();
  ASSERT_TRUE(client.Ping()) << client.error();

  AnalyzeRequest request;
  request.workload = "wc";
  AnalyzeReply cold;
  ASSERT_TRUE(client.Analyze(request, cold)) << client.error();
  ASSERT_TRUE(cold.ok) << cold.error;
  EXPECT_FALSE(cold.run_hit);
  EXPECT_TRUE(cold.exhausted);
  EXPECT_FALSE(cold.signature.empty());
  EXPECT_EQ(cold.persist_hits, 0u) << "nothing persisted yet: the run was cold";

  // Same request again: answered from the run cache, signature identical.
  AnalyzeReply warm;
  ASSERT_TRUE(client.Analyze(request, warm)) << client.error();
  ASSERT_TRUE(warm.ok) << warm.error;
  EXPECT_TRUE(warm.run_hit);
  EXPECT_EQ(warm.signature, cold.signature);

  // Forcing execution exercises the solver-level store instead: every
  // core query the cold run answered is now a persisted hit, and the
  // verdict is still bit-identical.
  request.force_run = 1;
  AnalyzeReply forced;
  ASSERT_TRUE(client.Analyze(request, forced)) << client.error();
  ASSERT_TRUE(forced.ok) << forced.error;
  EXPECT_FALSE(forced.run_hit);
  EXPECT_EQ(forced.signature, cold.signature);
  EXPECT_GT(forced.persist_hits, 0u);
  EXPECT_GE(forced.persist_seeded, forced.persist_hits);

  StatsReply stats;
  ASSERT_TRUE(client.Stats(stats)) << client.error();
  ASSERT_TRUE(stats.ok);
  EXPECT_EQ(stats.run_hits, 1u);
  EXPECT_EQ(stats.run_misses, 2u);  // the cold run + the forced run
  EXPECT_GE(stats.store_entries, 1u);
}

TEST_F(DaemonEndToEnd, ErrorsComeBackAsProtocolErrors) {
  StartServer(/*store_path=*/"");
  Client client;
  ASSERT_TRUE(ConnectWithRetry(client)) << client.error();

  AnalyzeRequest request;
  request.workload = "definitely_not_a_workload";
  AnalyzeReply reply;
  ASSERT_TRUE(client.Analyze(request, reply)) << client.error();
  EXPECT_FALSE(reply.ok);
  EXPECT_NE(reply.error.find("definitely_not_a_workload"), std::string::npos);

  request.workload = "wc";
  request.opt_level = 9;
  ASSERT_TRUE(client.Analyze(request, reply)) << client.error();
  EXPECT_FALSE(reply.ok);
}

TEST_F(DaemonEndToEnd, RestartRehydratesFromSavedStore) {
  std::remove(StorePath().c_str());
  StartServer(StorePath());
  {
    Client client;
    ASSERT_TRUE(ConnectWithRetry(client)) << client.error();
    AnalyzeRequest request;
    request.workload = "wc";
    AnalyzeReply reply;
    ASSERT_TRUE(client.Analyze(request, reply)) << client.error();
    ASSERT_TRUE(reply.ok) << reply.error;
    ASSERT_TRUE(client.Shutdown());  // saves the store on exit
  }
  thread_.join();
  EXPECT_EQ(exit_code_, 0);

  // A fresh daemon process (fresh interner, fresh everything) over the
  // saved store: the very first force-run request must already hit the
  // persisted solver entries, and the run-level memo must answer a plain
  // repeat without executing.
  StartServer(StorePath());
  Client client;
  ASSERT_TRUE(ConnectWithRetry(client)) << client.error();
  AnalyzeRequest request;
  request.workload = "wc";
  AnalyzeReply memo;
  ASSERT_TRUE(client.Analyze(request, memo)) << client.error();
  ASSERT_TRUE(memo.ok) << memo.error;
  EXPECT_TRUE(memo.run_hit) << "run signature must survive the restart";

  request.force_run = 1;
  AnalyzeReply forced;
  ASSERT_TRUE(client.Analyze(request, forced)) << client.error();
  ASSERT_TRUE(forced.ok) << forced.error;
  EXPECT_GT(forced.persist_hits, 0u) << "solver entries must survive the restart";
  EXPECT_EQ(forced.signature, memo.signature);
}

}  // namespace
}  // namespace daemon
}  // namespace overify
