// Deterministic fault injection and the graceful-degradation contract
// (docs/robustness.md): injected solver unknowns, cache misses, steal
// failures, stalls, and worker deaths may cost completeness but never
// soundness, every loss is cause-attributed, and same-seed runs reproduce.
//
// The robustness differentials honor OVERIFY_FAULT_SEED (and PERIOD/SITES)
// so CI's fault job can sweep seeds without code changes; unset runs the
// built-in defaults.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/driver/compiler.h"
#include "src/support/fault.h"
#include "src/symex/executor.h"
#include "src/symex/solver.h"
#include "src/testing/diff_harness.h"
#include "src/workloads/workloads.h"

namespace overify {
namespace {

// ---- FaultInjector units ----

std::vector<bool> DrawSequence(const FaultConfig& config, unsigned worker, FaultSite site,
                               size_t n) {
  FaultInjector injector(config, worker);
  std::vector<bool> fires;
  fires.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    fires.push_back(injector.Fire(site));
  }
  return fires;
}

TEST(FaultInjectorTest, SameSeedSameFirePattern) {
  FaultConfig config;
  config.seed = 0x1234;
  config.period = 16;
  for (unsigned site = 0; site < static_cast<unsigned>(FaultSite::kNumSites); ++site) {
    auto a = DrawSequence(config, 2, static_cast<FaultSite>(site), 1000);
    auto b = DrawSequence(config, 2, static_cast<FaultSite>(site), 1000);
    EXPECT_EQ(a, b) << FaultSiteName(static_cast<FaultSite>(site));
  }
}

TEST(FaultInjectorTest, DistinctSeedsAndWorkersDrawDistinctStreams) {
  FaultConfig config;
  config.seed = 0x1234;
  config.period = 4;  // dense enough that equal streams would be a miracle
  auto base = DrawSequence(config, 0, FaultSite::kSolverUnknown, 1000);
  EXPECT_NE(base, DrawSequence(config, 1, FaultSite::kSolverUnknown, 1000));
  FaultConfig other = config;
  other.seed = 0x5678;
  EXPECT_NE(base, DrawSequence(other, 0, FaultSite::kSolverUnknown, 1000));
}

TEST(FaultInjectorTest, DisabledInjectorNeverDraws) {
  FaultInjector injector;  // default: seed 0, disabled
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(injector.Fire(FaultSite::kWorkerDeath));
  }
  EXPECT_EQ(injector.stats().draws, 0u);
  EXPECT_EQ(injector.stats().TotalFires(), 0u);
}

TEST(FaultInjectorTest, SiteMaskGatesFiring) {
  FaultConfig config;
  config.seed = 0x1234;
  config.period = 1;  // fire on every enabled draw
  config.sites = 1u << static_cast<unsigned>(FaultSite::kStealBatch);
  FaultInjector injector(config, 0);
  EXPECT_FALSE(injector.Fire(FaultSite::kSolverUnknown));
  EXPECT_FALSE(injector.Fire(FaultSite::kWorkerDeath));
  EXPECT_TRUE(injector.Fire(FaultSite::kStealBatch));
  EXPECT_EQ(injector.stats().draws, 1u);
  EXPECT_EQ(injector.stats().steal_batch, 1u);
}

TEST(FaultInjectorTest, ExpectedFireRateTracksPeriod) {
  FaultConfig config;
  config.seed = 0xfeed;
  config.period = 8;
  FaultInjector injector(config, 0);
  int fires = 0;
  for (int i = 0; i < 8000; ++i) {
    fires += injector.Fire(FaultSite::kSolverUnknown) ? 1 : 0;
  }
  // Mean 1000; a deterministic stream far outside [500, 1500] would mean
  // the mixing is broken, not that we got unlucky.
  EXPECT_GT(fires, 500);
  EXPECT_LT(fires, 1500);
}

TEST(FaultInjectorTest, FromEnvParsesSeedPeriodAndSites) {
  ASSERT_EQ(setenv("OVERIFY_FAULT_SEED", "0xabc", 1), 0);
  ASSERT_EQ(setenv("OVERIFY_FAULT_PERIOD", "32", 1), 0);
  ASSERT_EQ(setenv("OVERIFY_FAULT_SITES", "solver-unknown,worker-death", 1), 0);
  FaultConfig config = FaultConfig::FromEnv();
  unsetenv("OVERIFY_FAULT_SEED");
  unsetenv("OVERIFY_FAULT_PERIOD");
  unsetenv("OVERIFY_FAULT_SITES");
  EXPECT_TRUE(config.enabled());
  EXPECT_EQ(config.seed, 0xabcu);
  EXPECT_EQ(config.period, 32u);
  EXPECT_TRUE(config.SiteEnabled(FaultSite::kSolverUnknown));
  EXPECT_TRUE(config.SiteEnabled(FaultSite::kWorkerDeath));
  EXPECT_FALSE(config.SiteEnabled(FaultSite::kStealBatch));
  EXPECT_FALSE(config.SiteEnabled(FaultSite::kPrefixCacheLookup));

  EXPECT_FALSE(FaultConfig::FromEnv().enabled()) << "unset seed must disable injection";
}

// ---- Deadline granularity (the max_seconds fix) ----

// An UNSAT constraint pair whose support is wide and xor-shaped: byte
// bindings and interval tightening cannot touch it, so the core search must
// enumerate — exactly the query shape that used to overshoot max_seconds by
// a full candidate budget before the in-loop deadline check.
std::vector<const Expr*> WideUnsatXor(ExprContext& ctx, unsigned bytes) {
  const Expr* x = ctx.ZExt(ctx.Symbol(0), 32);
  for (unsigned i = 1; i < bytes; ++i) {
    x = ctx.Binary(ExprKind::kXor, x, ctx.ZExt(ctx.Symbol(i), 32));
  }
  return {ctx.Compare(ICmpPredicate::kEq, x, ctx.Constant(7, 32)),
          ctx.Compare(ICmpPredicate::kEq, ctx.Binary(ExprKind::kXor, x, ctx.Constant(1, 32)),
                      ctx.Constant(7, 32))};
}

TEST(DeadlineGranularityTest, CoreSearchHonorsRunDeadlineMidQuery) {
  ExprContext ctx;
  CoreSolver core;
  std::vector<const Expr*> constraints = WideUnsatXor(ctx, 8);

  QueryControl control;
  control.has_deadline = true;
  control.deadline = std::chrono::steady_clock::now() + std::chrono::milliseconds(50);

  UnknownCause cause = UnknownCause::kNone;
  auto start = std::chrono::steady_clock::now();
  SatResult result = core.CheckSat(ctx, constraints, nullptr, 1ull << 40, &control, &cause);
  double elapsed = std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();

  EXPECT_EQ(result, SatResult::kUnknown);
  EXPECT_EQ(cause, UnknownCause::kDeadline);
  // The poll runs every 4096 candidates; even under sanitizers the search
  // must give up within a couple of seconds, not after the 2^40 budget.
  EXPECT_LT(elapsed, 5.0);
}

TEST(DeadlineGranularityTest, PerQueryWallBudgetAlsoInterrupts) {
  ExprContext ctx;
  CoreSolver core;
  std::vector<const Expr*> constraints = WideUnsatXor(ctx, 8);

  QueryControl control;
  control.query_seconds = 0.05;

  UnknownCause cause = UnknownCause::kNone;
  SatResult result = core.CheckSat(ctx, constraints, nullptr, 1ull << 40, &control, &cause);
  EXPECT_EQ(result, SatResult::kUnknown);
  EXPECT_EQ(cause, UnknownCause::kQueryTimeout);
}

// The engine-level regression: cksum_wide's 72-byte additive checksum used
// to blow way past a tight max_seconds inside one solver query. The run
// must now come back promptly, non-exhausted, with the deadline attributed.
TEST(DeadlineGranularityTest, TightDeadlineOnCksumWideReturnsPromptly) {
  const Workload* workload = FindWorkload("cksum_wide");
  ASSERT_NE(workload, nullptr);
  Compiler compiler;
  CompileResult compiled = compiler.Compile(workload->source, OptLevel::kOverify, "cksum_wide");
  ASSERT_TRUE(compiled.ok) << compiled.errors;

  SymexLimits limits;
  limits.max_seconds = 0.001;
  auto start = std::chrono::steady_clock::now();
  SymexResult result = Analyze(compiled, "umain", workload->default_sym_bytes, limits);
  double elapsed = std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();

  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_FALSE(result.exhausted);
  EXPECT_LT(elapsed, 5.0) << "deadline must interrupt mid-query, not after the budget";
  EXPECT_EQ(result.stop_cause, StopCause::kDeadline) << StopCauseName(result.stop_cause);
  EXPECT_EQ(result.paths_unknown,
            result.paths_unknown_budget + result.paths_unknown_deadline +
                result.paths_unknown_injected);
}

// ---- Worker-failure recovery ----

// Enough branching that four workers all get work (and death draws).
const char* kBranchyProgram = R"(
int umain(unsigned char *in, int n) {
  int acc = 1;
  for (unsigned char *p = in; *p; ++p) {
    int c = (int)*p;
    if (c > 'a') {
      acc = acc + c;
    } else if (c == '0') {
      acc = acc / (c - '0');
    } else {
      acc = acc * 2;
    }
  }
  return acc;
}
)";

SymexResult RunBranchy(CompileResult& compiled, unsigned jobs, const FaultConfig& faults) {
  SymexOptions options;
  options.jobs = jobs;
  options.faults = faults;
  SymexLimits limits;
  return Analyze(compiled, "umain", 4, limits, options);
}

void ExpectIdenticalRuns(const SymexResult& a, const SymexResult& b, const std::string& label) {
  EXPECT_EQ(a.exhausted, b.exhausted) << label;
  EXPECT_EQ(a.paths_completed, b.paths_completed) << label;
  EXPECT_EQ(a.paths_infeasible, b.paths_infeasible) << label;
  EXPECT_EQ(a.paths_bug, b.paths_bug) << label;
  EXPECT_EQ(a.paths_limit, b.paths_limit) << label;
  EXPECT_EQ(a.paths_unexplored, b.paths_unexplored) << label;
  EXPECT_EQ(a.paths_unknown, b.paths_unknown) << label;
  EXPECT_EQ(a.instructions, b.instructions) << label;
  EXPECT_EQ(a.forks, b.forks) << label;
  EXPECT_EQ(a.stop_cause, b.stop_cause) << label;
  ASSERT_EQ(a.bugs.size(), b.bugs.size()) << label;
  for (size_t i = 0; i < a.bugs.size(); ++i) {
    EXPECT_EQ(a.bugs[i].kind, b.bugs[i].kind) << label << " bug " << i;
    EXPECT_EQ(a.bugs[i].message, b.bugs[i].message) << label << " bug " << i;
    EXPECT_EQ(a.bugs[i].example_input, b.bugs[i].example_input) << label << " bug " << i;
  }
}

TEST(WorkerFailureTest, RunSurvivesWorkerDeathsBitIdentically) {
  Compiler compiler;
  CompileResult compiled = compiler.Compile(kBranchyProgram, OptLevel::kOverify, "branchy");
  ASSERT_TRUE(compiled.ok) << compiled.errors;

  SymexResult clean = RunBranchy(compiled, 4, FaultConfig{});
  ASSERT_TRUE(clean.exhausted);
  EXPECT_GT(clean.paths_completed + clean.paths_bug, 0u);

  FaultConfig faults;
  faults.seed = 0x9d7a11;
  faults.period = 8;  // die early and often
  faults.sites = 1u << static_cast<unsigned>(FaultSite::kWorkerDeath);
  faults.max_worker_deaths = 3;  // jobs - 1: a survivor is guaranteed
  SymexResult faulted = RunBranchy(compiled, 4, faults);

  ASSERT_TRUE(faulted.exhausted)
      << "with a guaranteed survivor the run must still exhaust";
  EXPECT_LE(faulted.faults.worker_deaths, 3u);
  ExpectIdenticalRuns(clean, faulted, "worker-death recovery");
}

TEST(WorkerFailureTest, AllWorkersDyingDegradesWithAttribution) {
  Compiler compiler;
  CompileResult compiled = compiler.Compile(kBranchyProgram, OptLevel::kOverify, "branchy");
  ASSERT_TRUE(compiled.ok) << compiled.errors;

  FaultConfig faults;
  faults.seed = 0x9d7a11;
  faults.period = 1;  // every death draw fires
  faults.sites = 1u << static_cast<unsigned>(FaultSite::kWorkerDeath);
  // max_worker_deaths stays unlimited: every worker may die.
  SymexResult result = RunBranchy(compiled, 2, faults);

  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_FALSE(result.exhausted);
  EXPECT_GT(result.paths_unexplored, 0u);
  EXPECT_GE(result.faults.worker_deaths, 1u);
  EXPECT_EQ(result.stop_cause, StopCause::kWorkerDeath) << StopCauseName(result.stop_cause);
}

// ---- Robustness differentials ----

// OVERIFY_FAULT_SEED joins the sweep when set (the CI fault job exports it);
// the built-in seeds always run.
difftest::RobustnessOptions SweepOptions() {
  difftest::RobustnessOptions options;
  FaultConfig env = FaultConfig::FromEnv();
  if (env.enabled()) {
    options.fault_seeds.push_back(env.seed);
    options.fault_period = env.period;
  }
  return options;
}

TEST(RobustnessDifferentialTest, BuggyProgramDegradesGracefully) {
  difftest::DiffReport report = difftest::RunRobustnessDifferential(
      "branchy", kBranchyProgram, 4, SweepOptions());
  EXPECT_TRUE(report.ok) << report.diff;
}

TEST(RobustnessDifferentialTest, EchoWorkload) {
  const Workload* workload = FindWorkload("echo");
  ASSERT_NE(workload, nullptr);
  difftest::DiffReport report = difftest::RunRobustnessDifferential(*workload, 0, SweepOptions());
  EXPECT_TRUE(report.ok) << report.diff;
}

TEST(RobustnessDifferentialTest, GrepLiteWorkload) {
  const Workload* workload = FindWorkload("grep_lite");
  ASSERT_NE(workload, nullptr);
  difftest::DiffReport report = difftest::RunRobustnessDifferential(*workload, 0, SweepOptions());
  EXPECT_TRUE(report.ok) << report.diff;
}

}  // namespace
}  // namespace overify
