// The persistent cross-run verification cache (src/cache/persist.*,
// src/symex/expr_hash.*, docs/daemon.md).
//
// The load-bearing property is cross-run identity: a constraint set's
// (set_hash, portable fingerprint) pair must be a pure function of
// expression structure — identical across processes, machines, and interner
// creation orders — because the store trusts UNSAT verdicts on identity
// alone. The suites here pin that down from four sides: golden hash values
// (a silent change to the hash definition without a kCacheStoreVersion bump
// fails here first), creation-order invariance inside one process, a
// re-exec probe proving bit-identical hashes across *processes*, and the
// store envelope tests proving every corrupted or version-skewed store
// degrades to a cold run rather than a wrong verdict.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "src/cache/persist.h"
#include "src/driver/compiler.h"
#include "src/support/metrics.h"
#include "src/symex/expr.h"
#include "src/symex/expr_hash.h"
#include "src/symex/solver.h"
#include "src/testing/diff_harness.h"
#include "src/workloads/workloads.h"

namespace overify {
namespace {

// The probe constraint set: small but exercises every portable-hash
// feature — multiple symbols (the De Bruijn table), a shared subtree (walk
// ordinal back references), widening, arithmetic, and comparisons.
std::vector<const Expr*> BuildProbeSet(ExprContext& ctx) {
  const Expr* x = ctx.Symbol(0);
  const Expr* y = ctx.Symbol(3);  // non-dense index: the table must record it
  const Expr* wx = ctx.ZExt(x, 32);
  const Expr* wy = ctx.ZExt(y, 32);
  const Expr* sum = ctx.Binary(ExprKind::kAdd, wx, wy);
  return {
      ctx.Compare(ICmpPredicate::kULT, sum, ctx.Constant(300, 32)),
      // `sum` again: a shared subtree, hashed by walk ordinal not pointer.
      ctx.Compare(ICmpPredicate::kEq, ctx.Binary(ExprKind::kAnd, sum, ctx.Constant(1, 32)),
                  ctx.Constant(0, 32)),
      ctx.Compare(ICmpPredicate::kULT, ctx.Constant(10, 8), x),
  };
}

uint64_t ProbeFingerprint(ExprContext& ctx) {
  std::vector<const Expr*> set = BuildProbeSet(ctx);
  PortableHashCache cache;
  return PortableSetFingerprint(set, cache);
}

// Re-exec hook: with OVERIFY_HASH_PROBE set, the binary prints the probe
// set's portable hashes at load time and exits before gtest starts. The
// CrossProcess test execs itself through this to prove the hash is
// bit-identical in a fresh process (the property Expr::id() lacked).
struct HashProbeAtLoad {
  HashProbeAtLoad() {
    if (std::getenv("OVERIFY_HASH_PROBE") == nullptr) {
      return;
    }
    ExprContext ctx;
    std::vector<const Expr*> set = BuildProbeSet(ctx);
    std::printf("%016llx %016llx\n",
                static_cast<unsigned long long>(ProbeFingerprint(ctx)),
                static_cast<unsigned long long>(PortableExprHash(set[0])));
    std::fflush(stdout);
    std::_Exit(0);
  }
};
[[maybe_unused]] HashProbeAtLoad probe_at_load;

// ---- Portable content hashing ----

TEST(PortableHash, CreationOrderInvariance) {
  // Context A builds the probe set directly; context B first builds
  // unrelated expressions and the probe's pieces in reverse, so every
  // Expr::id() differs between the two interners. The portable hash must
  // not see the difference — this is the regression test for the
  // fingerprint that folded creation order.
  ExprContext a;
  ExprContext b;
  // Scramble B's creation order (and its dense id space).
  b.Compare(ICmpPredicate::kEq, b.ZExt(b.Symbol(7), 32), b.Constant(300, 32));
  b.Binary(ExprKind::kAdd, b.ZExt(b.Symbol(3), 32), b.ZExt(b.Symbol(0), 32));
  b.Constant(1, 32);

  std::vector<const Expr*> set_a = BuildProbeSet(a);
  std::vector<const Expr*> set_b = BuildProbeSet(b);
  for (size_t i = 0; i < set_a.size(); ++i) {
    EXPECT_NE(set_a[i], set_b[i]) << "distinct interners must not share nodes";
    EXPECT_EQ(PortableExprHash(set_a[i]), PortableExprHash(set_b[i])) << "constraint " << i;
  }
  EXPECT_EQ(ProbeFingerprint(a), ProbeFingerprint(b));
}

TEST(PortableHash, SymbolTableKeepsActualIndices) {
  // x0 < 5 and x1 < 5 are alpha-equivalent (identical walk bodies) but
  // models are specific to byte positions, so the appended symbol table
  // must keep the hashes apart.
  ExprContext ctx;
  const Expr* c0 = ctx.Compare(ICmpPredicate::kULT, ctx.Symbol(0), ctx.Constant(5, 8));
  const Expr* c1 = ctx.Compare(ICmpPredicate::kULT, ctx.Symbol(1), ctx.Constant(5, 8));
  EXPECT_NE(PortableExprHash(c0), PortableExprHash(c1));
}

TEST(PortableHash, DistinguishesStructure) {
  ExprContext ctx;
  const Expr* x = ctx.Symbol(0);
  EXPECT_NE(PortableExprHash(ctx.Compare(ICmpPredicate::kULT, x, ctx.Constant(5, 8))),
            PortableExprHash(ctx.Compare(ICmpPredicate::kULT, x, ctx.Constant(6, 8))));
  EXPECT_NE(PortableExprHash(ctx.Compare(ICmpPredicate::kULT, x, ctx.Constant(5, 8))),
            PortableExprHash(ctx.Compare(ICmpPredicate::kULE, x, ctx.Constant(5, 8))));
}

TEST(PortableHash, CacheAgreesWithStandalone) {
  ExprContext ctx;
  std::vector<const Expr*> set = BuildProbeSet(ctx);
  PortableHashCache cache;
  for (const Expr* c : set) {
    const uint64_t first = cache.Hash(c);
    EXPECT_EQ(first, PortableExprHash(c));
    EXPECT_EQ(first, cache.Hash(c)) << "memoized value must be stable";
  }
}

TEST(PortableHash, SetFingerprintIsOrderSensitive) {
  ExprContext ctx;
  std::vector<const Expr*> set = BuildProbeSet(ctx);
  PortableHashCache cache;
  const uint64_t forward = PortableSetFingerprint(set, cache);
  std::vector<const Expr*> reversed(set.rbegin(), set.rend());
  // Callers fingerprint the *canonical* (hash-ordered) set; the fold itself
  // is order-sensitive so a different order is a different identity.
  EXPECT_NE(forward, PortableSetFingerprint(reversed, cache));
  EXPECT_EQ(forward, PortableSetFingerprint(set, cache));
}

// Golden values: the portable hash definition is an on-disk format. If
// this test fails, either restore compatibility or bump kCacheStoreVersion
// (src/cache/persist.h) in the same change — never ship a silent change.
TEST(PortableHash, GoldenValues) {
  ExprContext ctx;
  std::vector<const Expr*> set = BuildProbeSet(ctx);
  EXPECT_EQ(PortableExprHash(set[0]), UINT64_C(0x782957eee6768aef));
  EXPECT_EQ(PortableExprHash(set[2]), UINT64_C(0x968390325149c3a6));
  EXPECT_EQ(ProbeFingerprint(ctx), UINT64_C(0xd17947bd3a244303));
}

TEST(PortableHash, CrossProcessBitIdentical) {
  // Re-exec this binary with OVERIFY_HASH_PROBE=1 (see HashProbeAtLoad) and
  // compare the fresh process's hashes bit-for-bit with ours.
  char exe[4096];
  const ssize_t n = ::readlink("/proc/self/exe", exe, sizeof(exe) - 1);
  ASSERT_GT(n, 0);
  exe[n] = '\0';
  const std::string command = "OVERIFY_HASH_PROBE=1 '" + std::string(exe) + "'";
  std::FILE* child = ::popen(command.c_str(), "r");
  ASSERT_NE(child, nullptr);
  char line[128] = {0};
  ASSERT_NE(std::fgets(line, sizeof(line), child), nullptr);
  ASSERT_EQ(::pclose(child), 0);

  unsigned long long child_fingerprint = 0;
  unsigned long long child_hash = 0;
  ASSERT_EQ(std::sscanf(line, "%llx %llx", &child_fingerprint, &child_hash), 2);
  ExprContext ctx;
  std::vector<const Expr*> set = BuildProbeSet(ctx);
  EXPECT_EQ(static_cast<uint64_t>(child_fingerprint), ProbeFingerprint(ctx));
  EXPECT_EQ(static_cast<uint64_t>(child_hash), PortableExprHash(set[0]));
}

// ---- Counterexample-cache collision degradation ----

TEST(PrefixCacheCollision, ForcedSetHashCollisionDegradesToMiss) {
  PrefixCache cache;
  cache.Insert({11, 22}, /*set_hash=*/42, /*fingerprint=*/100, SatResult::kUnsat, {});
  ASSERT_NE(cache.FindExact(42, 100), nullptr);

  // Same 64-bit set_hash, different fingerprint: a (forced) collision.
  // Serving either entry for the other's set would be a wrong verdict, so
  // both must be dropped — the collision degrades to a miss.
  cache.Insert({33}, /*set_hash=*/42, /*fingerprint=*/200, SatResult::kUnsat, {});
  EXPECT_EQ(cache.FindExact(42, 100), nullptr);
  EXPECT_EQ(cache.FindExact(42, 200), nullptr);
  EXPECT_EQ(cache.collisions(), 1u);
  EXPECT_EQ(cache.size(), 0u);

  // Persisted entries collide the same way (a store written under a
  // different hash definition version can never reach this — the version
  // gate rejects it wholesale — but two genuinely colliding sets can).
  cache.InsertPersisted({44}, /*set_hash=*/43, /*fingerprint=*/300, SatResult::kUnsat, {});
  ASSERT_NE(cache.FindExact(43, 300), nullptr);
  cache.InsertPersisted({55}, /*set_hash=*/43, /*fingerprint=*/301, SatResult::kUnsat, {});
  EXPECT_EQ(cache.FindExact(43, 300), nullptr);
  EXPECT_EQ(cache.FindExact(43, 301), nullptr);
  EXPECT_EQ(cache.collisions(), 2u);
}

// ---- Seeding, validation, and the trust model ----

class PersistSeedTest : public ::testing::Test {
 protected:
  // Builds the same query in any context (seeded chains live in their own
  // interner, like a fresh process would).
  static std::vector<const Expr*> SatQuery(ExprContext& ctx) {
    return {ctx.Compare(ICmpPredicate::kEq, ctx.Symbol(0), ctx.Constant(5, 8)),
            ctx.Compare(ICmpPredicate::kULT, ctx.Symbol(1), ctx.Constant(9, 8))};
  }
  static std::vector<const Expr*> UnsatQuery(ExprContext& ctx) {
    return {ctx.Compare(ICmpPredicate::kEq, ctx.Symbol(0), ctx.Constant(5, 8)),
            ctx.Compare(ICmpPredicate::kEq, ctx.Symbol(0), ctx.Constant(6, 8))};
  }

  static bool Satisfies(ExprContext& ctx, const std::vector<const Expr*>& constraints,
                        const std::vector<uint8_t>& model) {
    ctx.NewEvaluation();
    for (const Expr* c : constraints) {
      if (ctx.Evaluate(c, model) == 0) {
        return false;
      }
    }
    return true;
  }

  // Runs both queries on a fresh chain and harvests its cache.
  RunBlob HarvestReferenceRun() {
    ExprContext ctx;
    SolverChain chain(ctx);
    chain.set_preprocessing(false);
    std::vector<uint8_t> model;
    EXPECT_EQ(chain.CheckSat(SatQuery(ctx), &model), SatResult::kSat);
    EXPECT_EQ(chain.CheckSat(UnsatQuery(ctx), &model), SatResult::kUnsat);
    RunBlob blob;
    HarvestChain(chain, blob);
    EXPECT_GE(blob.entries.size(), 2u);
    return blob;
  }
};

TEST_F(PersistSeedTest, SeededChainAnswersFromStore) {
  RunBlob blob = HarvestReferenceRun();

  ExprContext ctx;  // fresh interner: different Expr::id() space
  SolverChain chain(ctx);
  chain.set_preprocessing(false);
  SeedChain(blob, chain);
  EXPECT_EQ(chain.metrics().Get(Counter::kPersistSeeded), blob.entries.size());

  std::vector<uint8_t> model;
  EXPECT_EQ(chain.CheckSat(SatQuery(ctx), &model), SatResult::kSat);
  EXPECT_TRUE(Satisfies(ctx, SatQuery(ctx), model));
  EXPECT_EQ(chain.CheckSat(UnsatQuery(ctx), &model), SatResult::kUnsat);
  EXPECT_GE(chain.metrics().Get(Counter::kPersistHits), 2u)
      << "both verdicts must come from the persisted entries";
  // The SAT model was validated against the live query, not trusted.
  EXPECT_GE(chain.metrics().Get(Counter::kPersistValidations), 1u);
  EXPECT_EQ(chain.metrics().Get(Counter::kPersistRejects), 0u);
}

TEST_F(PersistSeedTest, TamperedModelDegradesToMissNeverWrongAnswer) {
  RunBlob blob = HarvestReferenceRun();
  // Corrupt every persisted SAT model (as a stale or malicious store
  // would). Verdicts must still be correct; the tampered entries must be
  // rejected, not served.
  for (PersistedEntry& entry : blob.entries) {
    if (entry.result == 0 && !entry.model.empty()) {
      for (uint8_t& byte : entry.model) {
        byte ^= 0xFF;
      }
    }
  }

  ExprContext ctx;
  SolverChain chain(ctx);
  chain.set_preprocessing(false);
  SeedChain(blob, chain);

  std::vector<uint8_t> model;
  EXPECT_EQ(chain.CheckSat(SatQuery(ctx), &model), SatResult::kSat);
  EXPECT_TRUE(Satisfies(ctx, SatQuery(ctx), model))
      << "the returned model must be a real one, not the tampered bytes";
  EXPECT_GE(chain.metrics().Get(Counter::kPersistRejects), 1u);
  // UNSAT entries are identity-trusted and unaffected by model bytes.
  EXPECT_EQ(chain.CheckSat(UnsatQuery(ctx), &model), SatResult::kUnsat);
}

TEST_F(PersistSeedTest, HarvestSkipsUnvalidatedEntries) {
  RunBlob blob = HarvestReferenceRun();
  ExprContext ctx;
  SolverChain chain(ctx);
  chain.set_preprocessing(false);
  SeedChain(blob, chain);
  // No queries ran: the SAT models are still unvalidated and must not be
  // re-persisted (a lie would otherwise survive laundering through a warm
  // process). UNSAT entries are trusted and harvest fine.
  RunBlob reharvest;
  HarvestChain(chain, reharvest);
  for (const PersistedEntry& entry : reharvest.entries) {
    EXPECT_EQ(entry.result, 1) << "only trusted (UNSAT) entries may re-harvest unqueried";
  }
}

TEST_F(PersistSeedTest, HarvestAppendsWithoutDuplicates) {
  RunBlob blob = HarvestReferenceRun();
  const size_t first = blob.entries.size();
  ExprContext ctx;
  SolverChain chain(ctx);
  chain.set_preprocessing(false);
  SeedChain(blob, chain);
  std::vector<uint8_t> model;
  EXPECT_EQ(chain.CheckSat(SatQuery(ctx), &model), SatResult::kSat);
  EXPECT_EQ(chain.CheckSat(UnsatQuery(ctx), &model), SatResult::kUnsat);
  // Everything the chain holds is already in the blob: harvesting back must
  // not grow it.
  HarvestChain(chain, blob);
  EXPECT_EQ(blob.entries.size(), first);
}

// ---- The store envelope ----

class CacheStoreTest : public ::testing::Test {
 protected:
  static CacheStore MakeStore() {
    CacheStore store;
    RunBlob& blob = store.PutRun(/*module_hash=*/111, /*options_fp=*/222);
    blob.run_signature = "exhausted paths=7 sig=abc";
    PersistedEntry entry;
    entry.keys = {5, 9};
    entry.set_hash = 14;
    entry.fingerprint = 77;
    entry.result = 1;
    blob.entries.push_back(entry);
    PersistedEntry sat;
    sat.keys = {3};
    sat.set_hash = 3;
    sat.fingerprint = 33;
    sat.result = 0;
    sat.model = {5, 0};
    sat.clauses.push_back({{{0, 5}, {1, 2}}, 1.5});
    blob.entries.push_back(sat);
    return store;
  }
};

TEST_F(CacheStoreTest, ByteRoundTripIsExact) {
  CacheStore store = MakeStore();
  const std::vector<uint8_t> bytes = store.Serialize();
  CacheStore loaded;
  ASSERT_TRUE(loaded.Deserialize(bytes)) << loaded.load_error();
  EXPECT_EQ(loaded.runs(), 1u);
  EXPECT_EQ(loaded.TotalEntries(), 2u);
  // Serializing the round-tripped store reproduces the bytes exactly.
  // (Checked before FindRun, which bumps the blob's LRU tick.)
  EXPECT_EQ(loaded.Serialize(), bytes);
  RunBlob* blob = loaded.FindRun(111, 222);
  ASSERT_NE(blob, nullptr);
  EXPECT_EQ(blob->run_signature, "exhausted paths=7 sig=abc");
  ASSERT_EQ(blob->entries.size(), 2u);
  EXPECT_EQ(blob->entries[0].keys, (std::vector<uint64_t>{5, 9}));
  EXPECT_EQ(blob->entries[1].model, (std::vector<uint8_t>{5, 0}));
  ASSERT_EQ(blob->entries[1].clauses.size(), 1u);
  EXPECT_EQ(blob->entries[1].clauses[0].lits.size(), 2u);
  EXPECT_EQ(blob->entries[1].clauses[0].activity, 1.5);
}

TEST_F(CacheStoreTest, FileRoundTripAndMissingFile) {
  const std::string path = ::testing::TempDir() + "/overify_persist_test.store";
  std::remove(path.c_str());
  CacheStore store = MakeStore();
  ASSERT_TRUE(store.Save(path));
  CacheStore loaded;
  ASSERT_TRUE(loaded.Load(path)) << loaded.load_error();
  EXPECT_EQ(loaded.Serialize(), store.Serialize());
  std::remove(path.c_str());
  CacheStore missing;
  EXPECT_FALSE(missing.Load(path));
  EXPECT_FALSE(missing.load_error().empty());
  EXPECT_EQ(missing.runs(), 0u);
}

TEST_F(CacheStoreTest, CorruptionIsRejectedWholesale) {
  const std::vector<uint8_t> good = MakeStore().Serialize();
  // Flip one byte at every region of the envelope: magic, version,
  // payload, checksum. Every mutation must reject and leave the store
  // empty (cold fallback) — never partially adopt.
  for (size_t pos : {size_t{0}, size_t{9}, good.size() / 2, good.size() - 1}) {
    std::vector<uint8_t> bad = good;
    bad[pos] ^= 0x01;
    CacheStore store;
    EXPECT_FALSE(store.Deserialize(bad)) << "flip at " << pos;
    EXPECT_FALSE(store.load_error().empty());
    EXPECT_EQ(store.runs(), 0u);
  }
  std::vector<uint8_t> truncated = good;
  truncated.resize(truncated.size() / 2);
  CacheStore store;
  EXPECT_FALSE(store.Deserialize(truncated));
  EXPECT_EQ(store.runs(), 0u);
}

TEST_F(CacheStoreTest, VersionBumpIsRejected) {
  std::vector<uint8_t> bytes = MakeStore().Serialize();
  // The version field is the u32 after the u64 magic. A store written by a
  // different format (or hash definition) generation must be refused even
  // though its checksum is internally consistent — so bump the version and
  // leave everything else intact.
  bytes[8] += 1;
  CacheStore store;
  EXPECT_FALSE(store.Deserialize(bytes));
  EXPECT_NE(store.load_error().find("version"), std::string::npos) << store.load_error();
  EXPECT_EQ(store.runs(), 0u);
}

TEST_F(CacheStoreTest, RunBlobLruEviction) {
  CacheStore store(/*max_runs=*/2);
  store.PutRun(1, 0);
  store.PutRun(2, 0);
  ASSERT_NE(store.FindRun(1, 0), nullptr);  // bump 1's tick: 2 is now LRU
  store.PutRun(3, 0);
  EXPECT_EQ(store.runs(), 2u);
  EXPECT_EQ(store.evictions(), 1u);
  EXPECT_NE(store.FindRun(1, 0), nullptr);
  EXPECT_EQ(store.FindRun(2, 0), nullptr);
  EXPECT_NE(store.FindRun(3, 0), nullptr);
}

// ---- Run-level keys ----

TEST(RunKeys, OptionsFingerprintSeparatesBehaviorNotWorkerCount) {
  SymexOptions base;
  const uint64_t fp = OptionsFingerprint(base);
  // Worker count and observability must not partition the cache…
  SymexOptions jobs = base;
  jobs.jobs = 8;
  EXPECT_EQ(OptionsFingerprint(jobs), fp);
  // …but anything changing solver behavior or verdicts must.
  SymexOptions no_learning = base;
  no_learning.solver_learning = false;
  EXPECT_NE(OptionsFingerprint(no_learning), fp);
  SymexOptions sliced = base;
  sliced.slice_checks = true;
  EXPECT_NE(OptionsFingerprint(sliced), fp);
}

TEST(RunKeys, ModuleContentHashTracksContent) {
  const Workload* wc = FindWorkload("wc");
  ASSERT_NE(wc, nullptr);
  Compiler compiler;
  CompileResult a = compiler.Compile(wc->source, OptLevel::kOverify, wc->name);
  CompileResult b = compiler.Compile(wc->source, OptLevel::kOverify, wc->name);
  ASSERT_TRUE(a.ok && b.ok);
  EXPECT_EQ(ModuleContentHash(*a.module), ModuleContentHash(*b.module));
  CompileResult o3 = compiler.Compile(wc->source, OptLevel::kO3, wc->name);
  ASSERT_TRUE(o3.ok);
  EXPECT_NE(ModuleContentHash(*a.module), ModuleContentHash(*o3.module));
}

// Regression: compiling the same source must produce the same IR — and so
// the same run-memo key — regardless of heap state. Loop passes once
// iterated Loop::blocks() in pointer order, so a workload recompiled after
// other compiles had perturbed the allocator could hoist/clone in a
// different order and silently miss the daemon's run cache. tac_lite,
// rev_cmp, and count_mode were the observed flippers; compile the whole
// suite between the two measurements to maximize heap churn.
TEST(RunKeys, ModuleContentHashIsCompileOrderInvariant) {
  const char* flippers[] = {"tac_lite", "rev_cmp", "count_mode"};
  std::map<std::string, uint64_t> first;
  for (const char* name : flippers) {
    const Workload* w = FindWorkload(name);
    ASSERT_NE(w, nullptr) << name;
    Compiler compiler;
    CompileResult c = compiler.Compile(w->source, OptLevel::kOverify, w->name);
    ASSERT_TRUE(c.ok) << name;
    first[name] = ModuleContentHash(*c.module);
  }
  for (const Workload& w : CoreutilsSuite()) {
    Compiler compiler;
    CompileResult c = compiler.Compile(w.source, OptLevel::kOverify, w.name);
    ASSERT_TRUE(c.ok) << w.name;
  }
  for (const char* name : flippers) {
    const Workload* w = FindWorkload(name);
    Compiler compiler;
    CompileResult c = compiler.Compile(w->source, OptLevel::kOverify, w->name);
    ASSERT_TRUE(c.ok) << name;
    EXPECT_EQ(ModuleContentHash(*c.module), first[name])
        << name << " compiled to different IR after unrelated compiles";
  }
}

// ---- The headline property: warm runs are verdict-identical to cold ----

TEST(WarmCold, WarmRunsAreBitIdenticalToCold) {
  const Workload* wc = FindWorkload("wc");
  ASSERT_NE(wc, nullptr);
  difftest::DiffReport report = difftest::RunWarmColdDifferential(*wc);
  EXPECT_TRUE(report.ok) << report.diff;
}

}  // namespace
}  // namespace overify
