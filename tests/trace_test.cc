// Structured run tracing (src/support/trace.h): a traced run writes a
// well-formed Chrome-trace-event JSON timeline containing the hot-phase
// spans, tracing off writes nothing, and tracing never perturbs the
// exploration results (docs/observability.md).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "src/driver/compiler.h"
#include "src/support/trace.h"
#include "src/symex/executor.h"
#include "src/workloads/workloads.h"

namespace overify {
namespace {

CompileResult CompileWc() {
  Compiler compiler;
  CompileResult compiled =
      compiler.Compile(FindWorkload("wc")->source, OptLevel::kOverify, "wc");
  EXPECT_TRUE(compiled.ok) << compiled.errors;
  return compiled;
}

SymexResult RunWc(CompileResult& compiled, const SymexOptions& options) {
  SymexLimits limits;
  limits.max_seconds = 60;
  return Analyze(compiled, "umain", 5, limits, options);
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::string Strip(const std::string& s) {
  size_t begin = s.find_first_not_of(" \t\r\n");
  size_t end = s.find_last_not_of(" \t\r\n");
  return begin == std::string::npos ? "" : s.substr(begin, end - begin + 1);
}

class TraceTest : public ::testing::Test {
 protected:
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_ = ::testing::TempDir() + "trace_test_out.json";
};

TEST_F(TraceTest, TraceBufferRecordsSpansAndInstants) {
  TraceSink sink(path_, 2);
  EXPECT_EQ(sink.workers(), 2u);
  uint64_t t = sink.epoch_ns();
  sink.buffer(0)->Span(TraceKind::kSolverQuery, t + 100, t + 600, 0, 0);
  sink.buffer(1)->Instant(TraceKind::kFaultFired, t + 50, 0);
  EXPECT_EQ(sink.buffer(0)->size(), 1u);
  EXPECT_EQ(sink.buffer(1)->size(), 1u);
  ASSERT_TRUE(sink.Write());
  std::string text = Strip(ReadFile(path_));
  ASSERT_FALSE(text.empty());
  EXPECT_EQ(text.front(), '[');
  EXPECT_EQ(text.back(), ']');
  EXPECT_NE(text.find("\"solver_query\""), std::string::npos) << text;
  EXPECT_NE(text.find("\"fault_fired\""), std::string::npos) << text;
  EXPECT_NE(text.find("\"ph\":\"X\""), std::string::npos) << text;
  EXPECT_NE(text.find("\"ph\":\"i\""), std::string::npos) << text;
  EXPECT_NE(text.find("thread_name"), std::string::npos) << text;
}

TEST_F(TraceTest, TracedRunWritesHotPhaseSpans) {
  CompileResult m = CompileWc();
  SymexOptions options;
  options.jobs = 2;
  options.trace_path = path_;
  SymexResult result = RunWc(m, options);
  ASSERT_TRUE(result.ok);

  std::string text = Strip(ReadFile(path_));
  ASSERT_FALSE(text.empty()) << "traced run must write " << path_;
  EXPECT_EQ(text.front(), '[');
  EXPECT_EQ(text.back(), ']');
  // The hot phases the tentpole promises: solver queries with verdicts,
  // cache lookups with hit class, preprocessing, fork decisions, worker
  // lifecycles.
  for (const char* name : {"\"solver_query\"", "\"cache_lookup\"", "\"preprocess\"",
                           "\"fork_decide\"", "\"path_run\"", "\"worker_run\""}) {
    EXPECT_NE(text.find(name), std::string::npos) << "missing span " << name;
  }
  EXPECT_NE(text.find("\"verdict\""), std::string::npos);
  EXPECT_NE(text.find("\"hit\""), std::string::npos);
  // Both workers announce themselves even if one never got work.
  EXPECT_NE(text.find("\"worker-0\""), std::string::npos);
  EXPECT_NE(text.find("\"worker-1\""), std::string::npos);
}

TEST_F(TraceTest, NoTracePathWritesNothing) {
  std::remove(path_.c_str());
  CompileResult m = CompileWc();
  SymexOptions options;
  SymexResult result = RunWc(m, options);
  ASSERT_TRUE(result.ok);
  std::ifstream in(path_);
  EXPECT_FALSE(in.good()) << "untraced run must not create " << path_;
}

TEST_F(TraceTest, TracingDoesNotPerturbResults) {
  CompileResult m = CompileWc();
  SymexOptions plain;
  SymexResult untraced = RunWc(m, plain);
  SymexOptions traced_opts;
  traced_opts.trace_path = path_;
  SymexResult traced = RunWc(m, traced_opts);
  ASSERT_TRUE(untraced.ok);
  ASSERT_TRUE(traced.ok);
  EXPECT_EQ(untraced.paths_completed, traced.paths_completed);
  EXPECT_EQ(untraced.paths_terminated, traced.paths_terminated);
  EXPECT_EQ(untraced.instructions, traced.instructions);
  EXPECT_EQ(untraced.forks, traced.forks);
  EXPECT_EQ(untraced.exhausted, traced.exhausted);
  EXPECT_EQ(untraced.bugs.size(), traced.bugs.size());
  EXPECT_EQ(untraced.solver.queries, traced.solver.queries);
}

}  // namespace
}  // namespace overify
