// Tests for structural passes: inliner, if-conversion, loop unswitch, loop
// unroll, jump threading, LICM, and the loop utilities.
#include <gtest/gtest.h>

#include "src/analysis/path_count.h"
#include "src/ir/parser.h"
#include "src/ir/printer.h"
#include "src/ir/verifier.h"
#include "src/passes/dce.h"
#include "src/passes/if_convert.h"
#include "src/passes/inliner.h"
#include "src/passes/instcombine.h"
#include "src/passes/jump_threading.h"
#include "src/passes/licm.h"
#include "src/passes/loop_unroll.h"
#include "src/passes/loop_unswitch.h"
#include "src/passes/loop_utils.h"
#include "src/passes/mem2reg.h"
#include "src/passes/simplify_cfg.h"

namespace overify {
namespace {

size_t CountOpcode(Function& fn, Opcode opcode) {
  size_t count = 0;
  for (BasicBlock& block : fn) {
    for (auto& inst : block) {
      if (inst->opcode() == opcode) {
        ++count;
      }
    }
  }
  return count;
}

void ExpectValid(Module& m) {
  auto errors = VerifyModule(m);
  ASSERT_TRUE(errors.empty()) << (errors.empty() ? "" : errors[0]);
}

void Cleanup(Function& fn) {
  InstCombinePass().RunOnFunction(fn);
  SimplifyCfgPass().RunOnFunction(fn);
  DcePass().RunOnFunction(fn);
}

TEST(InlinerTest, InlinesSimpleCall) {
  auto m = ParseModuleOrDie(R"(
    func @inc(%x: i32) -> i32 {
    entry:
      %r = add %x, i32 1
      ret %r
    }
    func @f(%a: i32) -> i32 {
    entry:
      %v = call @inc(%a)
      %w = call @inc(%v)
      ret %w
    }
  )");
  InlinerPass pass(InlinerOptions{});
  EXPECT_TRUE(pass.Run(*m));
  ExpectValid(*m);
  Function* f = m->GetFunction("f");
  EXPECT_EQ(CountOpcode(*f, Opcode::kCall), 0u);
  Cleanup(*f);
  // instcombine reassociates (a+1)+1 into a+2: a single add remains.
  EXPECT_EQ(CountOpcode(*f, Opcode::kAdd), 1u);
}

TEST(InlinerTest, InlinesMultiReturnCalleeWithPhi) {
  auto m = ParseModuleOrDie(R"(
    func @pick(%c: i1, %a: i32, %b: i32) -> i32 {
    entry:
      br %c, label %t, label %e
    t:
      ret %a
    e:
      ret %b
    }
    func @f(%c: i1, %x: i32) -> i32 {
    entry:
      %v = call @pick(%c, %x, i32 9)
      %w = add %v, i32 1
      ret %w
    }
  )");
  InlinerPass pass(InlinerOptions{});
  EXPECT_TRUE(pass.Run(*m));
  ExpectValid(*m);
  Function* f = m->GetFunction("f");
  EXPECT_EQ(CountOpcode(*f, Opcode::kCall), 0u);
  EXPECT_GE(CountOpcode(*f, Opcode::kPhi), 1u);
}

TEST(InlinerTest, RespectsNeverHintAndRecursion) {
  auto m = ParseModuleOrDie(R"(
    func @self(%x: i32) -> i32 {
    entry:
      %c = icmp sle %x, i32 0
      br %c, label %base, label %rec
    base:
      ret i32 0
    rec:
      %x1 = sub %x, i32 1
      %r = call @self(%x1)
      ret %r
    }
    func @never(%x: i32) -> i32 {
    entry:
      %r = add %x, i32 1
      ret %r
    }
    func @f(%a: i32) -> i32 {
    entry:
      %v = call @self(%a)
      %w = call @never(%v)
      ret %w
    }
  )");
  m->GetFunction("never")->set_inline_hint(InlineHint::kNever);
  InlinerPass pass(InlinerOptions{});
  pass.Run(*m);
  ExpectValid(*m);
  Function* f = m->GetFunction("f");
  EXPECT_EQ(CountOpcode(*f, Opcode::kCall), 2u);  // both stay
}

TEST(InlinerTest, ThresholdGateAndLibcOverride) {
  auto m = ParseModuleOrDie(R"(
    func @big(%x: i32) -> i32 {
    entry:
      %a1 = add %x, i32 1
      %a2 = add %a1, i32 2
      %a3 = add %a2, i32 3
      %a4 = add %a3, i32 4
      %a5 = add %a4, i32 5
      %a6 = add %a5, i32 6
      ret %a6
    }
    func @f(%a: i32) -> i32 {
    entry:
      %v = call @big(%a)
      ret %v
    }
  )");
  InlinerOptions tight;
  tight.callee_size_threshold = 3;
  InlinerPass pass(tight);
  EXPECT_FALSE(pass.Run(*m));

  m->GetFunction("big")->set_is_libc(true);
  tight.always_inline_libc = true;
  InlinerPass libc_pass(tight);
  EXPECT_TRUE(libc_pass.Run(*m));
  ExpectValid(*m);
  EXPECT_EQ(CountOpcode(*m->GetFunction("f"), Opcode::kCall), 0u);
}

TEST(IfConvertTest, DiamondBecomesSelect) {
  auto m = ParseModuleOrDie(R"(
    func @f(%c: i1, %a: i32, %b: i32) -> i32 {
    entry:
      br %c, label %t, label %e
    t:
      %x = add %a, i32 1
      br label %join
    e:
      %y = mul %b, i32 2
      br label %join
    join:
      %r = phi i32 [ %x, %t ], [ %y, %e ]
      ret %r
    }
  )");
  Function* f = m->GetFunction("f");
  IfConvertOptions aggressive;
  aggressive.branch_cost = 1000;
  EXPECT_TRUE(IfConvertPass(aggressive).RunOnFunction(*f));
  ExpectValid(*m);
  SimplifyCfgPass().RunOnFunction(*f);
  EXPECT_EQ(f->NumBlocks(), 1u);
  EXPECT_EQ(CountOpcode(*f, Opcode::kSelect), 1u);
  EXPECT_EQ(CountAcyclicPaths(*f), 1u);
}

TEST(IfConvertTest, TriangleBecomesSelect) {
  auto m = ParseModuleOrDie(R"(
    func @f(%c: i1, %a: i32) -> i32 {
    entry:
      br %c, label %t, label %join
    t:
      %x = add %a, i32 5
      br label %join
    join:
      %r = phi i32 [ %x, %t ], [ %a, %entry ]
      ret %r
    }
  )");
  Function* f = m->GetFunction("f");
  IfConvertOptions aggressive;
  aggressive.branch_cost = 1000;
  EXPECT_TRUE(IfConvertPass(aggressive).RunOnFunction(*f));
  ExpectValid(*m);
  SimplifyCfgPass().RunOnFunction(*f);
  EXPECT_EQ(CountAcyclicPaths(*f), 1u);
}

TEST(IfConvertTest, CpuCostModelDeclines) {
  // Five speculated instructions exceed a CPU-like branch cost of 2.
  auto m = ParseModuleOrDie(R"(
    func @f(%c: i1, %a: i32) -> i32 {
    entry:
      br %c, label %t, label %join
    t:
      %x1 = add %a, i32 1
      %x2 = mul %x1, i32 3
      %x3 = add %x2, i32 7
      %x4 = mul %x3, i32 5
      %x5 = add %x4, i32 9
      br label %join
    join:
      %r = phi i32 [ %x5, %t ], [ %a, %entry ]
      ret %r
    }
  )");
  Function* f = m->GetFunction("f");
  IfConvertOptions cpu;
  cpu.branch_cost = 2;
  EXPECT_FALSE(IfConvertPass(cpu).RunOnFunction(*f));
  EXPECT_EQ(CountOpcode(*f, Opcode::kSelect), 0u);
}

TEST(IfConvertTest, RefusesSideEffects) {
  auto m = ParseModuleOrDie(R"(
    func @f(%c: i1, %p: i32*, %a: i32) -> i32 {
    entry:
      br %c, label %t, label %join
    t:
      store %a, %p
      br label %join
    join:
      %r = phi i32 [ i32 1, %t ], [ i32 0, %entry ]
      ret %r
    }
  )");
  Function* f = m->GetFunction("f");
  IfConvertOptions aggressive;
  aggressive.branch_cost = 1000;
  EXPECT_FALSE(IfConvertPass(aggressive).RunOnFunction(*f));
}

TEST(IfConvertTest, RefusesUnprovenLoadWithoutDominatingAccess) {
  auto m = ParseModuleOrDie(R"(
    func @f(%c: i1, %p: i32*) -> i32 {
    entry:
      br %c, label %t, label %join
    t:
      %v = load %p
      br label %join
    join:
      %r = phi i32 [ %v, %t ], [ i32 0, %entry ]
      ret %r
    }
  )");
  Function* f = m->GetFunction("f");
  IfConvertOptions aggressive;
  aggressive.branch_cost = 1000;
  aggressive.speculate_loads = true;
  EXPECT_FALSE(IfConvertPass(aggressive).RunOnFunction(*f));
}

TEST(IfConvertTest, SpeculatesLoadWithDominatingAccess) {
  auto m = ParseModuleOrDie(R"(
    func @f(%c: i1, %p: i32*) -> i32 {
    entry:
      %first = load %p
      br %c, label %t, label %join
    t:
      %v = load %p
      br label %join
    join:
      %r = phi i32 [ %v, %t ], [ %first, %entry ]
      ret %r
    }
  )");
  Function* f = m->GetFunction("f");
  IfConvertOptions aggressive;
  aggressive.branch_cost = 1000;
  aggressive.speculate_loads = true;
  EXPECT_TRUE(IfConvertPass(aggressive).RunOnFunction(*f));
  ExpectValid(*m);
}

const char* kUnswitchable = R"(
  func @f(%n: i32, %any: i32) -> i32 {
  entry:
    %flag = icmp ne %any, i32 0
    br label %header
  header:
    %i = phi i32 [ i32 0, %entry ], [ %ni, %latch ]
    %acc = phi i32 [ i32 0, %entry ], [ %nacc, %latch ]
    %c = icmp slt %i, %n
    br %c, label %body, label %exit
  body:
    br %flag, label %double, label %single
  double:
    %d = mul %i, i32 2
    br label %latch
  single:
    br label %latch
  latch:
    %delta = phi i32 [ %d, %double ], [ %i, %single ]
    %nacc = add %acc, %delta
    %ni = add %i, i32 1
    br label %header
  exit:
    ret %acc
  }
)";

TEST(UnswitchTest, HoistsInvariantBranch) {
  auto m = ParseModuleOrDie(kUnswitchable);
  Function* f = m->GetFunction("f");
  UnswitchOptions options;
  EXPECT_TRUE(LoopUnswitchPass(options).RunOnFunction(*f));
  ExpectValid(*m);
  Cleanup(*f);
  ExpectValid(*m);

  // After unswitching, no block inside either loop branches on %flag: the
  // only conditional branches left are the two loop exits plus the preheader
  // dispatch.
  DominatorTree dom(*f);
  LoopInfo loops(*f, dom);
  for (Loop* loop : loops.LoopsInnermostFirst()) {
    for (BasicBlock* block : loop->blocks()) {
      auto* br = DynCast<BranchInst>(block->Terminator());
      if (br != nullptr && br->IsConditional()) {
        EXPECT_FALSE(loop->IsInvariant(br->condition()))
            << "invariant branch still inside a loop";
      }
    }
  }
  EXPECT_EQ(loops.NumLoops(), 2u);  // two specialized copies
}

TEST(UnswitchTest, RespectsSizeLimit) {
  auto m = ParseModuleOrDie(kUnswitchable);
  Function* f = m->GetFunction("f");
  UnswitchOptions tiny;
  tiny.loop_size_limit = 2;
  EXPECT_FALSE(LoopUnswitchPass(tiny).RunOnFunction(*f));
}

TEST(LoopUtilsTest, TripCountWhileStyle) {
  auto m = ParseModuleOrDie(R"(
    func @f(%unused: i32) -> i32 {
    entry:
      br label %header
    header:
      %i = phi i32 [ i32 0, %entry ], [ %ni, %body ]
      %c = icmp slt %i, i32 5
      br %c, label %body, label %exit
    body:
      %ni = add %i, i32 1
      br label %header
    exit:
      ret %i
    }
  )");
  Function* f = m->GetFunction("f");
  DominatorTree dom(*f);
  LoopInfo loops(*f, dom);
  ASSERT_EQ(loops.NumLoops(), 1u);
  auto trip = ComputeTripCount(loops.TopLevelLoops()[0], 100);
  ASSERT_TRUE(trip.has_value());
  EXPECT_EQ(trip->trip_count, 5u);
}

TEST(LoopUtilsTest, TripCountDoWhileStyle) {
  auto m = ParseModuleOrDie(R"(
    func @f(%unused: i32) -> i32 {
    entry:
      br label %body
    body:
      %i = phi i32 [ i32 0, %entry ], [ %ni, %body ]
      %ni = add %i, i32 1
      %c = icmp slt %ni, i32 3
      br %c, label %body, label %exit
    exit:
      ret %i
    }
  )");
  Function* f = m->GetFunction("f");
  DominatorTree dom(*f);
  LoopInfo loops(*f, dom);
  ASSERT_EQ(loops.NumLoops(), 1u);
  auto trip = ComputeTripCount(loops.TopLevelLoops()[0], 100);
  ASSERT_TRUE(trip.has_value());
  EXPECT_EQ(trip->trip_count, 3u);
}

TEST(LoopUtilsTest, TripCountBailsOnDynamicBound) {
  auto m = ParseModuleOrDie(R"(
    func @f(%n: i32) -> i32 {
    entry:
      br label %header
    header:
      %i = phi i32 [ i32 0, %entry ], [ %ni, %body ]
      %c = icmp slt %i, %n
      br %c, label %body, label %exit
    body:
      %ni = add %i, i32 1
      br label %header
    exit:
      ret %i
    }
  )");
  Function* f = m->GetFunction("f");
  DominatorTree dom(*f);
  LoopInfo loops(*f, dom);
  EXPECT_FALSE(ComputeTripCount(loops.TopLevelLoops()[0], 100).has_value());
}

TEST(UnrollTest, FullyUnrollsConstantTripLoop) {
  auto m = ParseModuleOrDie(R"(
    func @f(%x: i32) -> i32 {
    entry:
      br label %header
    header:
      %i = phi i32 [ i32 0, %entry ], [ %ni, %body ]
      %acc = phi i32 [ %x, %entry ], [ %nacc, %body ]
      %c = icmp slt %i, i32 4
      br %c, label %body, label %exit
    body:
      %nacc = add %acc, %i
      %ni = add %i, i32 1
      br label %header
    exit:
      ret %acc
    }
  )");
  Function* f = m->GetFunction("f");
  UnrollOptions options;
  EXPECT_TRUE(LoopUnrollPass(options).RunOnFunction(*f));
  ExpectValid(*m);
  Cleanup(*f);
  Cleanup(*f);
  ExpectValid(*m);
  // The loop is gone: no back edges remain.
  DominatorTree dom(*f);
  LoopInfo loops(*f, dom);
  EXPECT_EQ(loops.NumLoops(), 0u);
  // acc = x + 0 + 1 + 2 + 3.
  std::string text = PrintFunction(*f);
  EXPECT_NE(text.find("add %x, i32 6"), std::string::npos) << text;
}

TEST(UnrollTest, RespectsTripCountBudget) {
  auto m = ParseModuleOrDie(R"(
    func @f(%x: i32) -> i32 {
    entry:
      br label %header
    header:
      %i = phi i32 [ i32 0, %entry ], [ %ni, %body ]
      %c = icmp slt %i, i32 100
      br %c, label %body, label %exit
    body:
      %ni = add %i, i32 1
      br label %header
    exit:
      ret %i
    }
  )");
  Function* f = m->GetFunction("f");
  UnrollOptions small;
  small.max_trip_count = 8;
  EXPECT_FALSE(LoopUnrollPass(small).RunOnFunction(*f));
}

TEST(JumpThreadingTest, SameConditionThreads) {
  auto m = ParseModuleOrDie(R"(
    func @f(%x: i32) -> i32 {
    entry:
      %c = icmp slt %x, i32 10
      br %c, label %via, label %other
    via:
      br %c, label %t, label %e
    other:
      ret i32 0
    t:
      ret i32 1
    e:
      ret i32 2
    }
  )");
  Function* f = m->GetFunction("f");
  EXPECT_TRUE(JumpThreadingPass().RunOnFunction(*f));
  ExpectValid(*m);
  SimplifyCfgPass().RunOnFunction(*f);
  // entry now reaches t directly; e is unreachable and removed.
  bool has_e = false;
  for (BasicBlock& bb : *f) {
    if (bb.name() == "e") {
      has_e = true;
    }
  }
  EXPECT_FALSE(has_e);
}

TEST(JumpThreadingTest, SubsumedConditionThreads) {
  // (x < 10) true implies (x < 20) true: the second test is redundant.
  auto m = ParseModuleOrDie(R"(
    func @f(%x: i32) -> i32 {
    entry:
      %c1 = icmp slt %x, i32 10
      br %c1, label %via, label %other
    via:
      %c2 = icmp slt %x, i32 20
      br %c2, label %t, label %e
    other:
      ret i32 0
    t:
      ret i32 1
    e:
      ret i32 2
    }
  )");
  Function* f = m->GetFunction("f");
  // `via` holds the icmp itself, which jump threading must skip over; move
  // it out first via instcombine? No: the pass requires phis-only blocks, so
  // hoist c2 manually by CSE-like reorganization is out of scope. Instead,
  // validate the decision logic through a phis-only via block:
  (void)f;
  auto m2 = ParseModuleOrDie(R"(
    func @g(%x: i32) -> i32 {
    entry:
      %c1 = icmp slt %x, i32 10
      %c2 = icmp slt %x, i32 20
      br %c1, label %via, label %other
    via:
      br %c2, label %t, label %e
    other:
      ret i32 0
    t:
      ret i32 1
    e:
      ret i32 2
    }
  )");
  Function* g = m2->GetFunction("g");
  EXPECT_TRUE(JumpThreadingPass().RunOnFunction(*g));
  ExpectValid(*m2);
  SimplifyCfgPass().RunOnFunction(*g);
  bool has_e = false;
  for (BasicBlock& bb : *g) {
    if (bb.name() == "e") {
      has_e = true;
    }
  }
  EXPECT_FALSE(has_e);
}

TEST(JumpThreadingTest, OppositeEdgeThreadsToFalse) {
  // (x < 10) false implies (x < 5) false.
  auto m = ParseModuleOrDie(R"(
    func @f(%x: i32) -> i32 {
    entry:
      %c1 = icmp slt %x, i32 10
      %c2 = icmp slt %x, i32 5
      br %c1, label %other, label %via
    via:
      br %c2, label %t, label %e
    other:
      ret i32 0
    t:
      ret i32 1
    e:
      ret i32 2
    }
  )");
  Function* f = m->GetFunction("f");
  EXPECT_TRUE(JumpThreadingPass().RunOnFunction(*f));
  ExpectValid(*m);
  SimplifyCfgPass().RunOnFunction(*f);
  bool has_t = false;
  for (BasicBlock& bb : *f) {
    if (bb.name() == "t") {
      has_t = true;
    }
  }
  EXPECT_FALSE(has_t);
}

TEST(JumpThreadingTest, NoThreadWhenUndecidable) {
  // (x < 10) true does not decide (x < 5).
  auto m = ParseModuleOrDie(R"(
    func @f(%x: i32) -> i32 {
    entry:
      %c1 = icmp slt %x, i32 10
      %c2 = icmp slt %x, i32 5
      br %c1, label %via, label %other
    via:
      br %c2, label %t, label %e
    other:
      ret i32 0
    t:
      ret i32 1
    e:
      ret i32 2
    }
  )");
  Function* f = m->GetFunction("f");
  EXPECT_FALSE(JumpThreadingPass().RunOnFunction(*f));
}

TEST(LicmTest, HoistsInvariantComputation) {
  auto m = ParseModuleOrDie(R"(
    func @f(%n: i32, %a: i32, %b: i32) -> i32 {
    entry:
      br label %header
    header:
      %i = phi i32 [ i32 0, %entry ], [ %ni, %header ]
      %inv = mul %a, %b
      %ni = add %i, %inv
      %c = icmp slt %ni, %n
      br %c, label %header, label %exit
    exit:
      ret %ni
    }
  )");
  Function* f = m->GetFunction("f");
  EXPECT_TRUE(LicmPass().RunOnFunction(*f));
  ExpectValid(*m);
  DominatorTree dom(*f);
  LoopInfo loops(*f, dom);
  ASSERT_EQ(loops.NumLoops(), 1u);
  Loop* loop = loops.TopLevelLoops()[0];
  for (BasicBlock* block : loop->blocks()) {
    for (auto& inst : *block) {
      EXPECT_NE(inst->opcode(), Opcode::kMul) << "invariant mul not hoisted";
    }
  }
}

TEST(LicmTest, HoistsInvariantLoadWhenNoStores) {
  auto m = ParseModuleOrDie(R"(
    global @g : [1 x i32] = [5, 0, 0, 0]
    func @f(%n: i32) -> i32 {
    entry:
      br label %header
    header:
      %i = phi i32 [ i32 0, %entry ], [ %ni, %header ]
      %p = gep [1 x i32], @g, i64 0, i64 0
      %v = load %p
      %ni = add %i, %v
      %c = icmp slt %ni, %n
      br %c, label %header, label %exit
    exit:
      ret %ni
    }
  )");
  Function* f = m->GetFunction("f");
  EXPECT_TRUE(LicmPass().RunOnFunction(*f));
  ExpectValid(*m);
  DominatorTree dom(*f);
  LoopInfo loops(*f, dom);
  Loop* loop = loops.TopLevelLoops()[0];
  for (BasicBlock* block : loop->blocks()) {
    for (auto& inst : *block) {
      EXPECT_NE(inst->opcode(), Opcode::kLoad) << "invariant load not hoisted";
    }
  }
}

TEST(LicmTest, DoesNotHoistLoadPastAliasingStore) {
  auto m = ParseModuleOrDie(R"(
    func @f(%n: i32, %p: i32*, %q: i32*) -> i32 {
    entry:
      br label %header
    header:
      %i = phi i32 [ i32 0, %entry ], [ %ni, %header ]
      %v = load %p
      store %i, %q
      %ni = add %i, %v
      %c = icmp slt %ni, %n
      br %c, label %header, label %exit
    exit:
      ret %ni
    }
  )");
  Function* f = m->GetFunction("f");
  LicmPass().RunOnFunction(*f);
  ExpectValid(*m);
  DominatorTree dom(*f);
  LoopInfo loops(*f, dom);
  Loop* loop = loops.TopLevelLoops()[0];
  bool load_in_loop = false;
  for (BasicBlock* block : loop->blocks()) {
    for (auto& inst : *block) {
      if (inst->opcode() == Opcode::kLoad) {
        load_in_loop = true;
      }
    }
  }
  EXPECT_TRUE(load_in_loop);
}

TEST(LoopUtilsTest, EnsurePreheaderCreatesOne) {
  auto m = ParseModuleOrDie(R"(
    func @f(%c: i1, %n: i32) -> i32 {
    entry:
      br %c, label %header, label %other
    other:
      br label %header
    header:
      %i = phi i32 [ i32 0, %entry ], [ i32 1, %other ], [ %ni, %header ]
      %ni = add %i, i32 1
      %cc = icmp slt %ni, %n
      br %cc, label %header, label %exit
    exit:
      ret %i
    }
  )");
  Function* f = m->GetFunction("f");
  DominatorTree dom(*f);
  LoopInfo loops(*f, dom);
  Loop* loop = loops.TopLevelLoops()[0];
  EXPECT_EQ(loop->Preheader(), nullptr);
  BasicBlock* ph = EnsurePreheader(loop);
  ASSERT_NE(ph, nullptr);
  ExpectValid(*m);
  // Recompute: the loop must now have that preheader.
  DominatorTree dom2(*f);
  LoopInfo loops2(*f, dom2);
  EXPECT_EQ(loops2.TopLevelLoops()[0]->Preheader(), ph);
}

TEST(LoopUtilsTest, FormLCSSAInsertsExitPhis) {
  auto m = ParseModuleOrDie(R"(
    func @f(%n: i32) -> i32 {
    entry:
      br label %header
    header:
      %i = phi i32 [ i32 0, %entry ], [ %ni, %header ]
      %ni = add %i, i32 1
      %c = icmp slt %ni, %n
      br %c, label %header, label %exit
    exit:
      %use = add %ni, i32 5
      ret %use
    }
  )");
  Function* f = m->GetFunction("f");
  DominatorTree dom(*f);
  LoopInfo loops(*f, dom);
  EXPECT_TRUE(FormLCSSA(*f, loops.TopLevelLoops()[0]));
  ExpectValid(*m);
  // The exit block now begins with an lcssa phi.
  for (BasicBlock& bb : *f) {
    if (bb.name() == "exit") {
      EXPECT_EQ(bb.begin()->get()->opcode(), Opcode::kPhi);
    }
  }
}

}  // namespace
}  // namespace overify
