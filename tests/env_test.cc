// Strict parsing of the OVERIFY_* environment knobs (src/support/env.h and
// its two consumers: OVERIFY_CDCL_* in src/symex/solver.cc and
// OVERIFY_FAULT_* in src/support/fault.cc).
//
// The contract under test: unset or empty means the compiled-in default,
// silently; anything else must be a complete in-range literal or the
// default is kept *and* a structured diagnostic names the variable, the
// offending value, and the accepted range. The failure mode this kills is
// the atoi one — a mistyped CI sweep value silently parsing to 0 and
// running a different experiment than the matrix claimed.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "src/support/env.h"
#include "src/support/fault.h"
#include "src/symex/solver.h"

namespace overify {
namespace {

// Scoped setenv: every test leaves the environment as it found it, so
// suites can run in any order (and under CI sweeps that export real
// OVERIFY_* values — those are cleared for the duration too).
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    had_old_ = old != nullptr;
    if (had_old_) {
      old_ = old;
    }
    if (value != nullptr) {
      ::setenv(name, value, 1);
    } else {
      ::unsetenv(name);
    }
  }
  ~ScopedEnv() {
    if (had_old_) {
      ::setenv(name_.c_str(), old_.c_str(), 1);
    } else {
      ::unsetenv(name_.c_str());
    }
  }

 private:
  std::string name_;
  std::string old_;
  bool had_old_ = false;
};

// ---- The primitives ----

TEST(ParseEnvUint64, UnsetIsSilentDefault) {
  ScopedEnv env("OVERIFY_TEST_KNOB", nullptr);
  uint64_t out = 42;
  EnvParse parse = ParseEnvUint64("OVERIFY_TEST_KNOB", 1, 100, &out);
  EXPECT_FALSE(parse.present);
  EXPECT_FALSE(parse.ok);
  EXPECT_FALSE(parse.Rejected());
  EXPECT_EQ(out, 42u) << "out must be untouched";
}

TEST(ParseEnvUint64, ParsesCompleteLiterals) {
  ScopedEnv env("OVERIFY_TEST_KNOB", "64");
  uint64_t out = 0;
  EnvParse parse = ParseEnvUint64("OVERIFY_TEST_KNOB", 1, 100, &out);
  EXPECT_TRUE(parse.ok);
  EXPECT_EQ(out, 64u);

  ScopedEnv hex("OVERIFY_TEST_KNOB", "0x40");
  parse = ParseEnvUint64("OVERIFY_TEST_KNOB", 1, 100, &out);
  EXPECT_TRUE(parse.ok);
  EXPECT_EQ(out, 64u);
}

TEST(ParseEnvUint64, RejectsGarbageKeepingDefault) {
  // Each of these used to pass through atoi-style parsing as *something*.
  for (const char* bad : {"abc", "12abc", "12 ", " 12", "-5", "1e3", "", "0x", "++1"}) {
    ScopedEnv env("OVERIFY_TEST_KNOB", bad);
    uint64_t out = 42;
    EnvParse parse = ParseEnvUint64("OVERIFY_TEST_KNOB", 1, 100, &out);
    EXPECT_TRUE(parse.Rejected()) << "value '" << bad << "' must be rejected";
    EXPECT_EQ(out, 42u) << "default must survive '" << bad << "'";
    EXPECT_NE(parse.error.find("OVERIFY_TEST_KNOB"), std::string::npos)
        << "diagnostic must name the variable: " << parse.error;
  }
}

TEST(ParseEnvUint64, RejectsOutOfRange) {
  for (const char* bad : {"0", "101", "18446744073709551616"}) {
    ScopedEnv env("OVERIFY_TEST_KNOB", bad);
    uint64_t out = 42;
    EnvParse parse = ParseEnvUint64("OVERIFY_TEST_KNOB", 1, 100, &out);
    EXPECT_TRUE(parse.Rejected()) << bad;
    EXPECT_EQ(out, 42u);
  }
}

TEST(ParseEnvDouble, ParsesAndRejects) {
  uint64_t unused;
  (void)unused;
  {
    ScopedEnv env("OVERIFY_TEST_KNOB", "0.875");
    double out = 0.5;
    EXPECT_TRUE(ParseEnvDouble("OVERIFY_TEST_KNOB", 0.0, 1.0, &out).ok);
    EXPECT_EQ(out, 0.875);
  }
  for (const char* bad : {"abc", "0.5x", "nan", "inf", "", "1.5"}) {
    ScopedEnv env("OVERIFY_TEST_KNOB", bad);
    double out = 0.5;
    EnvParse parse = ParseEnvDouble("OVERIFY_TEST_KNOB", 0.0, 1.0, &out);
    EXPECT_TRUE(parse.Rejected()) << "value '" << bad << "' must be rejected";
    EXPECT_EQ(out, 0.5) << bad;
  }
}

// ---- OVERIFY_CDCL_*: the solver sweep knobs ----

TEST(CdclEnv, DefaultsWhenUnset) {
  ScopedEnv a("OVERIFY_CDCL_RESTART_BASE", nullptr);
  ScopedEnv b("OVERIFY_CDCL_DECAY", nullptr);
  ScopedEnv c("OVERIFY_CDCL_CLAUSES", nullptr);
  const CdclConfig config = CdclConfigFromEnv();
  const CdclConfig defaults;
  EXPECT_EQ(config.restart_base, defaults.restart_base);
  EXPECT_EQ(config.activity_decay, defaults.activity_decay);
  EXPECT_EQ(config.clause_capacity, defaults.clause_capacity);
}

TEST(CdclEnv, AppliesValidOverrides) {
  ScopedEnv a("OVERIFY_CDCL_RESTART_BASE", "128");
  ScopedEnv b("OVERIFY_CDCL_DECAY", "0.875");
  ScopedEnv c("OVERIFY_CDCL_CLAUSES", "1024");
  const CdclConfig config = CdclConfigFromEnv();
  EXPECT_EQ(config.restart_base, 128u);
  EXPECT_EQ(config.activity_decay, 0.875);
  EXPECT_EQ(config.clause_capacity, 1024u);
}

TEST(CdclEnv, GarbageKeepsCompiledDefaults) {
  // The sweep-matrix failure mode: "64 " or "O.95" must not run a
  // different parameter point than the matrix claims.
  ScopedEnv a("OVERIFY_CDCL_RESTART_BASE", "64abc");
  ScopedEnv b("OVERIFY_CDCL_DECAY", "O.95");
  ScopedEnv c("OVERIFY_CDCL_CLAUSES", "-512");
  const CdclConfig config = CdclConfigFromEnv();
  const CdclConfig defaults;
  EXPECT_EQ(config.restart_base, defaults.restart_base);
  EXPECT_EQ(config.activity_decay, defaults.activity_decay);
  EXPECT_EQ(config.clause_capacity, defaults.clause_capacity);
}

// ---- OVERIFY_FAULT_*: the robustness sweep knobs ----

TEST(FaultEnv, UnsetOrEmptySeedSilentlyDisables) {
  {
    ScopedEnv seed("OVERIFY_FAULT_SEED", nullptr);
    EXPECT_FALSE(FaultConfig::FromEnv().enabled());
  }
  {
    ScopedEnv seed("OVERIFY_FAULT_SEED", "");
    EXPECT_FALSE(FaultConfig::FromEnv().enabled());
  }
}

TEST(FaultEnv, GarbageSeedDisablesLoudly) {
  // strtoull("banana") == 0 used to silently disable the very injection a
  // robustness sweep thought it was running. Still disabled — injection
  // must never start from a value the user didn't write — but rejected as
  // a parse, not misread as "off".
  ScopedEnv seed("OVERIFY_FAULT_SEED", "banana");
  ScopedEnv period("OVERIFY_FAULT_PERIOD", nullptr);
  ScopedEnv sites("OVERIFY_FAULT_SITES", nullptr);
  const FaultConfig config = FaultConfig::FromEnv();
  EXPECT_FALSE(config.enabled());
}

TEST(FaultEnv, ValidSeedAndPeriod) {
  ScopedEnv seed("OVERIFY_FAULT_SEED", "12345");
  ScopedEnv period("OVERIFY_FAULT_PERIOD", "8");
  ScopedEnv sites("OVERIFY_FAULT_SITES", nullptr);
  const FaultConfig config = FaultConfig::FromEnv();
  EXPECT_TRUE(config.enabled());
  EXPECT_EQ(config.seed, 12345u);
  EXPECT_EQ(config.period, 8u);
  EXPECT_EQ(config.sites, ~0u) << "absent sites list = all sites";
}

TEST(FaultEnv, GarbagePeriodKeepsDefault) {
  ScopedEnv seed("OVERIFY_FAULT_SEED", "1");
  ScopedEnv period("OVERIFY_FAULT_PERIOD", "soon");
  ScopedEnv sites("OVERIFY_FAULT_SITES", nullptr);
  const FaultConfig config = FaultConfig::FromEnv();
  EXPECT_TRUE(config.enabled()) << "a bad period must not disable injection";
  EXPECT_EQ(config.period, FaultConfig().period);
}

TEST(FaultEnv, SiteListParsesKnownNames) {
  ScopedEnv seed("OVERIFY_FAULT_SEED", "1");
  ScopedEnv period("OVERIFY_FAULT_PERIOD", nullptr);
  const std::string two = std::string(FaultSiteName(FaultSite::kSolverUnknown)) + "," +
                          FaultSiteName(FaultSite::kWorkerDeath);
  ScopedEnv sites("OVERIFY_FAULT_SITES", two.c_str());
  const FaultConfig config = FaultConfig::FromEnv();
  EXPECT_TRUE(config.SiteEnabled(FaultSite::kSolverUnknown));
  EXPECT_TRUE(config.SiteEnabled(FaultSite::kWorkerDeath));
  EXPECT_FALSE(config.SiteEnabled(FaultSite::kStealBatch));
}

TEST(FaultEnv, UnknownSiteRejectsWholeList) {
  // All-or-nothing: one typo must not silently run a narrower experiment.
  ScopedEnv seed("OVERIFY_FAULT_SEED", "1");
  ScopedEnv period("OVERIFY_FAULT_PERIOD", nullptr);
  const std::string bad =
      std::string(FaultSiteName(FaultSite::kSolverUnknown)) + ",not_a_site";
  ScopedEnv sites("OVERIFY_FAULT_SITES", bad.c_str());
  const FaultConfig config = FaultConfig::FromEnv();
  EXPECT_EQ(config.sites, ~0u) << "the whole list is rejected, keeping all-sites";
}

}  // namespace
}  // namespace overify
