// Tests for the core solver and the KLEE-style solver chain.
#include <gtest/gtest.h>

#include "src/support/fault.h"
#include "src/symex/solver.h"

namespace overify {
namespace {

class SolverTest : public ::testing::Test {
 protected:
  ExprContext ctx;
  CoreSolver core;

  const Expr* Sym(unsigned i) { return ctx.Symbol(i); }
  const Expr* C(uint64_t v, unsigned w = 8) { return ctx.Constant(v, w); }

  SatResult Check(const std::vector<const Expr*>& cs, std::vector<uint8_t>* model = nullptr) {
    return core.CheckSat(ctx, cs, model);
  }
};

TEST_F(SolverTest, EmptyIsSat) { EXPECT_EQ(Check({}), SatResult::kSat); }

TEST_F(SolverTest, ConstantConstraints) {
  EXPECT_EQ(Check({ctx.True()}), SatResult::kSat);
  EXPECT_EQ(Check({ctx.False()}), SatResult::kUnsat);
}

TEST_F(SolverTest, SingleByteEquality) {
  std::vector<uint8_t> model;
  EXPECT_EQ(Check({ctx.Compare(ICmpPredicate::kEq, Sym(0), C('x'))}, &model), SatResult::kSat);
  ASSERT_GE(model.size(), 1u);
  EXPECT_EQ(model[0], 'x');
}

TEST_F(SolverTest, ContradictionIsUnsat) {
  auto eq1 = ctx.Compare(ICmpPredicate::kEq, Sym(0), C(1));
  auto eq2 = ctx.Compare(ICmpPredicate::kEq, Sym(0), C(2));
  EXPECT_EQ(Check({eq1, eq2}), SatResult::kUnsat);
}

TEST_F(SolverTest, RangeConstraints) {
  // 'a' <= s0 <= 'f'
  auto lo = ctx.Compare(ICmpPredicate::kULE, C('a'), Sym(0));
  auto hi = ctx.Compare(ICmpPredicate::kULE, Sym(0), C('f'));
  std::vector<uint8_t> model;
  EXPECT_EQ(Check({lo, hi}, &model), SatResult::kSat);
  EXPECT_GE(model[0], 'a');
  EXPECT_LE(model[0], 'f');
  // Empty range is unsat.
  auto hi2 = ctx.Compare(ICmpPredicate::kULT, Sym(0), C('a'));
  EXPECT_EQ(Check({lo, hi2}), SatResult::kUnsat);
}

TEST_F(SolverTest, MultiByteRelations) {
  // s0 + s1 == 100 (in 32 bits), s0 == 2 * s1.
  auto w0 = ctx.ZExt(Sym(0), 32);
  auto w1 = ctx.ZExt(Sym(1), 32);
  auto sum = ctx.Compare(ICmpPredicate::kEq, ctx.Binary(ExprKind::kAdd, w0, w1), C(99, 32));
  auto rel = ctx.Compare(ICmpPredicate::kEq, w0,
                         ctx.Binary(ExprKind::kMul, w1, C(2, 32)));
  std::vector<uint8_t> model;
  ASSERT_EQ(Check({sum, rel}, &model), SatResult::kSat);
  EXPECT_EQ(static_cast<int>(model[0]) + model[1], 99);
  EXPECT_EQ(model[0], 2 * model[1]);
}

TEST_F(SolverTest, SignedConstraints) {
  // As a signed char, s0 < -100.
  auto sx = ctx.SExt(Sym(0), 32);
  auto cond = ctx.Compare(ICmpPredicate::kSLT, sx, C(static_cast<uint64_t>(-100), 32));
  std::vector<uint8_t> model;
  ASSERT_EQ(Check({cond}, &model), SatResult::kSat);
  EXPECT_LT(static_cast<int8_t>(model[0]), -100);
}

TEST_F(SolverTest, SelectConstraints) {
  // (s0 == 0 ? s1 : s2) == 7 with s0 != 0 forces s2 == 7.
  auto is_zero = ctx.Compare(ICmpPredicate::kEq, Sym(0), C(0));
  auto sel = ctx.Select(is_zero, Sym(1), Sym(2));
  auto eq7 = ctx.Compare(ICmpPredicate::kEq, sel, C(7));
  auto nonzero = ctx.Not(is_zero);
  std::vector<uint8_t> model;
  ASSERT_EQ(Check({eq7, nonzero}, &model), SatResult::kSat);
  EXPECT_NE(model[0], 0);
  EXPECT_EQ(model[2], 7);
}

TEST(IndependenceTest, FiltersUnrelatedConstraints) {
  ExprContext ctx;
  auto c01 = ctx.Compare(ICmpPredicate::kEq, ctx.Symbol(0), ctx.Symbol(1));
  auto c12 = ctx.Compare(ICmpPredicate::kULT, ctx.Symbol(1), ctx.Symbol(2));
  auto c34 = ctx.Compare(ICmpPredicate::kEq, ctx.Symbol(3), ctx.Symbol(4));
  auto c5 = ctx.Compare(ICmpPredicate::kEq, ctx.Symbol(5), ctx.Constant(1, 8));

  // Seed touching symbol 0 should pull in c01 and (transitively) c12.
  auto seed = ctx.Compare(ICmpPredicate::kEq, ctx.Symbol(0), ctx.Constant(9, 8));
  auto filtered = FilterIndependent({c01, c12, c34, c5}, seed);
  ASSERT_EQ(filtered.size(), 2u);
  EXPECT_EQ(filtered[0], c01);
  EXPECT_EQ(filtered[1], c12);
}

TEST(SolverChainTest, CachesRepeatedQueries) {
  ExprContext ctx;
  SolverChain chain(ctx);
  auto cond = ctx.Compare(ICmpPredicate::kEq, ctx.Symbol(0), ctx.Constant('a', 8));
  std::vector<const Expr*> path;
  EXPECT_EQ(chain.MayBeTrue(path, cond, nullptr), SatResult::kSat);
  uint64_t core_before = chain.stats().core_queries;
  EXPECT_EQ(chain.MayBeTrue(path, cond, nullptr), SatResult::kSat);
  EXPECT_EQ(chain.stats().core_queries, core_before);  // served by cache
  EXPECT_GE(chain.stats().cache_hits, 1u);
}

TEST(SolverChainTest, IndependenceKeepsQueriesSmall) {
  ExprContext ctx;
  SolverChain chain(ctx);
  // Ten unrelated constraints on symbols 10..19.
  std::vector<const Expr*> path;
  for (unsigned i = 10; i < 20; ++i) {
    path.push_back(ctx.Compare(ICmpPredicate::kULT, ctx.Symbol(i), ctx.Constant(100, 8)));
  }
  auto cond = ctx.Compare(ICmpPredicate::kEq, ctx.Symbol(0), ctx.Constant(5, 8));
  EXPECT_EQ(chain.MayBeTrue(path, cond, nullptr), SatResult::kSat);
  EXPECT_GE(chain.stats().independence_drops, 10u);
}

TEST(SolverChainTest, ModelReuseAcrossSimilarQueries) {
  ExprContext ctx;
  SolverChain chain(ctx);
  std::vector<const Expr*> path = {
      ctx.Compare(ICmpPredicate::kEq, ctx.Symbol(0), ctx.Constant('x', 8))};
  // First query solves; the second (weaker) must not reach the core search —
  // the preprocessor substitutes the byte binding and settles it outright
  // (with preprocessing disabled it would be a cache/reuse hit instead).
  EXPECT_EQ(chain.CheckSat(path, nullptr), SatResult::kSat);
  uint64_t core_before = chain.stats().core_queries;
  auto weaker = ctx.Compare(ICmpPredicate::kUGT, ctx.Symbol(0), ctx.Constant(3, 8));
  EXPECT_EQ(chain.MayBeTrue(path, weaker, nullptr), SatResult::kSat);
  EXPECT_EQ(chain.stats().core_queries, core_before);
  EXPECT_GE(chain.stats().reuse_hits + chain.stats().cache_hits +
                chain.stats().presolve_shortcuts,
            1u);
}

TEST(SolverChainTest, CexCacheIsBoundedAndEvicts) {
  // Push well past the cache capacity (4096 entries) with distinct
  // constraint sets; the FIFO eviction counter must move and verdicts must
  // stay correct for re-queried (evicted) sets.
  ExprContext ctx;
  SolverChain chain(ctx);
  auto query = [&](unsigned x, unsigned y) {
    std::vector<const Expr*> cs = {
        ctx.Compare(ICmpPredicate::kEq, ctx.Symbol(0), ctx.Constant(x, 8)),
        ctx.Compare(ICmpPredicate::kEq, ctx.Symbol(1), ctx.Constant(y, 8))};
    return chain.CheckSat(cs, nullptr);
  };
  for (unsigned x = 0; x < 66; ++x) {
    for (unsigned y = 0; y < 66; ++y) {
      EXPECT_EQ(query(x, y), SatResult::kSat);
    }
  }
  EXPECT_GE(chain.stats().cex_evictions, 1u);
  // The earliest entries are long evicted; answers are still right.
  EXPECT_EQ(query(0, 0), SatResult::kSat);
}

TEST(SolverChainTest, StatsExposeFastPathCounters) {
  ExprContext ctx;
  SolverChain chain(ctx);
  std::vector<const Expr*> path = {
      ctx.Compare(ICmpPredicate::kULT, ctx.Symbol(0), ctx.Symbol(1))};
  auto cond = ctx.Compare(ICmpPredicate::kEq, ctx.Symbol(0), ctx.Constant(3, 8));
  EXPECT_EQ(chain.MayBeTrue(path, cond, nullptr), SatResult::kSat);
  // The core search evaluates shared subexpressions under the inline memo.
  EXPECT_GE(chain.stats().eval_memo_hits + chain.stats().interval_memo_hits, 0u);
  EXPECT_EQ(chain.stats().cex_evictions, 0u);
}

TEST(SolverChainTest, UnsatDetected) {
  ExprContext ctx;
  SolverChain chain(ctx);
  std::vector<const Expr*> path = {
      ctx.Compare(ICmpPredicate::kEq, ctx.Symbol(0), ctx.Constant(1, 8))};
  auto conflicting = ctx.Compare(ICmpPredicate::kEq, ctx.Symbol(0), ctx.Constant(2, 8));
  EXPECT_EQ(chain.MayBeTrue(path, conflicting, nullptr), SatResult::kUnsat);
}

// ---- kUnknown hygiene: a degraded verdict is never cached and never
// poisons a later exact answer (docs/robustness.md).

// An UNSAT pair over X = s0 ^ s1 (widened): xor defeats byte-binding
// substitution and interval presolving, so the query must reach the core
// search and enumerate — decidable within the default budget (64Ki
// candidates) but not within a tiny one.
std::vector<const Expr*> XorContradiction(ExprContext& ctx) {
  const Expr* x = ctx.Binary(ExprKind::kXor, ctx.ZExt(ctx.Symbol(0), 32),
                             ctx.ZExt(ctx.Symbol(1), 32));
  return {ctx.Compare(ICmpPredicate::kEq, x, ctx.Constant(7, 32)),
          ctx.Compare(ICmpPredicate::kEq, ctx.Binary(ExprKind::kXor, x, ctx.Constant(1, 32)),
                      ctx.Constant(7, 32))};
}

TEST(SolverChainUnknownTest, BudgetUnknownIsAttributedAndNeverCached) {
  ExprContext ctx;
  SolverChain chain(ctx);
  std::vector<const Expr*> constraints = XorContradiction(ctx);

  QueryControl tiny;
  tiny.query_candidates = 16;
  chain.set_control(tiny);
  EXPECT_EQ(chain.CheckSat(constraints, nullptr), SatResult::kUnknown);
  EXPECT_EQ(chain.last_unknown_cause(), UnknownCause::kCandidateBudget);
  EXPECT_EQ(chain.stats().unknown_budget, 1u);
  uint64_t core_after_first = chain.stats().core_queries;
  EXPECT_GE(core_after_first, 1u);

  // Re-asking under the same tiny budget must hit the core again — if the
  // kUnknown had been cached, this would be a cache hit with no new core
  // query (and PrefixCache::Insert asserts against such an entry ever
  // existing).
  EXPECT_EQ(chain.CheckSat(constraints, nullptr), SatResult::kUnknown);
  EXPECT_EQ(chain.stats().unknown_budget, 2u);
  EXPECT_GT(chain.stats().core_queries, core_after_first);

  // With the budget restored the exact verdict comes through untainted.
  chain.set_control(QueryControl{});
  EXPECT_EQ(chain.CheckSat(constraints, nullptr), SatResult::kUnsat);
  EXPECT_EQ(chain.stats().unknown_budget, 2u);
}

TEST(SolverChainUnknownTest, InjectedUnknownIsAttributedAndRecoverable) {
  ExprContext ctx;
  SolverChain chain(ctx);
  // SAT query that still reaches the core (xor resists presolving).
  std::vector<const Expr*> constraints = {ctx.Compare(
      ICmpPredicate::kEq,
      ctx.Binary(ExprKind::kXor, ctx.ZExt(ctx.Symbol(0), 32), ctx.ZExt(ctx.Symbol(1), 32)),
      ctx.Constant(7, 32))};

  FaultConfig config;
  config.seed = 0x1234;
  config.period = 1;  // fire on every draw
  config.sites = 1u << static_cast<unsigned>(FaultSite::kSolverUnknown);
  FaultInjector injector(config, 0);
  QueryControl control;
  control.faults = &injector;
  chain.set_control(control);

  EXPECT_EQ(chain.CheckSat(constraints, nullptr), SatResult::kUnknown);
  EXPECT_EQ(chain.last_unknown_cause(), UnknownCause::kInjected);
  EXPECT_EQ(chain.stats().unknown_injected, 1u);

  chain.set_control(QueryControl{});
  std::vector<uint8_t> model;
  EXPECT_EQ(chain.CheckSat(constraints, &model), SatResult::kSat);
  ASSERT_GE(model.size(), 2u);
  EXPECT_EQ((model[0] ^ model[1]) & 0xff, 7);
}

TEST(SolverChainUnknownTest, InjectedCacheMissesLeaveVerdictsUnchanged) {
  // Two chains, same queries: one with every cache lookup injected to
  // miss, one clean. Verdicts and models must match query for query.
  ExprContext ctx_a;
  SolverChain clean(ctx_a);
  ExprContext ctx_b;
  SolverChain faulted(ctx_b);

  FaultConfig config;
  config.seed = 0x1234;
  config.period = 1;
  config.sites = 1u << static_cast<unsigned>(FaultSite::kPrefixCacheLookup);
  FaultInjector injector(config, 0);
  QueryControl control;
  control.faults = &injector;
  faulted.set_control(control);

  for (int repeat = 0; repeat < 3; ++repeat) {
    std::vector<uint8_t> model_clean;
    std::vector<uint8_t> model_faulted;
    SatResult sat_clean =
        clean.CheckSat(XorContradiction(ctx_a), &model_clean);
    SatResult sat_faulted =
        faulted.CheckSat(XorContradiction(ctx_b), &model_faulted);
    EXPECT_EQ(sat_clean, sat_faulted) << "repeat " << repeat;
    EXPECT_EQ(model_clean, model_faulted) << "repeat " << repeat;
  }
  // The clean chain got to reuse its cache; the faulted one paid the core
  // search every time. Same answers, different work — completeness of the
  // cache is a performance property, never a soundness one.
  EXPECT_GE(faulted.stats().core_queries, clean.stats().core_queries);
}

}  // namespace
}  // namespace overify
