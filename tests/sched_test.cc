// The scheduler subsystem: pluggable searchers, work-stealing workers, and
// the determinism contract — identical bug sets, verdicts, and path counts
// for 1..N workers on exhausted runs (docs/scheduler.md).
#include <gtest/gtest.h>

#include "src/driver/compiler.h"
#include "src/frontend/codegen.h"
#include "src/sched/searcher.h"
#include "src/sched/translate.h"
#include "src/symex/executor.h"
#include "src/workloads/workloads.h"

namespace overify {
namespace {

std::unique_ptr<Module> CompileOrDie(const std::string& source) {
  DiagnosticEngine diags;
  auto m = CompileMiniC(source, "sched_test", diags);
  EXPECT_NE(m, nullptr) << diags.ToString();
  return m;
}

SymexResult RunWith(Module& m, SearchStrategy strategy, unsigned jobs, unsigned bytes,
                    const SymexLimits& limits) {
  SymexOptions options;
  options.strategy = strategy;
  options.jobs = jobs;
  return SymbolicExecutor(m, options).Run("umain", bytes, limits);
}

const std::vector<SearchStrategy>& AllStrategies() {
  static const std::vector<SearchStrategy> kAll = {
      SearchStrategy::kDfs, SearchStrategy::kBfs, SearchStrategy::kRandomPath,
      SearchStrategy::kCoverageGuided};
  return kAll;
}

// Two results must agree on everything the determinism contract covers.
void ExpectEquivalent(const SymexResult& a, const SymexResult& b, const std::string& label) {
  EXPECT_EQ(a.exhausted, b.exhausted) << label;
  EXPECT_EQ(a.paths_completed, b.paths_completed) << label;
  EXPECT_EQ(a.paths_infeasible, b.paths_infeasible) << label;
  EXPECT_EQ(a.paths_bug, b.paths_bug) << label;
  EXPECT_EQ(a.instructions, b.instructions) << label;
  EXPECT_EQ(a.forks, b.forks) << label;
  ASSERT_EQ(a.bugs.size(), b.bugs.size()) << label;
  for (size_t i = 0; i < a.bugs.size(); ++i) {
    EXPECT_EQ(a.bugs[i].kind, b.bugs[i].kind) << label << " bug " << i;
    EXPECT_EQ(a.bugs[i].site, b.bugs[i].site) << label << " bug " << i;
    EXPECT_EQ(a.bugs[i].message, b.bugs[i].message) << label << " bug " << i;
    EXPECT_EQ(a.bugs[i].example_input, b.bugs[i].example_input) << label << " bug " << i;
  }
}

// ---- Searcher equivalence: order changes, the explored path set does not.

TEST(SearcherEquivalenceTest, EveryStrategyExploresTheSamePathSet) {
  auto m = CompileOrDie(R"(
    int umain(unsigned char *in, int n) {
      int score = 0;
      if (in[0] > 'm') { score += 1; }
      if (in[1] > 'm') { score += 2; }
      if (in[2] > 'm') { score += 4; }
      if (in[0] == in[2]) { score += 8; }
      return score;
    }
  )");
  SymexLimits limits;
  SymexResult baseline = RunWith(*m, SearchStrategy::kDfs, 1, 3, limits);
  EXPECT_TRUE(baseline.exhausted);
  // 3 independent branches fork 8 ways; the equality only forks on the 4
  // combos where in[0] and in[2] sit on the same side of 'm'.
  EXPECT_EQ(baseline.paths_completed, 12u);
  for (SearchStrategy strategy : AllStrategies()) {
    SymexResult result = RunWith(*m, strategy, 1, 3, limits);
    ExpectEquivalent(baseline, result, SearchStrategyName(strategy));
  }
}

TEST(SearcherEquivalenceTest, StrategiesAgreeOnBuggyPrograms) {
  auto m = CompileOrDie(R"(
    int umain(unsigned char *in, int n) {
      int d = in[0] - 'a';
      if (in[1] == 'q') { return in[2] / d; }   /* d == 0 when in[0] == 'a' */
      return 0;
    }
  )");
  SymexLimits limits;
  SymexResult baseline = RunWith(*m, SearchStrategy::kDfs, 1, 3, limits);
  EXPECT_TRUE(baseline.FoundBug(BugKind::kDivByZero));
  for (SearchStrategy strategy : AllStrategies()) {
    SymexResult result = RunWith(*m, strategy, 1, 3, limits);
    ExpectEquivalent(baseline, result, SearchStrategyName(strategy));
  }
}

// ---- Back-compat shim for the removed depth_first flag.

TEST(SearchStrategyShimTest, DepthFirstFalseSelectsBfsUnlessStrategySet) {
  SymexOptions options;
  EXPECT_EQ(EffectiveStrategy(options), SearchStrategy::kDfs);
  options.depth_first = false;
  EXPECT_EQ(EffectiveStrategy(options), SearchStrategy::kBfs);
  options.strategy = SearchStrategy::kRandomPath;
  EXPECT_EQ(EffectiveStrategy(options), SearchStrategy::kRandomPath);
}

// ---- Worker-count determinism.

TEST(SchedulerDeterminismTest, WorkerCountsAgreeOnForkHeavyProgram) {
  auto m = CompileOrDie(R"(
    int umain(unsigned char *in, int n) {
      int c = 0;
      for (int i = 0; i < n; i++) {
        if (in[i] == 'q') { c++; }
        if (in[i] == 'z') { c += 2; }
      }
      return c;
    }
  )");
  SymexLimits limits;
  SymexResult one = RunWith(*m, SearchStrategy::kDfs, 1, 6, limits);
  EXPECT_TRUE(one.exhausted);
  EXPECT_GE(one.paths_completed, 64u);
  for (unsigned jobs : {2u, 4u}) {
    SymexResult many = RunWith(*m, SearchStrategy::kDfs, jobs, 6, limits);
    ExpectEquivalent(one, many, "jobs=" + std::to_string(jobs));
  }
}

TEST(SchedulerDeterminismTest, WorkerCountsAgreeOnBugSets) {
  auto m = CompileOrDie(R"(
    int umain(unsigned char *in, int n) {
      unsigned char buf[4];
      int i = 0;
      for (; in[i]; i++) {
        buf[i] = in[i];            /* overflows when the input is long */
      }
      if (in[0] == 'd') { return 10 / (in[1] - 'x'); }
      __check(in[2] != '!', "bang rejected");
      return buf[0] + i;
    }
  )");
  SymexLimits limits;
  SymexResult one = RunWith(*m, SearchStrategy::kDfs, 1, 6, limits);
  EXPECT_TRUE(one.exhausted);
  EXPECT_FALSE(one.bugs.empty());
  for (unsigned jobs : {2u, 4u, 8u}) {
    SymexResult many = RunWith(*m, SearchStrategy::kDfs, jobs, 6, limits);
    ExpectEquivalent(one, many, "jobs=" + std::to_string(jobs));
  }
}

// The workload suite end-to-end: every program, 1 worker vs 4 workers.
TEST(SchedulerDeterminismTest, WorkloadSuiteIdenticalAcrossWorkerCounts) {
  SymexLimits limits;
  limits.max_paths = 60000;
  limits.max_seconds = 30;
  for (const Workload& workload : CoreutilsSuite()) {
    Compiler compiler;
    auto compiled = compiler.Compile(workload.source, OptLevel::kOverify, workload.name);
    ASSERT_TRUE(compiled.ok) << workload.name;
    SymexResult one = Analyze(compiled, "umain", 3, limits, /*jobs=*/1);
    SymexResult four = Analyze(compiled, "umain", 3, limits, /*jobs=*/4);
    if (!one.exhausted) {
      continue;  // the contract covers exhausted runs only
    }
    ExpectEquivalent(one, four, workload.name);
  }
}

// A deeper run on the heaviest benchmark workload at -O3 (thousands of
// paths), where stealing actually happens.
TEST(SchedulerDeterminismTest, WcAtO3IdenticalAcrossWorkerCountsAndStrategies) {
  const char* source = R"(
    int wc(unsigned char *str, int any) {
      int res = 0;
      int new_word = 1;
      for (unsigned char *p = str; *p; ++p) {
        if (isspace((int)*p) || (any && !isalpha((int)*p))) {
          new_word = 1;
        } else {
          if (new_word) { ++res; new_word = 0; }
        }
      }
      return res;
    }
    int umain(unsigned char *in, int n) { return wc(in, 1); }
  )";
  Compiler compiler;
  auto compiled = compiler.Compile(source, OptLevel::kO3);
  ASSERT_TRUE(compiled.ok);
  SymexLimits limits;
  limits.max_seconds = 60;
  SymexResult one = Analyze(compiled, "umain", 5, limits, /*jobs=*/1);
  ASSERT_TRUE(one.exhausted);
  EXPECT_GE(one.paths_completed, 1000u);
  SymexResult four = Analyze(compiled, "umain", 5, limits, /*jobs=*/4);
  ExpectEquivalent(one, four, "wc@O3 jobs=4");
  SymexResult coverage = Analyze(compiled, "umain", 5, limits, /*jobs=*/4,
                                 SearchStrategy::kCoverageGuided);
  ExpectEquivalent(one, coverage, "wc@O3 jobs=4 coverage");
}

// ---- Per-cause terminated accounting.

TEST(TerminationAccountingTest, CausesSumOnExhaustedRun) {
  auto m = CompileOrDie(R"(
    int umain(unsigned char *in, int n) {
      if (in[0] == 'x') { return 5 / (in[1] - in[1]); }   /* guaranteed bug path */
      return in[0];
    }
  )");
  SymexLimits limits;
  SymexResult result = SymbolicExecutor(*m).Run("umain", 2, limits);
  EXPECT_TRUE(result.exhausted);
  EXPECT_GE(result.paths_bug, 1u);
  EXPECT_EQ(result.paths_limit, 0u);
  EXPECT_EQ(result.paths_unexplored, 0u);
  EXPECT_EQ(result.paths_terminated, result.paths_infeasible + result.paths_bug +
                                         result.paths_limit + result.paths_unexplored);
}

TEST(TerminationAccountingTest, CompletingExactlyAtTheLimitIsStillExhausted) {
  auto m = CompileOrDie(R"(
    int umain(unsigned char *in, int n) {
      if (in[0] > 'm') { return 1; }
      return 0;
    }
  )");
  SymexLimits limits;
  limits.max_paths = 2;  // the program has exactly two paths
  SymexResult result = SymbolicExecutor(*m).Run("umain", 1, limits);
  EXPECT_EQ(result.paths_completed, 2u);
  EXPECT_TRUE(result.exhausted);  // everything ran to its end
  EXPECT_EQ(result.paths_limit, 0u);
  EXPECT_EQ(result.paths_unexplored, 0u);
}

TEST(TerminationAccountingTest, CausesSumOnLimitStop) {
  auto m = CompileOrDie(R"(
    int umain(unsigned char *in, int n) {
      int c = 0;
      for (int i = 0; i < n; i++) {
        if (in[i] == 'q') { c++; }
      }
      return c;
    }
  )");
  SymexLimits limits;
  limits.max_paths = 4;  // stop long before the 256 feasible paths finish
  SymexOptions options;
  options.strategy = SearchStrategy::kBfs;  // keeps plenty of states queued
  SymexResult result = SymbolicExecutor(*m, options).Run("umain", 8, limits);
  EXPECT_FALSE(result.exhausted);
  EXPECT_GE(result.paths_limit + result.paths_unexplored, 1u);
  EXPECT_EQ(result.paths_terminated, result.paths_infeasible + result.paths_bug +
                                         result.paths_limit + result.paths_unexplored);
}

// ---- Cross-context expression translation.

TEST(ExprTranslationTest, RoundTripRestoresPointerIdentity) {
  ExprContext a;
  ExprContext b;
  // A representative DAG: arithmetic over symbols, comparisons, selects,
  // extracts, shared subtrees.
  const Expr* sum = a.Binary(ExprKind::kAdd, a.ZExt(a.Symbol(0), 32),
                             a.Binary(ExprKind::kMul, a.ZExt(a.Symbol(1), 32),
                                      a.Constant(3, 32)));
  const Expr* cmp = a.Compare(ICmpPredicate::kULT, sum, a.Constant(100, 32));
  const Expr* sel = a.Select(cmp, sum, a.Binary(ExprKind::kXor, sum, a.Constant(255, 32)));
  const Expr* root = a.Extract(sel, 8, 16);

  sched::ExprTranslator a_to_b(b);
  const Expr* moved = a_to_b.Translate(root);
  // Structural hashes are context-independent, so the copy hashes equal.
  EXPECT_EQ(moved->hash(), root->hash());
  EXPECT_EQ(moved->width(), root->width());
  EXPECT_EQ(moved->Support().ToSet(), root->Support().ToSet());

  sched::ExprTranslator b_to_a(a);
  const Expr* back = b_to_a.Translate(moved);
  // Hash-consing: translating back lands on the exact original node.
  EXPECT_EQ(back, root);
}

TEST(ExprTranslationTest, TranslationPreservesSolverVerdictsAndModels) {
  ExprContext a;
  const Expr* c1 = a.Compare(ICmpPredicate::kUGT, a.Symbol(0), a.Constant(10, 8));
  const Expr* c2 = a.Compare(
      ICmpPredicate::kEq,
      a.Binary(ExprKind::kAdd, a.ZExt(a.Symbol(0), 32), a.ZExt(a.Symbol(1), 32)),
      a.Constant(300, 32));
  std::vector<uint8_t> model_a;
  SolverChain chain_a(a);
  ASSERT_EQ(chain_a.CheckSatCanonical({c1, c2}, &model_a), SatResult::kSat);

  ExprContext b;
  sched::ExprTranslator tr(b);
  std::vector<const Expr*> moved = {tr.Translate(c1), tr.Translate(c2)};
  std::vector<uint8_t> model_b;
  SolverChain chain_b(b);
  ASSERT_EQ(chain_b.CheckSatCanonical(moved, &model_b), SatResult::kSat);
  // The canonical model is a pure function of structure: bit-identical.
  EXPECT_EQ(model_a, model_b);
}

}  // namespace
}  // namespace overify
