// The scheduler subsystem: pluggable searchers, work-stealing workers, and
// the determinism contract — identical bug sets, verdicts, and path counts
// for 1..N workers on exhausted runs (docs/scheduler.md), preserved under
// batch stealing and the shared lock-striped interner.
#include <gtest/gtest.h>

#include <cstdlib>

#include "src/driver/compiler.h"
#include "src/frontend/codegen.h"
#include "src/sched/searcher.h"
#include "src/sched/translate.h"
#include "src/sched/worker_pool.h"
#include "src/symex/executor.h"
#include "src/workloads/workloads.h"

namespace overify {
namespace {

std::unique_ptr<Module> CompileOrDie(const std::string& source) {
  DiagnosticEngine diags;
  auto m = CompileMiniC(source, "sched_test", diags);
  EXPECT_NE(m, nullptr) << diags.ToString();
  return m;
}

SymexResult RunWith(Module& m, SearchStrategy strategy, unsigned jobs, unsigned bytes,
                    const SymexLimits& limits) {
  SymexOptions options;
  options.strategy = strategy;
  options.jobs = jobs;
  return SymbolicExecutor(m, options).Run("umain", bytes, limits);
}

const std::vector<SearchStrategy>& AllStrategies() {
  static const std::vector<SearchStrategy> kAll = {
      SearchStrategy::kDfs, SearchStrategy::kBfs, SearchStrategy::kRandomPath,
      SearchStrategy::kCoverageGuided};
  return kAll;
}

// The worker-count determinism properties honor OVERIFY_SCHED_STRATEGY so
// CI's multi-core job can re-prove the contract per searcher (its strategy
// matrix sets dfs / coverage-guided); unset runs the DFS default.
SearchStrategy DeterminismStrategy() {
  const char* env = std::getenv("OVERIFY_SCHED_STRATEGY");
  if (env == nullptr || *env == '\0') {
    return SearchStrategy::kDfs;
  }
  for (SearchStrategy strategy : AllStrategies()) {
    if (std::string(env) == SearchStrategyName(strategy)) {
      return strategy;
    }
  }
  ADD_FAILURE() << "unknown OVERIFY_SCHED_STRATEGY '" << env << "'";
  return SearchStrategy::kDfs;
}

// Two results must agree on everything the determinism contract covers.
void ExpectEquivalent(const SymexResult& a, const SymexResult& b, const std::string& label) {
  EXPECT_EQ(a.exhausted, b.exhausted) << label;
  EXPECT_EQ(a.paths_completed, b.paths_completed) << label;
  EXPECT_EQ(a.paths_infeasible, b.paths_infeasible) << label;
  EXPECT_EQ(a.paths_bug, b.paths_bug) << label;
  EXPECT_EQ(a.instructions, b.instructions) << label;
  EXPECT_EQ(a.forks, b.forks) << label;
  ASSERT_EQ(a.bugs.size(), b.bugs.size()) << label;
  for (size_t i = 0; i < a.bugs.size(); ++i) {
    EXPECT_EQ(a.bugs[i].kind, b.bugs[i].kind) << label << " bug " << i;
    EXPECT_EQ(a.bugs[i].site, b.bugs[i].site) << label << " bug " << i;
    EXPECT_EQ(a.bugs[i].message, b.bugs[i].message) << label << " bug " << i;
    EXPECT_EQ(a.bugs[i].example_input, b.bugs[i].example_input) << label << " bug " << i;
  }
}

// ---- Searcher equivalence: order changes, the explored path set does not.

TEST(SearcherEquivalenceTest, EveryStrategyExploresTheSamePathSet) {
  auto m = CompileOrDie(R"(
    int umain(unsigned char *in, int n) {
      int score = 0;
      if (in[0] > 'm') { score += 1; }
      if (in[1] > 'm') { score += 2; }
      if (in[2] > 'm') { score += 4; }
      if (in[0] == in[2]) { score += 8; }
      return score;
    }
  )");
  SymexLimits limits;
  SymexResult baseline = RunWith(*m, SearchStrategy::kDfs, 1, 3, limits);
  EXPECT_TRUE(baseline.exhausted);
  // 3 independent branches fork 8 ways; the equality only forks on the 4
  // combos where in[0] and in[2] sit on the same side of 'm'.
  EXPECT_EQ(baseline.paths_completed, 12u);
  for (SearchStrategy strategy : AllStrategies()) {
    SymexResult result = RunWith(*m, strategy, 1, 3, limits);
    ExpectEquivalent(baseline, result, SearchStrategyName(strategy));
  }
}

TEST(SearcherEquivalenceTest, StrategiesAgreeOnBuggyPrograms) {
  auto m = CompileOrDie(R"(
    int umain(unsigned char *in, int n) {
      int d = in[0] - 'a';
      if (in[1] == 'q') { return in[2] / d; }   /* d == 0 when in[0] == 'a' */
      return 0;
    }
  )");
  SymexLimits limits;
  SymexResult baseline = RunWith(*m, SearchStrategy::kDfs, 1, 3, limits);
  EXPECT_TRUE(baseline.FoundBug(BugKind::kDivByZero));
  for (SearchStrategy strategy : AllStrategies()) {
    SymexResult result = RunWith(*m, strategy, 1, 3, limits);
    ExpectEquivalent(baseline, result, SearchStrategyName(strategy));
  }
}

// ---- Back-compat shim for the removed depth_first flag.

TEST(SearchStrategyShimTest, DepthFirstFalseSelectsBfsUnlessStrategySet) {
  SymexOptions options;
  EXPECT_EQ(EffectiveStrategy(options), SearchStrategy::kDfs);
  options.depth_first = false;
  EXPECT_EQ(EffectiveStrategy(options), SearchStrategy::kBfs);
  options.strategy = SearchStrategy::kRandomPath;
  EXPECT_EQ(EffectiveStrategy(options), SearchStrategy::kRandomPath);
}

// ---- Worker-count determinism.

TEST(SchedulerDeterminismTest, WorkerCountsAgreeOnForkHeavyProgram) {
  auto m = CompileOrDie(R"(
    int umain(unsigned char *in, int n) {
      int c = 0;
      for (int i = 0; i < n; i++) {
        if (in[i] == 'q') { c++; }
        if (in[i] == 'z') { c += 2; }
      }
      return c;
    }
  )");
  SymexLimits limits;
  SearchStrategy strategy = DeterminismStrategy();
  SymexResult one = RunWith(*m, strategy, 1, 6, limits);
  EXPECT_TRUE(one.exhausted);
  EXPECT_GE(one.paths_completed, 64u);
  for (unsigned jobs : {2u, 4u}) {
    SymexResult many = RunWith(*m, strategy, jobs, 6, limits);
    ExpectEquivalent(one, many, "jobs=" + std::to_string(jobs));
    // Shared-interner steal path: migrated states never re-intern.
    EXPECT_EQ(many.steal_reintern, 0u);
  }
}

TEST(SchedulerDeterminismTest, WorkerCountsAgreeOnBugSets) {
  auto m = CompileOrDie(R"(
    int umain(unsigned char *in, int n) {
      unsigned char buf[4];
      int i = 0;
      for (; in[i]; i++) {
        buf[i] = in[i];            /* overflows when the input is long */
      }
      if (in[0] == 'd') { return 10 / (in[1] - 'x'); }
      __check(in[2] != '!', "bang rejected");
      return buf[0] + i;
    }
  )");
  SymexLimits limits;
  SearchStrategy strategy = DeterminismStrategy();
  SymexResult one = RunWith(*m, strategy, 1, 6, limits);
  EXPECT_TRUE(one.exhausted);
  EXPECT_FALSE(one.bugs.empty());
  for (unsigned jobs : {2u, 4u, 8u}) {
    SymexResult many = RunWith(*m, strategy, jobs, 6, limits);
    ExpectEquivalent(one, many, "jobs=" + std::to_string(jobs));
    EXPECT_EQ(many.steal_reintern, 0u);
  }
}

// The workload suite end-to-end: every program, 1 worker vs 4 workers.
TEST(SchedulerDeterminismTest, WorkloadSuiteIdenticalAcrossWorkerCounts) {
  SymexLimits limits;
  limits.max_paths = 60000;
  limits.max_seconds = 30;
  SearchStrategy strategy = DeterminismStrategy();
  for (const Workload& workload : CoreutilsSuite()) {
    Compiler compiler;
    auto compiled = compiler.Compile(workload.source, OptLevel::kOverify, workload.name);
    ASSERT_TRUE(compiled.ok) << workload.name;
    SymexResult one = Analyze(compiled, "umain", 3, limits, /*jobs=*/1, strategy);
    SymexResult four = Analyze(compiled, "umain", 3, limits, /*jobs=*/4, strategy);
    if (!one.exhausted) {
      continue;  // the contract covers exhausted runs only
    }
    if (!four.exhausted && four.stop_cause == StopCause::kDeadline) {
      // Wall-clock stops are host-speed-dependent: on a 1-core sanitizer
      // host four workers time-slice one CPU and a near-the-budget
      // workload (factor) can cross max_seconds at jobs=4 while exhausting
      // at jobs=1. A deadline stop is attributed degradation, not a
      // determinism violation (docs/robustness.md).
      continue;
    }
    ExpectEquivalent(one, four, workload.name);
  }
}

// The heaviest benchmark workload (thousands of paths at -O3), where
// stealing actually happens.
const char* WcSource() {
  return R"(
    int wc(unsigned char *str, int any) {
      int res = 0;
      int new_word = 1;
      for (unsigned char *p = str; *p; ++p) {
        if (isspace((int)*p) || (any && !isalpha((int)*p))) {
          new_word = 1;
        } else {
          if (new_word) { ++res; new_word = 0; }
        }
      }
      return res;
    }
    int umain(unsigned char *in, int n) { return wc(in, 1); }
  )";
}

// A deeper run on the wc workload at -O3, where stealing actually happens.
TEST(SchedulerDeterminismTest, WcAtO3IdenticalAcrossWorkerCountsAndStrategies) {
  Compiler compiler;
  auto compiled = compiler.Compile(WcSource(), OptLevel::kO3);
  ASSERT_TRUE(compiled.ok);
  SymexLimits limits;
  limits.max_seconds = 120;
  SymexResult one = Analyze(compiled, "umain", 5, limits, /*jobs=*/1);
  ASSERT_TRUE(one.exhausted);
  EXPECT_GE(one.paths_completed, 1000u);
  SymexResult four = Analyze(compiled, "umain", 5, limits, /*jobs=*/4);
  ExpectEquivalent(one, four, "wc@O3 jobs=4");
  SymexResult coverage = Analyze(compiled, "umain", 5, limits, /*jobs=*/4,
                                 SearchStrategy::kCoverageGuided);
  ExpectEquivalent(one, coverage, "wc@O3 jobs=4 coverage");
}

// ---- Shared-interner steal path vs the legacy re-intern path.

// Both interner configurations must satisfy the same contract, and the
// shared one must never pay the per-state re-intern pass; the legacy one
// must pay it for exactly every stolen state.
TEST(SharedInternerTest, SharedAndLegacyConfigurationsAgreeOnWcAtO3) {
  Compiler compiler;
  auto compiled = compiler.Compile(WcSource(), OptLevel::kO3);
  ASSERT_TRUE(compiled.ok);
  SymexLimits limits;
  limits.max_seconds = 120;

  SymexOptions shared;
  shared.jobs = 4;
  ASSERT_TRUE(shared.shared_interner);  // the default configuration
  SymexResult with_shared = Analyze(compiled, "umain", 5, limits, shared);
  ASSERT_TRUE(with_shared.exhausted);
  EXPECT_GE(with_shared.paths_completed, 1000u);
  EXPECT_EQ(with_shared.steal_reintern, 0u);

  SymexOptions legacy;
  legacy.jobs = 4;
  legacy.shared_interner = false;
  SymexResult with_legacy = Analyze(compiled, "umain", 5, limits, legacy);
  ExpectEquivalent(with_shared, with_legacy, "shared vs legacy interner");
  // Every legacy steal re-interns; a batch is at least one state.
  EXPECT_EQ(with_legacy.steal_reintern, with_legacy.steals);
  EXPECT_LE(with_legacy.steal_batches, with_legacy.steals);
}

// The validation-only residue of the old re-intern pass: every stolen
// state's expressions must already live in the shared interner. The walk
// asserts internally; the run doubles as a determinism check.
TEST(SharedInternerTest, ValidatedStealsMatchTheUnvalidatedRun) {
  Compiler compiler;
  auto compiled = compiler.Compile(WcSource(), OptLevel::kO3);
  ASSERT_TRUE(compiled.ok);
  SymexLimits limits;
  limits.max_seconds = 120;
  SymexOptions plain;
  plain.jobs = 4;
  SymexResult baseline = Analyze(compiled, "umain", 5, limits, plain);
  ASSERT_TRUE(baseline.exhausted);
  SymexOptions validated = plain;
  validated.validate_steals = true;
  SymexResult checked = Analyze(compiled, "umain", 5, limits, validated);
  ExpectEquivalent(baseline, checked, "validate_steals");
  EXPECT_EQ(checked.steal_reintern, 0u);
}

// ---- Pool reuse: a second Run on the same pool starts from clean search
// state (regression: the coverage searcher's visit table used to survive
// between runs, skewing the next run's order and growing without bound).

TEST(PoolReuseTest, SecondRunOnTheSamePoolMatchesTheFirst) {
  auto m = CompileOrDie(R"(
    int umain(unsigned char *in, int n) {
      int c = 0;
      for (int i = 0; i < n; i++) {
        if (in[i] == 'q') { c++; }
        if (in[i] == 'z') { c += 2; }
      }
      return c;
    }
  )");
  SymexOptions options;
  options.strategy = SearchStrategy::kCoverageGuided;
  options.jobs = 2;
  SymexLimits limits;
  sched::WorkerPool pool(*m, options);
  Function* entry = m->GetFunction("umain");
  ASSERT_NE(entry, nullptr);
  SymexResult first = pool.Run(entry, 5, limits);
  EXPECT_TRUE(first.exhausted);
  SymexResult second = pool.Run(entry, 5, limits);
  ExpectEquivalent(first, second, "pool reuse");
}

// ---- The bucketed coverage-guided searcher.

std::unique_ptr<ExecState> StateAt(BasicBlock* block, uint64_t id) {
  auto state = std::make_unique<ExecState>();
  state->id = id;
  StackFrame frame;
  frame.block = block;
  state->stack.push_back(std::move(frame));
  return state;
}

// Blocks of the compiled module, in layout order (the searcher only needs
// distinct pointers).
std::vector<BasicBlock*> BlocksOf(Module& m, const std::string& name) {
  Function* fn = m.GetFunction(name);
  EXPECT_NE(fn, nullptr);
  std::vector<BasicBlock*> blocks;
  for (BasicBlock& block : *fn) {
    blocks.push_back(&block);
  }
  return blocks;
}

std::unique_ptr<Module> TwoBlockModule() {
  return CompileOrDie(R"(
    int umain(unsigned char *in, int n) {
      if (in[0] > 'm') { return 1; }
      return 0;
    }
  )");
}

TEST(CoverageBucketedSearcherTest, NextPrefersLeastVisitedAndLazilyRebuckets) {
  auto m = TwoBlockModule();
  std::vector<BasicBlock*> blocks = BlocksOf(*m, "umain");
  ASSERT_GE(blocks.size(), 2u);
  auto searcher = sched::MakeSearcher(SearchStrategy::kCoverageGuided, 0);

  // stale: added while its block had 0 visits, then the block gains 3.
  searcher->Add(StateAt(blocks[0], /*id=*/1));
  for (int i = 0; i < 3; ++i) {
    searcher->NotifyBlockEntered(blocks[0]);
  }
  searcher->Add(StateAt(blocks[1], /*id=*/2));  // genuinely unvisited
  ASSERT_EQ(searcher->Size(), 2u);

  // The unvisited block's state comes first even though it was added last;
  // the stale state is rebucketed on the way.
  auto first = searcher->Next();
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first->id, 2u);
  auto second = searcher->Next();
  ASSERT_NE(second, nullptr);
  EXPECT_EQ(second->id, 1u);
  EXPECT_EQ(searcher->Next(), nullptr);
  EXPECT_EQ(searcher->Size(), 0u);
}

TEST(CoverageBucketedSearcherTest, StealTakesTheColdEndMostVisitedOldestFirst) {
  auto m = TwoBlockModule();
  std::vector<BasicBlock*> blocks = BlocksOf(*m, "umain");
  ASSERT_GE(blocks.size(), 2u);
  auto searcher = sched::MakeSearcher(SearchStrategy::kCoverageGuided, 0);

  for (int i = 0; i < 5; ++i) {
    searcher->NotifyBlockEntered(blocks[1]);
  }
  searcher->Add(StateAt(blocks[1], /*id=*/1));  // hot block, oldest
  searcher->Add(StateAt(blocks[1], /*id=*/2));  // hot block, newest
  searcher->Add(StateAt(blocks[0], /*id=*/3));  // unvisited: the hot end

  // Thieves drain the most-visited bucket oldest-first; the owner's hot
  // end (the unvisited block's state) is taken last.
  std::vector<std::unique_ptr<ExecState>> batch;
  searcher->StealBatch(batch, 3);
  ASSERT_EQ(batch.size(), 3u);
  EXPECT_EQ(batch[0]->id, 1u);
  EXPECT_EQ(batch[1]->id, 2u);
  EXPECT_EQ(batch[2]->id, 3u);
  EXPECT_EQ(searcher->Size(), 0u);
}

// Regression (ISSUE 4): visit counts used to accumulate for the searcher's
// whole lifetime; Reset must clear them along with the pending states.
TEST(CoverageBucketedSearcherTest, ResetClearsVisitCountsAndStates) {
  auto m = TwoBlockModule();
  std::vector<BasicBlock*> blocks = BlocksOf(*m, "umain");
  ASSERT_GE(blocks.size(), 2u);
  auto searcher = sched::MakeSearcher(SearchStrategy::kCoverageGuided, 0);

  for (int i = 0; i < 5; ++i) {
    searcher->NotifyBlockEntered(blocks[0]);
  }
  searcher->Add(StateAt(blocks[0], /*id=*/1));
  searcher->Reset();
  EXPECT_EQ(searcher->Size(), 0u);
  EXPECT_EQ(searcher->Next(), nullptr);

  // After the reset blocks[0] must rank as unvisited again: give blocks[1]
  // one (fresh) visit and blocks[0] must win. With the stale pre-reset
  // counts it would have ranked 5-vs-1 and lost.
  searcher->NotifyBlockEntered(blocks[1]);
  searcher->Add(StateAt(blocks[1], /*id=*/2));
  searcher->Add(StateAt(blocks[0], /*id=*/3));
  auto first = searcher->Next();
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first->id, 3u);
}

// ---- Batch stealing through the Searcher interface.

TEST(StealBatchTest, DefaultImplementationDrainsTheColdEndInOrder) {
  auto m = TwoBlockModule();
  std::vector<BasicBlock*> blocks = BlocksOf(*m, "umain");
  ASSERT_GE(blocks.size(), 1u);
  auto searcher = sched::MakeSearcher(SearchStrategy::kDfs, 0);
  for (uint64_t id = 1; id <= 5; ++id) {
    searcher->Add(StateAt(blocks[0], id));
  }
  std::vector<std::unique_ptr<ExecState>> batch;
  searcher->StealBatch(batch, 2);
  // DFS's cold end is the oldest state; coldest first.
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch[0]->id, 1u);
  EXPECT_EQ(batch[1]->id, 2u);
  EXPECT_EQ(searcher->Size(), 3u);
  // The hot end is untouched: Next still pops the newest.
  auto next = searcher->Next();
  ASSERT_NE(next, nullptr);
  EXPECT_EQ(next->id, 5u);
}

// ---- Per-cause terminated accounting.

TEST(TerminationAccountingTest, CausesSumOnExhaustedRun) {
  auto m = CompileOrDie(R"(
    int umain(unsigned char *in, int n) {
      if (in[0] == 'x') { return 5 / (in[1] - in[1]); }   /* guaranteed bug path */
      return in[0];
    }
  )");
  SymexLimits limits;
  SymexResult result = SymbolicExecutor(*m).Run("umain", 2, limits);
  EXPECT_TRUE(result.exhausted);
  EXPECT_GE(result.paths_bug, 1u);
  EXPECT_EQ(result.paths_limit, 0u);
  EXPECT_EQ(result.paths_unexplored, 0u);
  EXPECT_EQ(result.paths_terminated, result.paths_infeasible + result.paths_bug +
                                         result.paths_limit + result.paths_unexplored);
}

TEST(TerminationAccountingTest, CompletingExactlyAtTheLimitIsStillExhausted) {
  auto m = CompileOrDie(R"(
    int umain(unsigned char *in, int n) {
      if (in[0] > 'm') { return 1; }
      return 0;
    }
  )");
  SymexLimits limits;
  limits.max_paths = 2;  // the program has exactly two paths
  SymexResult result = SymbolicExecutor(*m).Run("umain", 1, limits);
  EXPECT_EQ(result.paths_completed, 2u);
  EXPECT_TRUE(result.exhausted);  // everything ran to its end
  EXPECT_EQ(result.paths_limit, 0u);
  EXPECT_EQ(result.paths_unexplored, 0u);
}

TEST(TerminationAccountingTest, CausesSumOnLimitStop) {
  auto m = CompileOrDie(R"(
    int umain(unsigned char *in, int n) {
      int c = 0;
      for (int i = 0; i < n; i++) {
        if (in[i] == 'q') { c++; }
      }
      return c;
    }
  )");
  SymexLimits limits;
  limits.max_paths = 4;  // stop long before the 256 feasible paths finish
  SymexOptions options;
  options.strategy = SearchStrategy::kBfs;  // keeps plenty of states queued
  SymexResult result = SymbolicExecutor(*m, options).Run("umain", 8, limits);
  EXPECT_FALSE(result.exhausted);
  EXPECT_GE(result.paths_limit + result.paths_unexplored, 1u);
  EXPECT_EQ(result.paths_terminated, result.paths_infeasible + result.paths_bug +
                                         result.paths_limit + result.paths_unexplored);
}

// ---- Cross-context expression translation.

TEST(ExprTranslationTest, RoundTripRestoresPointerIdentity) {
  ExprContext a;
  ExprContext b;
  // A representative DAG: arithmetic over symbols, comparisons, selects,
  // extracts, shared subtrees.
  const Expr* sum = a.Binary(ExprKind::kAdd, a.ZExt(a.Symbol(0), 32),
                             a.Binary(ExprKind::kMul, a.ZExt(a.Symbol(1), 32),
                                      a.Constant(3, 32)));
  const Expr* cmp = a.Compare(ICmpPredicate::kULT, sum, a.Constant(100, 32));
  const Expr* sel = a.Select(cmp, sum, a.Binary(ExprKind::kXor, sum, a.Constant(255, 32)));
  const Expr* root = a.Extract(sel, 8, 16);

  sched::ExprTranslator a_to_b(b);
  const Expr* moved = a_to_b.Translate(root);
  // Structural hashes are context-independent, so the copy hashes equal.
  EXPECT_EQ(moved->hash(), root->hash());
  EXPECT_EQ(moved->width(), root->width());
  EXPECT_EQ(moved->Support().ToSet(), root->Support().ToSet());

  sched::ExprTranslator b_to_a(a);
  const Expr* back = b_to_a.Translate(moved);
  // Hash-consing: translating back lands on the exact original node.
  EXPECT_EQ(back, root);
}

TEST(ExprTranslationTest, TranslationPreservesSolverVerdictsAndModels) {
  ExprContext a;
  const Expr* c1 = a.Compare(ICmpPredicate::kUGT, a.Symbol(0), a.Constant(10, 8));
  const Expr* c2 = a.Compare(
      ICmpPredicate::kEq,
      a.Binary(ExprKind::kAdd, a.ZExt(a.Symbol(0), 32), a.ZExt(a.Symbol(1), 32)),
      a.Constant(300, 32));
  std::vector<uint8_t> model_a;
  SolverChain chain_a(a);
  ASSERT_EQ(chain_a.CheckSatCanonical({c1, c2}, &model_a), SatResult::kSat);

  ExprContext b;
  sched::ExprTranslator tr(b);
  std::vector<const Expr*> moved = {tr.Translate(c1), tr.Translate(c2)};
  std::vector<uint8_t> model_b;
  SolverChain chain_b(b);
  ASSERT_EQ(chain_b.CheckSatCanonical(moved, &model_b), SatResult::kSat);
  // The canonical model is a pure function of structure: bit-identical.
  EXPECT_EQ(model_a, model_b);
}

// ---- Budget-limited determinism: partial results are reproducible too.
//
// The determinism contract extends to capped runs at one worker (multi-
// worker partial runs are schedule-dependent by design — see
// docs/robustness.md): same budget, same strategy, same everything ⇒
// bit-identical partial SymexResult, unknown/limit attribution included.
void ExpectIdenticalPartial(const SymexResult& a, const SymexResult& b,
                            const std::string& label) {
  ExpectEquivalent(a, b, label);
  EXPECT_EQ(a.paths_limit, b.paths_limit) << label;
  EXPECT_EQ(a.paths_unexplored, b.paths_unexplored) << label;
  EXPECT_EQ(a.paths_unknown, b.paths_unknown) << label;
  EXPECT_EQ(a.paths_unknown_budget, b.paths_unknown_budget) << label;
  EXPECT_EQ(a.paths_unknown_deadline, b.paths_unknown_deadline) << label;
  EXPECT_EQ(a.paths_unknown_injected, b.paths_unknown_injected) << label;
  EXPECT_EQ(a.stop_cause, b.stop_cause) << label;
}

TEST(BudgetDeterminismTest, PathBudgetedRunsAreBitIdentical) {
  auto m = CompileOrDie(R"(
    int umain(unsigned char *in, int n) {
      int c = 0;
      for (int i = 0; i < n; i++) {
        if (in[i] == 'q') { c++; }
        if (in[i] == 'z') { c += 2; }
      }
      return c;
    }
  )");
  for (SearchStrategy strategy :
       {SearchStrategy::kDfs, SearchStrategy::kCoverageGuided}) {
    SymexLimits limits;
    limits.max_paths = 10;
    SymexResult first = RunWith(*m, strategy, 1, 6, limits);
    std::string label = std::string("max_paths=10 ") + SearchStrategyName(strategy);
    EXPECT_FALSE(first.exhausted) << label;
    EXPECT_EQ(first.stop_cause, StopCause::kPaths) << label;
    EXPECT_GT(first.paths_unexplored + first.paths_limit, 0u) << label;
    SymexResult second = RunWith(*m, strategy, 1, 6, limits);
    ExpectIdenticalPartial(first, second, label);
  }
}

TEST(BudgetDeterminismTest, ForkBudgetedRunsAreBitIdentical) {
  auto m = CompileOrDie(R"(
    int umain(unsigned char *in, int n) {
      int depth = 0;
      for (int i = 0; i < n; i++) {
        if (in[i] > 'm') { depth++; } else { depth--; }
      }
      return depth;
    }
  )");
  for (SearchStrategy strategy :
       {SearchStrategy::kDfs, SearchStrategy::kCoverageGuided}) {
    SymexLimits limits;
    limits.max_forks = 7;
    SymexResult first = RunWith(*m, strategy, 1, 6, limits);
    std::string label = std::string("max_forks=7 ") + SearchStrategyName(strategy);
    EXPECT_FALSE(first.exhausted) << label;
    SymexResult second = RunWith(*m, strategy, 1, 6, limits);
    ExpectIdenticalPartial(first, second, label);
  }
}

}  // namespace
}  // namespace overify
