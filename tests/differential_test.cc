// The differential verification harness (src/testing/diff_harness.h) and
// the cross-configuration contract it enforces: a canonical RunSignature
// that is bit-identical across every scheduler/solver cell of a level and
// semantically identical across optimization levels.
//
// Test tiers (wired to ctest LABELS in CMakeLists.txt):
//  - the default tests run a reduced sweep on tier-1 (every CI job, flat
//    wall time);
//  - everything matching *Slow* runs the full lattice over the whole
//    expanded Coreutils suite — including the >= 32-symbolic-byte
//    workloads — in the separate `slow` CI job.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "src/testing/diff_harness.h"
#include "src/workloads/textgen.h"
#include "src/workloads/workloads.h"

namespace overify {
namespace {

using difftest::DiffOptions;
using difftest::DiffReport;
using difftest::FullLattice;
using difftest::LatticeCell;
using difftest::RunDifferential;
using difftest::RunSignature;
using difftest::SemanticOf;

// ---- Harness unit behaviour.

TEST(LatticeTest, FullLatticeSpansEveryAxisCombination) {
  DiffOptions options;
  auto cells = FullLattice(options);
  // 3 levels x 2 worker counts x 2 interners x 2 preprocess x 2 learning
  // x 2 strategies.
  EXPECT_EQ(cells.size(), 96u);
  // Cell names are unique (they key diffs and logs).
  std::vector<std::string> names;
  for (const LatticeCell& cell : cells) {
    names.push_back(cell.Name());
  }
  std::sort(names.begin(), names.end());
  EXPECT_EQ(std::unique(names.begin(), names.end()), names.end());
  EXPECT_EQ(cells.front().Name(), "-O0/j1/shared/prep/learn/dfs");
}

TEST(LatticeTest, CellOptionsCarryEveryAxis) {
  LatticeCell cell;
  cell.jobs = 4;
  cell.shared_interner = false;
  cell.solver_preprocess = false;
  cell.solver_learning = false;
  cell.strategy = SearchStrategy::kCoverageGuided;
  cell.slice_checks = true;
  SymexOptions options = cell.ToOptions();
  EXPECT_EQ(options.jobs, 4u);
  EXPECT_FALSE(options.shared_interner);
  EXPECT_FALSE(options.solver_preprocess);
  EXPECT_FALSE(options.solver_learning);
  EXPECT_EQ(options.strategy, SearchStrategy::kCoverageGuided);
  EXPECT_TRUE(options.slice_checks);
  EXPECT_NE(cell.Name().find("/slice"), std::string::npos);
}

TEST(LatticeTest, SlicingAxisDoublesTheLattice) {
  DiffOptions options;
  options.slicing = {false, true};
  auto cells = FullLattice(options);
  EXPECT_EQ(cells.size(), 192u);
  size_t sliced = 0;
  for (const LatticeCell& cell : cells) {
    if (cell.slice_checks) {
      ++sliced;
      EXPECT_NE(cell.Name().find("/slice"), std::string::npos);
    }
  }
  EXPECT_EQ(sliced, 96u);
}

TEST(SignatureTest, SemanticSignatureDedupsKindsAndKeepsConfirmation) {
  RunSignature signature;
  signature.exhausted = true;
  difftest::BugSignature a;
  a.kind = BugKind::kDivByZero;
  a.message = "site 1";
  a.confirmed = true;
  difftest::BugSignature b = a;
  b.message = "site 2";  // same kind, distinct report
  difftest::BugSignature c;
  c.kind = BugKind::kOutOfBounds;
  c.confirmed = false;
  signature.bugs = {a, b, c};
  auto semantic = SemanticOf(signature);
  ASSERT_EQ(semantic.bug_kinds.size(), 2u);
  EXPECT_EQ(semantic.bug_kinds[0].first, BugKind::kDivByZero);
  EXPECT_TRUE(semantic.bug_kinds[0].second);
  EXPECT_EQ(semantic.bug_kinds[1].first, BugKind::kOutOfBounds);
  EXPECT_FALSE(semantic.bug_kinds[1].second);
}

// ---- Differential runs on hand-written programs.

// A clean program agrees everywhere: empty bug set, identical counts per
// level, consistent semantics across levels.
TEST(DifferentialTest, CleanProgramPassesTheFullLattice) {
  DiffOptions options;
  options.limits.max_seconds = 60;
  DiffReport report = RunDifferential("clean", R"(
    int umain(unsigned char *in, int n) {
      int vowels = 0;
      for (long i = 0; in[i]; i++) {
        int c = tolower(in[i]);
        if (c == 'a' || c == 'e' || c == 'i' || c == 'o' || c == 'u') { vowels++; }
      }
      return vowels;
    }
  )",
                                      4, options);
  EXPECT_TRUE(report.ok) << report.diff;
  EXPECT_EQ(report.cells.size(), 96u);
  for (const auto& cell : report.cells) {
    EXPECT_TRUE(cell.signature.exhausted) << cell.cell.Name();
    EXPECT_TRUE(cell.signature.bugs.empty()) << cell.cell.Name();
  }
}

// A buggy program still agrees: the bug is found in every cell, with a
// confirmed (interpreter-replayed) model.
TEST(DifferentialTest, BuggyProgramAgreesWithConfirmedModels) {
  DiffOptions options;
  options.limits.max_seconds = 60;
  DiffReport report = RunDifferential("div_bug", R"(
    int umain(unsigned char *in, int n) {
      int d = in[0] - 'a';
      if (in[1] == 'q') { return in[2] / d; }   /* d == 0 when in[0] == 'a' */
      return 0;
    }
  )",
                                      3, options);
  EXPECT_TRUE(report.ok) << report.diff;
  for (const auto& cell : report.cells) {
    ASSERT_FALSE(cell.signature.bugs.empty()) << cell.cell.Name();
    bool found = false;
    for (const auto& bug : cell.signature.bugs) {
      if (bug.kind == BugKind::kDivByZero) {
        found = true;
        EXPECT_TRUE(bug.confirmed) << cell.cell.Name() << ": model did not replay to a trap";
      }
    }
    EXPECT_TRUE(found) << cell.cell.Name();
  }
}

// Slice mode finds the same confirmed bugs as whole-program mode, per
// level, through the harness's semantic comparison: each check's backward
// cone keeps the trap condition exact (docs/slicing.md).
TEST(DifferentialTest, SliceModeAgreesOnABuggyProgram) {
  DiffOptions options;
  options.jobs = {1};
  options.interners = {true};
  options.preprocess = {true};
  options.learning = {true};
  options.strategies = {SearchStrategy::kDfs};
  options.slicing = {false, true};
  options.limits.max_seconds = 60;
  DiffReport report = RunDifferential("div_bug_sliced", R"(
    int umain(unsigned char *in, int n) {
      int d = in[0] - 'a';
      if (in[1] == 'q') { return in[2] / d; }   /* d == 0 when in[0] == 'a' */
      return 0;
    }
  )",
                                      3, options);
  EXPECT_TRUE(report.ok) << report.diff;
  for (const auto& cell : report.cells) {
    bool found = false;
    for (const auto& bug : cell.signature.bugs) {
      if (bug.kind == BugKind::kDivByZero) {
        found = true;
        EXPECT_TRUE(bug.confirmed) << cell.cell.Name();
      }
    }
    EXPECT_TRUE(found) << cell.cell.Name();
  }
}

// Capped cells are reported (and fail the report) when exhaustion is
// required: an infinite path-space program cannot exhaust.
TEST(DifferentialTest, CappedCellsFailWhenExhaustionIsRequired) {
  DiffOptions options;
  options.levels = {OptLevel::kO0};
  options.jobs = {1};
  options.interners = {true};
  options.preprocess = {true};
  options.strategies = {SearchStrategy::kBfs};
  options.limits.max_paths = 4;  // stops the 256-way fan-out immediately
  DiffReport report = RunDifferential("capped", R"(
    int umain(unsigned char *in, int n) {
      int c = 0;
      for (long i = 0; i < n; i++) {
        if (in[i] == 'q') { c++; }
      }
      return c;
    }
  )",
                                      8, options);
  EXPECT_FALSE(report.ok);
  EXPECT_NE(report.diff.find("did not exhaust"), std::string::npos) << report.diff;
}

// ---- Tier-1 sweep: representative workloads, full lattice, small inputs.

class WorkloadDifferentialTest : public ::testing::TestWithParam<const char*> {};

TEST_P(WorkloadDifferentialTest, LatticeAgreesAtFourBytes) {
  const Workload* workload = FindWorkload(GetParam());
  ASSERT_NE(workload, nullptr) << GetParam();
  DiffOptions options;
  options.limits.max_seconds = 120;
  DiffReport report = RunDifferential(*workload, /*sym_bytes=*/4, options);
  EXPECT_TRUE(report.ok) << report.diff;
}

// The slicing axis (docs/slicing.md) on a reduced scheduler lattice: every
// tier-1 workload must produce the same semantic verdict — identical sorted
// distinct (kind, confirmed) bug sets — whether the engine verifies the
// whole program or one slice per check, at every optimization level.
TEST_P(WorkloadDifferentialTest, SliceModeAgreesWithWholeProgram) {
  const Workload* workload = FindWorkload(GetParam());
  ASSERT_NE(workload, nullptr) << GetParam();
  DiffOptions options;
  options.jobs = {1, 4};
  options.interners = {true};
  options.preprocess = {true};
  options.learning = {true};
  options.strategies = {SearchStrategy::kDfs};
  options.slicing = {false, true};
  options.limits.max_seconds = 120;
  DiffReport report = RunDifferential(*workload, /*sym_bytes=*/4, options);
  EXPECT_TRUE(report.ok) << report.diff;
  // 3 levels x 2 worker counts x 2 slice modes all ran.
  EXPECT_EQ(report.cells.size(), 12u);
}

// The sample covers the suite's idiom classes while keeping tier-1 wall
// time flat: the paper's flagship (wc), runtime-flag unswitching
// (count_mode), both two-buffer entries (cmp_bufs, comm_bufs), libc string
// scanning (cut_f), filter state machines (tr_squeeze, fold_sp,
// expand_stops), and the fork-free wide-support block (sum_block). The
// solver-heavy parsers (seq_range, uniq_count) run in the slow-tier sweep
// with the rest of the suite.
INSTANTIATE_TEST_SUITE_P(Tier1, WorkloadDifferentialTest,
                         ::testing::Values("wc_any", "count_mode", "cmp_bufs", "comm_bufs",
                                           "cut_f", "tr_squeeze", "fold_sp", "expand_stops",
                                           "sum_block"),
                         [](const ::testing::TestParamInfo<const char*>& info) {
                           return std::string(info.param);
                         });

// ---- Tier-1 fuzz: randomized kernels through a reduced lattice.

class FuzzDifferentialTest : public ::testing::TestWithParam<int> {};

TEST_P(FuzzDifferentialTest, GeneratedKernelAgreesAcrossTheLattice) {
  KernelGenOptions gen;
  gen.seed = static_cast<uint64_t>(GetParam());
  std::string source = GenerateMiniCKernel(gen);
  SCOPED_TRACE(source);
  // Generation is deterministic...
  EXPECT_EQ(GenerateMiniCKernel(gen), source);
  // ...and the kernel is total: clean differential signature everywhere.
  DiffOptions options;
  options.limits.max_seconds = 120;
  DiffReport report =
      RunDifferential("fuzz_" + std::to_string(GetParam()), source, /*sym_bytes=*/3, options);
  EXPECT_TRUE(report.ok) << report.diff;
  for (const auto& cell : report.cells) {
    EXPECT_TRUE(cell.signature.bugs.empty())
        << cell.cell.Name() << ": generated kernels must be trap-free\n" << source;
  }
}

// Seeds chosen for flat wall time; the slow tier runs a wider seed range.
INSTANTIATE_TEST_SUITE_P(Tier1, FuzzDifferentialTest, ::testing::Range(1, 6));

// ---- Slow tier: the whole expanded suite through the full lattice at each
// workload's default symbolic width (cksum_wide runs all 72 bytes here,
// exercising the SupportSet overflow vector and batch stealing at scale).
// CMakeLists maps *Slow* to the `slow` ctest label; the tier-1 jobs exclude
// it and the dedicated lattice CI job runs it with a long --timeout.

class SlowSuiteDifferentialTest : public ::testing::TestWithParam<Workload> {};

TEST_P(SlowSuiteDifferentialTest, FullLatticeAtDefaultWidth) {
  const Workload& workload = GetParam();
  DiffOptions options;
  options.limits.max_paths = 400000;
  options.limits.max_seconds = 120;  // per cell; every suite program exhausts well under
  DiffReport report = RunDifferential(workload, /*sym_bytes=*/0, options);
  EXPECT_TRUE(report.ok) << report.diff;
  for (const auto& cell : report.cells) {
    EXPECT_TRUE(cell.signature.exhausted) << cell.cell.Name();
  }
}

INSTANTIATE_TEST_SUITE_P(Lattice, SlowSuiteDifferentialTest,
                         ::testing::ValuesIn(CoreutilsSuite()),
                         [](const ::testing::TestParamInfo<Workload>& info) {
                           return info.param.name;
                         });

// Slow-tier slicing sweep: the whole suite at default widths through the
// slice-vs-whole axis crossed with both worker counts and both search
// strategies (the scheduler axes most likely to perturb per-slice runs).
class SlowSlicingDifferentialTest : public ::testing::TestWithParam<Workload> {};

TEST_P(SlowSlicingDifferentialTest, SliceModeAgreesAtDefaultWidth) {
  const Workload& workload = GetParam();
  DiffOptions options;
  options.interners = {true};
  options.preprocess = {true};
  options.learning = {true};
  options.slicing = {false, true};
  options.limits.max_paths = 400000;
  options.limits.max_seconds = 120;
  DiffReport report = RunDifferential(workload, /*sym_bytes=*/0, options);
  EXPECT_TRUE(report.ok) << report.diff;
}

INSTANTIATE_TEST_SUITE_P(Lattice, SlowSlicingDifferentialTest,
                         ::testing::ValuesIn(CoreutilsSuite()),
                         [](const ::testing::TestParamInfo<Workload>& info) {
                           return info.param.name;
                         });

// More fuzz depth for the slow tier: fresh seeds, 4 symbolic bytes.
class SlowFuzzDifferentialTest : public ::testing::TestWithParam<int> {};

TEST_P(SlowFuzzDifferentialTest, GeneratedKernelAgreesAcrossTheLattice) {
  KernelGenOptions gen;
  gen.seed = 1000 + static_cast<uint64_t>(GetParam());
  std::string source = GenerateMiniCKernel(gen);
  SCOPED_TRACE(source);
  DiffOptions options;
  options.limits.max_seconds = 120;
  DiffReport report = RunDifferential("slow_fuzz_" + std::to_string(GetParam()), source,
                                      /*sym_bytes=*/4, options);
  EXPECT_TRUE(report.ok) << report.diff;
}

INSTANTIATE_TEST_SUITE_P(Lattice, SlowFuzzDifferentialTest, ::testing::Range(0, 16));

}  // namespace
}  // namespace overify
