// Tests for the MiniC lexer, parser and code generator.
#include <gtest/gtest.h>

#include "src/frontend/codegen.h"
#include "src/frontend/lexer.h"
#include "src/ir/printer.h"
#include "src/ir/verifier.h"

namespace overify {
namespace {

std::unique_ptr<Module> CompileOrDie(const std::string& source) {
  DiagnosticEngine diags;
  auto m = CompileMiniC(source, "test", diags);
  EXPECT_NE(m, nullptr) << diags.ToString();
  if (m != nullptr) {
    auto errors = VerifyModule(*m);
    EXPECT_TRUE(errors.empty()) << (errors.empty() ? "" : errors[0]) << "\n" << PrintModule(*m);
  }
  return m;
}

bool CompileFails(const std::string& source, const std::string& expected_fragment = "") {
  DiagnosticEngine diags;
  auto m = CompileMiniC(source, "test", diags);
  if (m != nullptr) {
    return false;
  }
  if (!expected_fragment.empty()) {
    return diags.ToString().find(expected_fragment) != std::string::npos;
  }
  return diags.HasErrors();
}

size_t CountOpcode(Function& fn, Opcode opcode) {
  size_t count = 0;
  for (BasicBlock& block : fn) {
    for (auto& inst : block) {
      if (inst->opcode() == opcode) {
        ++count;
      }
    }
  }
  return count;
}

TEST(CLexerTest, TokenizesOperatorsAndLiterals) {
  DiagnosticEngine diags;
  CLexer lexer("x += 0x1F; // comment\n'a' \"hi\\n\" <<= >= &&", diags);
  auto tokens = lexer.Tokenize();
  ASSERT_FALSE(diags.HasErrors());
  ASSERT_GE(tokens.size(), 9u);
  EXPECT_EQ(tokens[0].kind, TokKind::kIdent);
  EXPECT_EQ(tokens[1].kind, TokKind::kPlusAssign);
  EXPECT_EQ(tokens[2].kind, TokKind::kIntLit);
  EXPECT_EQ(tokens[2].int_value, 0x1F);
  EXPECT_EQ(tokens[3].kind, TokKind::kSemi);
  EXPECT_EQ(tokens[4].kind, TokKind::kIntLit);
  EXPECT_EQ(tokens[4].int_value, 'a');
  EXPECT_EQ(tokens[5].kind, TokKind::kStringLit);
  EXPECT_EQ(tokens[5].text, "hi\n");
  EXPECT_EQ(tokens[6].kind, TokKind::kShlAssign);
  EXPECT_EQ(tokens[7].kind, TokKind::kGe);
  EXPECT_EQ(tokens[8].kind, TokKind::kAmpAmp);
}

TEST(CLexerTest, SkipsBothCommentStyles) {
  DiagnosticEngine diags;
  CLexer lexer("a /* multi\nline */ b // eol\nc", diags);
  auto tokens = lexer.Tokenize();
  ASSERT_EQ(tokens.size(), 4u);  // a b c eof
  EXPECT_EQ(tokens[2].text, "c");
  EXPECT_EQ(tokens[2].loc.line, 3u);
}

TEST(CodegenTest, SimpleFunction) {
  auto m = CompileOrDie("int add(int a, int b) { return a + b; }");
  Function* f = m->GetFunction("add");
  ASSERT_NE(f, nullptr);
  // O0 naivety: parameters spilled to allocas.
  EXPECT_EQ(CountOpcode(*f, Opcode::kAlloca), 2u);
  EXPECT_EQ(CountOpcode(*f, Opcode::kAdd), 1u);
}

TEST(CodegenTest, ControlFlowConstructs) {
  auto m = CompileOrDie(R"(
    int classify(int x) {
      int result = 0;
      if (x > 100) { result = 3; }
      else if (x > 10) { result = 2; }
      else { result = 1; }
      while (x > 0) { x = x - 1; }
      do { result = result + 1; } while (result < 0);
      for (int i = 0; i < 4; i++) { result += i; }
      return result;
    }
  )");
  Function* f = m->GetFunction("classify");
  ASSERT_NE(f, nullptr);
  EXPECT_GE(f->NumBlocks(), 10u);
}

TEST(CodegenTest, BreakAndContinue) {
  auto m = CompileOrDie(R"(
    int f(int n) {
      int sum = 0;
      for (int i = 0; i < n; i++) {
        if (i == 3) { continue; }
        if (i == 7) { break; }
        sum += i;
      }
      return sum;
    }
  )");
  EXPECT_NE(m->GetFunction("f"), nullptr);
}

TEST(CodegenTest, ShortCircuitProducesBranches) {
  auto m = CompileOrDie(R"(
    int f(int a, int b) { return a && (b || a > 3); }
  )");
  Function* f = m->GetFunction("f");
  // Two short-circuit operators: at least two conditional branches at -O0.
  size_t cond_branches = 0;
  for (BasicBlock& bb : *f) {
    if (auto* br = DynCast<BranchInst>(bb.Terminator())) {
      cond_branches += br->IsConditional() ? 1 : 0;
    }
  }
  EXPECT_GE(cond_branches, 2u);
  EXPECT_GE(CountOpcode(*f, Opcode::kPhi), 2u);
}

TEST(CodegenTest, PointerOperations) {
  auto m = CompileOrDie(R"(
    int first_zero(unsigned char *p) {
      int n = 0;
      while (*p) { p++; n++; }
      return n;
    }
  )");
  Function* f = m->GetFunction("first_zero");
  EXPECT_GE(CountOpcode(*f, Opcode::kGep), 1u);
  EXPECT_GE(CountOpcode(*f, Opcode::kLoad), 2u);
}

TEST(CodegenTest, ArraysAndIndexing) {
  auto m = CompileOrDie(R"(
    int sum3(void) {
      int a[3] = {1, 2, 3};
      int s = 0;
      for (int i = 0; i < 3; i++) { s += a[i]; }
      return s;
    }
  )");
  Function* f = m->GetFunction("sum3");
  EXPECT_GE(CountOpcode(*f, Opcode::kGep), 4u);  // 3 init stores + loop access
}

TEST(CodegenTest, GlobalsAndStrings) {
  auto m = CompileOrDie(R"(
    int counter = 42;
    const char msg[6] = "hello";
    unsigned char table[4] = {1, 2, 4, 8};
    int get(void) { return counter; }
    char first(void) { return msg[0]; }
  )");
  GlobalVariable* counter = m->GetGlobal("counter");
  ASSERT_NE(counter, nullptr);
  EXPECT_EQ(counter->initializer()[0], 42);
  GlobalVariable* msg = m->GetGlobal("msg");
  ASSERT_NE(msg, nullptr);
  EXPECT_TRUE(msg->is_const());
  EXPECT_EQ(msg->initializer().size(), 6u);
  GlobalVariable* table = m->GetGlobal("table");
  ASSERT_NE(table, nullptr);
  EXPECT_EQ(table->initializer()[2], 4);
}

TEST(CodegenTest, StringLiteralInterning) {
  auto m = CompileOrDie(R"(
    int f(void);
    char g(void) { return *"abc"; }
    char h(void) { return *"abc"; }
    int f(void) { return 0; }
  )");
  // Same literal -> one global.
  size_t str_globals = 0;
  for (const auto& g : m->globals()) {
    if (g->name().rfind(".str", 0) == 0) {
      ++str_globals;
    }
  }
  EXPECT_EQ(str_globals, 1u);
}

TEST(CodegenTest, SignednessDrivesOperators) {
  auto m = CompileOrDie(R"(
    int sdiv(int a, int b) { return a / b; }
    unsigned udivf(unsigned a, unsigned b) { return a / b; }
    int scmp(int a, int b) { return a < b; }
    unsigned ucmp(unsigned a, unsigned b) { return a < b; }
    int sshr(int a) { return a >> 2; }
    unsigned ushr(unsigned a) { return a >> 2; }
  )");
  EXPECT_EQ(CountOpcode(*m->GetFunction("sdiv"), Opcode::kSDiv), 1u);
  EXPECT_EQ(CountOpcode(*m->GetFunction("udivf"), Opcode::kUDiv), 1u);
  EXPECT_EQ(CountOpcode(*m->GetFunction("sshr"), Opcode::kAShr), 1u);
  EXPECT_EQ(CountOpcode(*m->GetFunction("ushr"), Opcode::kLShr), 1u);

  auto pred_of = [](Function* f) {
    for (BasicBlock& bb : *f) {
      for (auto& inst : bb) {
        if (auto* cmp = DynCast<ICmpInst>(inst.get())) {
          return cmp->predicate();
        }
      }
    }
    return ICmpPredicate::kEq;
  };
  EXPECT_EQ(pred_of(m->GetFunction("scmp")), ICmpPredicate::kSLT);
  EXPECT_EQ(pred_of(m->GetFunction("ucmp")), ICmpPredicate::kULT);
}

TEST(CodegenTest, IntegerPromotionsAndCasts) {
  auto m = CompileOrDie(R"(
    int f(char c, unsigned char u) {
      int a = c + 1;        // sext to i32
      int b = u + 1;        // zext to i32
      long big = a;         // sext to i64
      return (int)big + b;  // trunc back
    }
  )");
  Function* f = m->GetFunction("f");
  EXPECT_GE(CountOpcode(*f, Opcode::kSExt), 2u);
  EXPECT_GE(CountOpcode(*f, Opcode::kZExt), 1u);
  EXPECT_GE(CountOpcode(*f, Opcode::kTrunc), 1u);
}

TEST(CodegenTest, ConditionalExpression) {
  auto m = CompileOrDie("int mx(int a, int b) { return a > b ? a : b; }");
  Function* f = m->GetFunction("mx");
  EXPECT_EQ(CountOpcode(*f, Opcode::kPhi), 1u);
}

TEST(CodegenTest, IncDecSemantics) {
  auto m = CompileOrDie(R"(
    int f(void) {
      int i = 5;
      int a = i++;   // a = 5, i = 6
      int b = ++i;   // b = 7, i = 7
      int c = i--;   // c = 7
      int d = --i;   // d = 5
      return a + b + c + d;
    }
  )");
  EXPECT_NE(m->GetFunction("f"), nullptr);
}

TEST(CodegenTest, CheckBuiltinEmitsCheckInst) {
  auto m = CompileOrDie(R"(
    int f(int x) {
      __check(x != 0, "x must be nonzero");
      return 10 / x;
    }
  )");
  Function* f = m->GetFunction("f");
  EXPECT_EQ(CountOpcode(*f, Opcode::kCheck), 1u);
}

TEST(CodegenTest, SizeofIsConstant) {
  auto m = CompileOrDie(R"(
    long f(void) { return sizeof(int) + sizeof(char*) + sizeof(long); }
  )");
  EXPECT_NE(m->GetFunction("f"), nullptr);
}

TEST(CodegenTest, MultipleSourcesShareSymbols) {
  DiagnosticEngine diags;
  std::vector<MiniCSource> sources = {
      {"int helper(int x) { return x * 2; }", true},
      {"int user(int y) { return helper(y) + 1; }", false},
  };
  auto m = CompileMiniC(sources, "multi", diags);
  ASSERT_NE(m, nullptr) << diags.ToString();
  EXPECT_TRUE(VerifyModule(*m).empty());
  EXPECT_TRUE(m->GetFunction("helper")->is_libc());
  EXPECT_FALSE(m->GetFunction("user")->is_libc());
}

TEST(CodegenTest, PrototypeThenDefinition) {
  auto m = CompileOrDie(R"(
    int fib(int n);
    int caller(int x) { return fib(x); }
    int fib(int n) { return n < 2 ? n : fib(n - 1) + fib(n - 2); }
  )");
  EXPECT_FALSE(m->GetFunction("fib")->IsDeclaration());
}

TEST(CodegenTest, PutcharAutoDeclared) {
  auto m = CompileOrDie(R"(
    void emit(int c) { putchar(c); }
  )");
  Function* putchar_fn = m->GetFunction("putchar");
  ASSERT_NE(putchar_fn, nullptr);
  EXPECT_TRUE(putchar_fn->IsDeclaration());
}

TEST(CodegenErrorTest, UndeclaredIdentifier) {
  EXPECT_TRUE(CompileFails("int f(void) { return nope; }", "undeclared identifier"));
}

TEST(CodegenErrorTest, UndeclaredFunction) {
  EXPECT_TRUE(CompileFails("int f(void) { return g(); }", "undeclared function"));
}

TEST(CodegenErrorTest, WrongArgumentCount) {
  EXPECT_TRUE(CompileFails(R"(
    int g(int a, int b) { return a + b; }
    int f(void) { return g(1); }
  )",
                           "wrong number of arguments"));
}

TEST(CodegenErrorTest, Redefinition) {
  EXPECT_TRUE(CompileFails(R"(
    int f(void) { return 1; }
    int f(void) { return 2; }
  )",
                           "redefinition"));
}

TEST(CodegenErrorTest, ConflictingDeclaration) {
  EXPECT_TRUE(CompileFails(R"(
    int f(int a);
    char f(int a) { return 0; }
  )",
                           "conflicting declaration"));
}

TEST(CodegenErrorTest, BreakOutsideLoop) {
  EXPECT_TRUE(CompileFails("int f(void) { break; return 0; }", "outside a loop"));
}

TEST(CodegenErrorTest, AssignToNonLvalue) {
  EXPECT_TRUE(CompileFails("int f(int a) { (a + 1) = 2; return a; }", "not assignable"));
}

TEST(CodegenErrorTest, VoidReturnWithValue) {
  EXPECT_TRUE(CompileFails("void f(void) { return 3; }", "void function"));
}

TEST(CodegenErrorTest, PointerDifferenceRejected) {
  EXPECT_TRUE(CompileFails(R"(
    long f(char* a, char* b) { return a - b; }
  )",
                           "pointer difference"));
}

TEST(CodegenTest, WcFromThePaperCompiles) {
  // Listing 1, verbatim modulo isspace/isalpha being provided here.
  auto m = CompileOrDie(R"(
    int isspace(int c) {
      return c == ' ' || c == '\t' || c == '\n' || c == '\v' || c == '\f' || c == '\r';
    }
    int isalpha(int c) {
      return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z');
    }
    int wc(unsigned char *str, int any) {
      int res = 0;
      int new_word = 1;
      for (unsigned char *p = str; *p; ++p) {
        if (isspace(*p) || (any && !isalpha(*p))) {
          new_word = 1;
        } else {
          if (new_word) {
            ++res;
            new_word = 0;
          }
        }
      }
      return res;
    }
  )");
  Function* wc = m->GetFunction("wc");
  ASSERT_NE(wc, nullptr);
  EXPECT_GE(wc->NumBlocks(), 8u);
}

}  // namespace
}  // namespace overify
