// Tests for pipeline construction, the pass manager, and global DCE.
#include <gtest/gtest.h>

#include "src/ir/parser.h"
#include "src/passes/global_dce.h"
#include "src/passes/pipeline.h"

namespace overify {
namespace {

std::vector<std::string> PassNames(const PipelineOptions& options) {
  PassManager pm(/*verify_after_each=*/false);
  ProgramAnnotations annotations;
  BuildPipeline(pm, options, &annotations);
  // Run on an empty module to collect timings (and thus names).
  Module m("empty");
  pm.Run(m);
  std::vector<std::string> names;
  for (const auto& timing : pm.timings()) {
    names.push_back(timing.pass_name);
  }
  return names;
}

bool Contains(const std::vector<std::string>& names, const std::string& name) {
  for (const auto& n : names) {
    if (n == name) {
      return true;
    }
  }
  return false;
}

TEST(PipelineTest, O0IsEmpty) {
  EXPECT_TRUE(PassNames(PipelineOptions::For(OptLevel::kO0)).empty());
}

TEST(PipelineTest, O1IsScalarOnly) {
  auto names = PassNames(PipelineOptions::For(OptLevel::kO1));
  EXPECT_TRUE(Contains(names, "mem2reg"));
  EXPECT_TRUE(Contains(names, "instcombine"));
  EXPECT_FALSE(Contains(names, "inline"));
  EXPECT_FALSE(Contains(names, "unswitch"));
  EXPECT_FALSE(Contains(names, "ifconvert"));
}

TEST(PipelineTest, O2AddsInliningButNotRestructuring) {
  auto names = PassNames(PipelineOptions::For(OptLevel::kO2));
  EXPECT_TRUE(Contains(names, "inline"));
  EXPECT_TRUE(Contains(names, "cse"));
  EXPECT_TRUE(Contains(names, "licm"));
  // Table 1's premise: -O2 must not change path structure.
  EXPECT_FALSE(Contains(names, "unswitch"));
  EXPECT_FALSE(Contains(names, "unroll"));
  EXPECT_FALSE(Contains(names, "ifconvert"));
  EXPECT_FALSE(Contains(names, "jumpthread"));
}

TEST(PipelineTest, O3AddsRestructuring) {
  auto names = PassNames(PipelineOptions::For(OptLevel::kO3));
  EXPECT_TRUE(Contains(names, "unswitch"));
  EXPECT_TRUE(Contains(names, "unroll"));
  EXPECT_TRUE(Contains(names, "ifconvert"));
  EXPECT_TRUE(Contains(names, "jumpthread"));
  EXPECT_FALSE(Contains(names, "checks"));
  EXPECT_FALSE(Contains(names, "annotate"));
}

TEST(PipelineTest, OverifyAddsVerificationExtras) {
  auto names = PassNames(PipelineOptions::For(OptLevel::kOverify));
  EXPECT_TRUE(Contains(names, "checks"));
  EXPECT_TRUE(Contains(names, "annotate"));
  EXPECT_TRUE(Contains(names, "ifconvert"));
  // If-conversion must precede jump threading (see pipeline.cc).
  size_t ifconvert_pos = 0;
  size_t jumpthread_pos = 0;
  for (size_t i = 0; i < names.size(); ++i) {
    if (names[i] == "ifconvert" && ifconvert_pos == 0) {
      ifconvert_pos = i;
    }
    if (names[i] == "jumpthread") {
      jumpthread_pos = i;
    }
  }
  EXPECT_LT(ifconvert_pos, jumpthread_pos);
}

TEST(PipelineTest, LevelOptionsEncodeThePapersFourDifferences) {
  PipelineOptions o3 = PipelineOptions::For(OptLevel::kO3);
  PipelineOptions ov = PipelineOptions::For(OptLevel::kOverify);
  // (1) pass selection
  EXPECT_FALSE(o3.runtime_checks);
  EXPECT_TRUE(ov.runtime_checks);
  // (2) cost values
  EXPECT_GT(ov.if_converter.branch_cost, 1000);
  EXPECT_LT(o3.if_converter.branch_cost, 10);
  EXPECT_GT(ov.inliner.callee_size_threshold, o3.inliner.callee_size_threshold);
  EXPECT_GT(ov.unroller.max_trip_count, o3.unroller.max_trip_count);
  // (3) metadata
  EXPECT_TRUE(ov.annotate);
  EXPECT_FALSE(o3.annotate);
  // (4) library flavor
  EXPECT_TRUE(ov.use_verify_libc);
  EXPECT_FALSE(o3.use_verify_libc);
}

TEST(PassManagerTest, InterPassVerificationFollowsTheBuildDefault) {
  // Debug builds and -DOVERIFY_VERIFY_IR=ON verify the IR between pipeline
  // passes; plain release builds skip it (src/passes/pass.h).
  PassManager pm;
  EXPECT_EQ(pm.verify_after_each(), kVerifyIRAfterEachPass);
  PassManager forced(/*verify_after_each=*/true);
  EXPECT_TRUE(forced.verify_after_each());
}

TEST(PassManagerTest, ReportsTimingsAndChangeFlags) {
  auto m = ParseModuleOrDie(R"(
    func @umain(%in: i8*, %n: i32) -> i32 {
    entry:
      %x = add i32 2, i32 3
      ret %x
    }
  )");
  PassManager pm;
  ProgramAnnotations annotations;
  BuildPipeline(pm, PipelineOptions::For(OptLevel::kO1), &annotations);
  EXPECT_TRUE(pm.Run(*m));
  bool any_changed = false;
  for (const auto& timing : pm.timings()) {
    EXPECT_GE(timing.seconds, 0.0);
    any_changed |= timing.changed;
  }
  EXPECT_TRUE(any_changed);  // the constant add folds
}

TEST(GlobalDceTest, RemovesUnreachableFunctions) {
  auto m = ParseModuleOrDie(R"(
    func @used(%x: i32) -> i32 {
    entry:
      %r = add %x, i32 1
      ret %r
    }
    func @dead_leaf(%x: i32) -> i32 {
    entry:
      ret %x
    }
    func @dead_caller(%x: i32) -> i32 {
    entry:
      %r = call @dead_leaf(%x)
      ret %r
    }
    func @umain(%in: i8*, %n: i32) -> i32 {
    entry:
      %r = call @used(%n)
      ret %r
    }
  )");
  EXPECT_TRUE(GlobalDcePass().Run(*m));
  EXPECT_NE(m->GetFunction("umain"), nullptr);
  EXPECT_NE(m->GetFunction("used"), nullptr);
  EXPECT_EQ(m->GetFunction("dead_leaf"), nullptr);
  EXPECT_EQ(m->GetFunction("dead_caller"), nullptr);
}

TEST(GlobalDceTest, NoOpWithoutEntryPoint) {
  auto m = ParseModuleOrDie(R"(
    func @library_fn(%x: i32) -> i32 {
    entry:
      ret %x
    }
  )");
  EXPECT_FALSE(GlobalDcePass().Run(*m));
  EXPECT_NE(m->GetFunction("library_fn"), nullptr);
}

TEST(GlobalDceTest, KeepsMutuallyRecursiveReachableFunctions) {
  auto m = ParseModuleOrDie(R"(
    func @even(%x: i32) -> i32 {
    entry:
      %z = icmp eq %x, i32 0
      br %z, label %yes, label %rec
    yes:
      ret i32 1
    rec:
      %x1 = sub %x, i32 1
      %r = call @odd(%x1)
      ret %r
    }
    func @odd(%x: i32) -> i32 {
    entry:
      %z = icmp eq %x, i32 0
      br %z, label %no, label %rec
    no:
      ret i32 0
    rec:
      %x1 = sub %x, i32 1
      %r = call @even(%x1)
      ret %r
    }
    func @umain(%in: i8*, %n: i32) -> i32 {
    entry:
      %r = call @even(%n)
      ret %r
    }
  )");
  GlobalDcePass().Run(*m);
  EXPECT_NE(m->GetFunction("even"), nullptr);
  EXPECT_NE(m->GetFunction("odd"), nullptr);
}

}  // namespace
}  // namespace overify
