// Validation of the Coreutils-style workload suite: every program compiles
// at every optimization level, computes identical results across levels
// (differential property test on random inputs), and is explorable by the
// symbolic engine without false bug reports.
#include <gtest/gtest.h>

#include <algorithm>

#include "src/driver/compiler.h"
#include "src/exec/interpreter.h"
#include "src/ir/verifier.h"
#include "src/support/rng.h"
#include "src/workloads/textgen.h"
#include "src/workloads/workloads.h"

namespace overify {
namespace {

class WorkloadTest : public ::testing::TestWithParam<Workload> {};

TEST_P(WorkloadTest, CompilesCleanAtEveryLevel) {
  const Workload& workload = GetParam();
  for (OptLevel level :
       {OptLevel::kO0, OptLevel::kO1, OptLevel::kO2, OptLevel::kO3, OptLevel::kOverify}) {
    Compiler compiler;
    auto compiled = compiler.Compile(workload.source, level, workload.name);
    ASSERT_TRUE(compiled.ok) << workload.name << " at " << OptLevelName(level) << ":\n"
                             << compiled.errors;
    auto errors = VerifyModule(*compiled.module);
    ASSERT_TRUE(errors.empty()) << workload.name << " at " << OptLevelName(level) << ": "
                                << errors[0];
  }
}

TEST_P(WorkloadTest, LevelsAgreeOnSampleAndRandomInputs) {
  const Workload& workload = GetParam();
  std::vector<CompileResult> compiled;
  std::vector<OptLevel> levels = {OptLevel::kO0, OptLevel::kO2, OptLevel::kO3,
                                  OptLevel::kOverify};
  for (OptLevel level : levels) {
    Compiler compiler;
    compiled.push_back(compiler.Compile(workload.source, level, workload.name));
    ASSERT_TRUE(compiled.back().ok);
  }

  std::vector<std::string> inputs = {workload.sample_input, ""};
  Rng rng(42);
  for (int trial = 0; trial < 12; ++trial) {
    std::string input;
    size_t len = rng.NextBelow(14);
    const char alphabet[] = "abzAZ 019.,;/\t\n+-";
    for (size_t i = 0; i < len; ++i) {
      input += alphabet[rng.NextBelow(sizeof(alphabet) - 1)];
    }
    inputs.push_back(input);
  }

  for (const std::string& input : inputs) {
    bool have_baseline = false;
    bool baseline_ok = false;
    int64_t baseline_value = 0;
    std::string baseline_output;
    for (size_t i = 0; i < compiled.size(); ++i) {
      Interpreter interp(*compiled[i].module);
      auto run = interp.Run("umain", input);
      if (!have_baseline) {
        have_baseline = true;
        baseline_ok = run.ok;
        baseline_value = run.return_value;
        baseline_output = run.output;
        continue;
      }
      // Traps must be preserved (same ok-ness); results must agree.
      EXPECT_EQ(run.ok, baseline_ok)
          << workload.name << " at " << OptLevelName(levels[i]) << " on input '" << input
          << "': trap behaviour diverged (" << run.error << ")";
      if (run.ok && baseline_ok) {
        EXPECT_EQ(run.return_value, baseline_value)
            << workload.name << " at " << OptLevelName(levels[i]) << " on '" << input << "'";
        EXPECT_EQ(run.output, baseline_output)
            << workload.name << " at " << OptLevelName(levels[i]) << " on '" << input << "'";
      }
    }
  }
}

TEST_P(WorkloadTest, SymbolicAnalysisTerminatesAtOverify) {
  const Workload& workload = GetParam();
  Compiler compiler;
  auto compiled = compiler.Compile(workload.source, OptLevel::kOverify, workload.name);
  ASSERT_TRUE(compiled.ok);
  SymexLimits limits;
  limits.max_paths = 60000;
  limits.max_seconds = 30;
  auto result = Analyze(compiled, "umain", 3, limits);
  EXPECT_GE(result.paths_completed, 1u) << workload.name;
  for (const BugReport& bug : result.bugs) {
    EXPECT_NE(bug.kind, BugKind::kEngineError) << workload.name << ": " << bug.message;
  }
}

INSTANTIATE_TEST_SUITE_P(Suite, WorkloadTest, ::testing::ValuesIn(CoreutilsSuite()),
                         [](const ::testing::TestParamInfo<Workload>& info) {
                           return info.param.name;
                         });

TEST(SuiteShapeTest, SuiteIsAlphabeticalAndComplete) {
  const auto& suite = CoreutilsSuite();
  EXPECT_GE(suite.size(), 55u);
  for (size_t i = 1; i < suite.size(); ++i) {
    EXPECT_LE(suite[i - 1].name, suite[i].name) << "suite not alphabetical at " << i;
  }
  EXPECT_NE(FindWorkload("wc"), nullptr);
  EXPECT_EQ(FindWorkload("not_a_workload"), nullptr);
  // Every workload is findable through the name index, and the index returns
  // the suite's own entries (no copies).
  for (const Workload& workload : suite) {
    EXPECT_EQ(FindWorkload(workload.name), &workload) << workload.name;
  }
  // The suite-scale tail: at least two workloads with >= 32 symbolic bytes
  // (the SupportSet overflow path needs symbol indices past 64, which
  // cksum_wide's 72 bytes provide).
  size_t wide = 0;
  unsigned widest = 0;
  for (const Workload& workload : suite) {
    if (workload.default_sym_bytes >= 32) {
      ++wide;
      widest = std::max(widest, workload.default_sym_bytes);
    }
  }
  EXPECT_GE(wide, 2u);
  EXPECT_GT(widest, 64u);
}

TEST(SuiteShapeTest, TwoBufferWorkloadsRunThroughBothExecutors) {
  // The 4-arg umain contract: the interpreter splits concrete input
  // first-buffer-gets-the-ceiling, so "abcabc" compares "abc" to "abc".
  const Workload* cmp = FindWorkload("cmp_bufs");
  ASSERT_NE(cmp, nullptr);
  Compiler compiler;
  auto compiled = compiler.Compile(cmp->source, OptLevel::kO2, cmp->name);
  ASSERT_TRUE(compiled.ok) << compiled.errors;
  Interpreter interp(*compiled.module);
  EXPECT_EQ(interp.Run("umain", "abcabc").return_value, 0);
  EXPECT_EQ(interp.Run("umain", "abcabd").return_value, 3);  // differs at byte 3 of 3
  EXPECT_EQ(interp.Run("umain", "abab").return_value, 0);
  EXPECT_EQ(interp.Run("umain", "aba").return_value, 2);  // "ab" vs "a": NUL mismatch

  // Symbolically: 6 bytes split 3+3, both buffers' bytes are live symbols.
  SymexLimits limits;
  limits.max_seconds = 30;
  auto result = Analyze(compiled, "umain", 6, limits);
  EXPECT_TRUE(result.exhausted);
  EXPECT_GE(result.paths_completed, 4u);
  for (const BugReport& bug : result.bugs) {
    EXPECT_NE(bug.kind, BugKind::kEngineError) << bug.message;
  }
}

TEST(TextGenTest, DeterministicAndShaped) {
  TextGenOptions options;
  options.approx_words = 100;
  std::string a = GenerateText(options);
  std::string b = GenerateText(options);
  EXPECT_EQ(a, b);
  // Word count: separators are single spaces/newlines between words.
  size_t separators = 0;
  for (char c : a) {
    if (c == ' ' || c == '\n') {
      ++separators;
    }
  }
  EXPECT_EQ(separators, 99u);
  options.seed = 7;
  EXPECT_NE(GenerateText(options), a);
}

TEST(WcSuiteTest, WcCountsCorrectly) {
  const Workload* wc = FindWorkload("wc");
  ASSERT_NE(wc, nullptr);
  Compiler compiler;
  auto compiled = compiler.Compile(wc->source, OptLevel::kO2, "wc");
  ASSERT_TRUE(compiled.ok) << compiled.errors;
  Interpreter interp(*compiled.module);
  // "two words\nand more\n": 2 lines, 4 words, 19 chars.
  auto run = interp.Run("umain", wc->sample_input);
  ASSERT_TRUE(run.ok) << run.error;
  EXPECT_EQ(run.return_value, 2 * 10000 + 4 * 100 + 19);
}

}  // namespace
}  // namespace overify
