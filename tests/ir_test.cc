// Unit tests for the VIR core: types, constants, instructions, use lists,
// blocks, functions and the printer.
#include <gtest/gtest.h>

#include "src/ir/irbuilder.h"
#include "src/ir/module.h"
#include "src/ir/printer.h"
#include "src/ir/verifier.h"

namespace overify {
namespace {

TEST(TypeTest, PrimitiveLayout) {
  Module m("t");
  IRContext& ctx = m.context();
  EXPECT_EQ(ctx.I1()->SizeInBytes(), 1u);
  EXPECT_EQ(ctx.I8()->SizeInBytes(), 1u);
  EXPECT_EQ(ctx.I16()->SizeInBytes(), 2u);
  EXPECT_EQ(ctx.I32()->SizeInBytes(), 4u);
  EXPECT_EQ(ctx.I64()->SizeInBytes(), 8u);
  EXPECT_EQ(ctx.PtrTy(ctx.I8())->SizeInBytes(), 8u);
}

TEST(TypeTest, TypesAreInterned) {
  Module m("t");
  IRContext& ctx = m.context();
  EXPECT_EQ(ctx.PtrTy(ctx.I32()), ctx.PtrTy(ctx.I32()));
  EXPECT_EQ(ctx.ArrayTy(ctx.I8(), 4), ctx.ArrayTy(ctx.I8(), 4));
  EXPECT_NE(ctx.ArrayTy(ctx.I8(), 4), ctx.ArrayTy(ctx.I8(), 5));
  EXPECT_EQ(ctx.StructTy({ctx.I8(), ctx.I32()}), ctx.StructTy({ctx.I8(), ctx.I32()}));
  EXPECT_EQ(ctx.FnTy(ctx.I32(), {ctx.I8()}), ctx.FnTy(ctx.I32(), {ctx.I8()}));
}

TEST(TypeTest, ArrayLayout) {
  Module m("t");
  IRContext& ctx = m.context();
  Type* arr = ctx.ArrayTy(ctx.I32(), 10);
  EXPECT_EQ(arr->SizeInBytes(), 40u);
  EXPECT_EQ(arr->AlignInBytes(), 4u);
  EXPECT_EQ(arr->element(), ctx.I32());
  EXPECT_EQ(arr->array_count(), 10u);
}

TEST(TypeTest, StructLayoutWithPadding) {
  Module m("t");
  IRContext& ctx = m.context();
  // {i8, i32, i8} -> offsets 0, 4, 8; size 12 (padded to align 4).
  Type* st = ctx.StructTy({ctx.I8(), ctx.I32(), ctx.I8()});
  EXPECT_EQ(st->FieldOffset(0), 0u);
  EXPECT_EQ(st->FieldOffset(1), 4u);
  EXPECT_EQ(st->FieldOffset(2), 8u);
  EXPECT_EQ(st->SizeInBytes(), 12u);
  EXPECT_EQ(st->AlignInBytes(), 4u);
}

TEST(TypeTest, ToStringForms) {
  Module m("t");
  IRContext& ctx = m.context();
  EXPECT_EQ(ctx.I32()->ToString(), "i32");
  EXPECT_EQ(ctx.PtrTy(ctx.I8())->ToString(), "i8*");
  EXPECT_EQ(ctx.ArrayTy(ctx.I8(), 3)->ToString(), "[3 x i8]");
  EXPECT_EQ(ctx.StructTy({ctx.I8(), ctx.I64()})->ToString(), "{i8, i64}");
}

TEST(ConstantTest, IntsAreInternedAndTruncated) {
  Module m("t");
  IRContext& ctx = m.context();
  EXPECT_EQ(ctx.GetInt(8, 0x1FF), ctx.GetInt(8, 0xFF));
  EXPECT_EQ(ctx.GetInt(8, 0xFF)->value(), 0xFFu);
  EXPECT_EQ(ctx.GetInt(8, 0xFF)->SignedValue(), -1);
  EXPECT_TRUE(ctx.GetInt(8, 0xFF)->IsAllOnes());
  EXPECT_TRUE(ctx.GetInt(32, 0)->IsZero());
}

TEST(ConstantTest, SignExtendHelpers) {
  EXPECT_EQ(SignExtend(0x80, 8), -128);
  EXPECT_EQ(SignExtend(0x7F, 8), 127);
  EXPECT_EQ(TruncateToWidth(0x1234, 8), 0x34u);
  EXPECT_EQ(TruncateToWidth(~0ull, 64), ~0ull);
}

TEST(ModuleTest, StringGlobalGetsNulTerminator) {
  Module m("t");
  GlobalVariable* g = m.CreateStringGlobal("msg", "hi");
  ASSERT_EQ(g->initializer().size(), 3u);
  EXPECT_EQ(g->initializer()[0], 'h');
  EXPECT_EQ(g->initializer()[2], 0);
  EXPECT_TRUE(g->is_const());
  EXPECT_TRUE(g->type()->IsPointer());
  EXPECT_EQ(m.GetGlobal("msg"), g);
}

// Builds: func @f(%a: i32, %b: i32) -> i32 { return a + b; }
std::unique_ptr<Module> MakeAddModule() {
  auto m = std::make_unique<Module>("add");
  IRContext& ctx = m->context();
  Function* f = m->CreateFunction("f", ctx.I32(), {ctx.I32(), ctx.I32()});
  BasicBlock* entry = f->CreateBlock("entry");
  IRBuilder b(*m);
  b.SetInsertPoint(entry);
  Value* sum = b.CreateAdd(f->Arg(0), f->Arg(1), "sum");
  b.CreateRet(sum);
  return m;
}

TEST(InstructionTest, UseListsTrackOperands) {
  auto m = MakeAddModule();
  Function* f = m->GetFunction("f");
  EXPECT_EQ(f->Arg(0)->NumUses(), 1u);
  Instruction* sum = DynCast<Instruction>(f->Arg(0)->uses()[0].user);
  ASSERT_NE(sum, nullptr);
  EXPECT_EQ(sum->opcode(), Opcode::kAdd);
  EXPECT_EQ(sum->NumUses(), 1u);  // used by ret
}

TEST(InstructionTest, ReplaceAllUsesWith) {
  auto m = MakeAddModule();
  Function* f = m->GetFunction("f");
  Instruction* sum = Cast<Instruction>(f->Arg(0)->uses()[0].user);
  f->Arg(0)->ReplaceAllUsesWith(m->context().GetInt(32, 7));
  EXPECT_EQ(f->Arg(0)->NumUses(), 0u);
  auto* c = DynCast<ConstantInt>(sum->Operand(0));
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->value(), 7u);
}

TEST(InstructionTest, EraseRequiresNoUses) {
  auto m = MakeAddModule();
  Function* f = m->GetFunction("f");
  Instruction* sum = Cast<Instruction>(f->Arg(0)->uses()[0].user);
  // Replace ret's operand so sum becomes dead, then erase it.
  Instruction* ret = Cast<Instruction>(sum->uses()[0].user);
  ret->SetOperand(0, m->context().GetInt(32, 0));
  EXPECT_FALSE(sum->HasUses());
  sum->EraseFromParent();
  EXPECT_EQ(f->entry()->size(), 1u);
}

TEST(InstructionTest, SpeculationSafety) {
  auto m = std::make_unique<Module>("t");
  IRContext& ctx = m->context();
  Function* f = m->CreateFunction("g", ctx.I32(), {ctx.I32()});
  BasicBlock* entry = f->CreateBlock("entry");
  IRBuilder b(*m);
  b.SetInsertPoint(entry);
  Value* add = b.CreateAdd(f->Arg(0), b.I32Val(1));
  Value* div_const = b.CreateBinary(Opcode::kUDiv, f->Arg(0), b.I32Val(2));
  Value* div_var = b.CreateBinary(Opcode::kUDiv, f->Arg(0), add);
  b.CreateRet(div_var);
  EXPECT_TRUE(Cast<Instruction>(add)->IsSafeToSpeculate());
  EXPECT_TRUE(Cast<Instruction>(div_const)->IsSafeToSpeculate());
  EXPECT_FALSE(Cast<Instruction>(div_var)->IsSafeToSpeculate());
}

TEST(PhiTest, IncomingManagement) {
  Module m("t");
  IRContext& ctx = m.context();
  Function* f = m.CreateFunction("f", ctx.I32(), {});
  BasicBlock* a = f->CreateBlock("a");
  BasicBlock* b1 = f->CreateBlock("b1");
  BasicBlock* b2 = f->CreateBlock("b2");
  auto phi = std::make_unique<PhiInst>(ctx.I32());
  phi->AddIncoming(ctx.GetInt(32, 1), b1);
  phi->AddIncoming(ctx.GetInt(32, 2), b2);
  EXPECT_EQ(phi->NumIncoming(), 2u);
  EXPECT_EQ(phi->IncomingValueFor(b2), ctx.GetInt(32, 2));
  EXPECT_EQ(phi->IncomingIndexFor(a), -1);
  phi->RemoveIncoming(0);
  EXPECT_EQ(phi->NumIncoming(), 1u);
  EXPECT_EQ(phi->IncomingBlock(0), b2);
  phi->ReplaceIncomingBlock(b2, b1);
  EXPECT_EQ(phi->IncomingBlock(0), b1);
}

TEST(BranchTest, MakeUnconditionalDropsCondition) {
  Module m("t");
  IRContext& ctx = m.context();
  Function* f = m.CreateFunction("f", ctx.VoidTy(), {ctx.I1()});
  BasicBlock* entry = f->CreateBlock("entry");
  BasicBlock* t = f->CreateBlock("t");
  BasicBlock* e = f->CreateBlock("e");
  IRBuilder b(m);
  b.SetInsertPoint(entry);
  b.CreateCondBr(f->Arg(0), t, e);
  b.SetInsertPoint(t);
  b.CreateRetVoid();
  b.SetInsertPoint(e);
  b.CreateRetVoid();

  auto* br = Cast<BranchInst>(entry->Terminator());
  EXPECT_TRUE(br->IsConditional());
  EXPECT_EQ(f->Arg(0)->NumUses(), 1u);
  br->MakeUnconditional(t);
  EXPECT_FALSE(br->IsConditional());
  EXPECT_EQ(br->SingleDest(), t);
  EXPECT_EQ(f->Arg(0)->NumUses(), 0u);
}

TEST(BlockTest, SuccessorsAndPredecessors) {
  Module m("t");
  IRContext& ctx = m.context();
  Function* f = m.CreateFunction("f", ctx.VoidTy(), {ctx.I1()});
  BasicBlock* entry = f->CreateBlock("entry");
  BasicBlock* t = f->CreateBlock("t");
  BasicBlock* e = f->CreateBlock("e");
  IRBuilder b(m);
  b.SetInsertPoint(entry);
  b.CreateCondBr(f->Arg(0), t, e);
  b.SetInsertPoint(t);
  b.CreateBr(e);
  b.SetInsertPoint(e);
  b.CreateRetVoid();

  auto succs = entry->Successors();
  ASSERT_EQ(succs.size(), 2u);
  EXPECT_EQ(succs[0], t);
  EXPECT_EQ(succs[1], e);
  auto preds = e->Predecessors();
  EXPECT_EQ(preds.size(), 2u);
  EXPECT_TRUE(t->Predecessors().size() == 1 && t->Predecessors()[0] == entry);
}

TEST(VerifierTest, AcceptsWellFormedModule) {
  auto m = MakeAddModule();
  EXPECT_TRUE(VerifyModule(*m).empty());
}

TEST(VerifierTest, DetectsMissingTerminator) {
  Module m("t");
  IRContext& ctx = m.context();
  Function* f = m.CreateFunction("f", ctx.I32(), {ctx.I32()});
  BasicBlock* entry = f->CreateBlock("entry");
  IRBuilder b(m);
  b.SetInsertPoint(entry);
  b.CreateAdd(f->Arg(0), f->Arg(0));
  auto errors = VerifyFunction(*f);
  ASSERT_FALSE(errors.empty());
  EXPECT_NE(errors[0].find("terminator"), std::string::npos);
}

TEST(VerifierTest, DetectsDominanceViolation) {
  Module m("t");
  IRContext& ctx = m.context();
  Function* f = m.CreateFunction("f", ctx.I32(), {ctx.I1(), ctx.I32()});
  BasicBlock* entry = f->CreateBlock("entry");
  BasicBlock* left = f->CreateBlock("left");
  BasicBlock* join = f->CreateBlock("join");
  IRBuilder b(m);
  b.SetInsertPoint(entry);
  b.CreateCondBr(f->Arg(0), left, join);
  b.SetInsertPoint(left);
  Value* x = b.CreateAdd(f->Arg(1), b.I32Val(1), "x");
  b.CreateBr(join);
  b.SetInsertPoint(join);
  // Illegal: x does not dominate join (entry can reach join directly).
  b.CreateRet(x);
  auto errors = VerifyFunction(*f);
  ASSERT_FALSE(errors.empty());
  EXPECT_NE(errors[0].find("dominance"), std::string::npos);
}

TEST(VerifierTest, DetectsPhiPredecessorMismatch) {
  Module m("t");
  IRContext& ctx = m.context();
  Function* f = m.CreateFunction("f", ctx.I32(), {ctx.I1()});
  BasicBlock* entry = f->CreateBlock("entry");
  BasicBlock* a = f->CreateBlock("a");
  BasicBlock* join = f->CreateBlock("join");
  IRBuilder b(m);
  b.SetInsertPoint(entry);
  b.CreateCondBr(f->Arg(0), a, join);
  b.SetInsertPoint(a);
  b.CreateBr(join);
  b.SetInsertPoint(join);
  PhiInst* phi = b.CreatePhi(ctx.I32(), "p");
  phi->AddIncoming(ctx.GetInt(32, 1), a);
  // Missing incoming for entry.
  b.CreateRet(phi);
  auto errors = VerifyFunction(*f);
  ASSERT_FALSE(errors.empty());
  EXPECT_NE(errors[0].find("missing incoming"), std::string::npos);
}

TEST(PrinterTest, PrintsFunctionWithNames) {
  auto m = MakeAddModule();
  std::string text = PrintModule(*m);
  EXPECT_NE(text.find("func @f(%arg0: i32, %arg1: i32) -> i32 {"), std::string::npos);
  EXPECT_NE(text.find("%sum = add %arg0, %arg1"), std::string::npos);
  EXPECT_NE(text.find("ret %sum"), std::string::npos);
}

TEST(PrinterTest, UniquifiesDuplicateNames) {
  Module m("t");
  IRContext& ctx = m.context();
  Function* f = m.CreateFunction("f", ctx.I32(), {ctx.I32()});
  BasicBlock* entry = f->CreateBlock("entry");
  IRBuilder b(m);
  b.SetInsertPoint(entry);
  Value* a = b.CreateAdd(f->Arg(0), b.I32Val(1), "x");
  Value* c = b.CreateAdd(a, b.I32Val(2), "x");
  b.CreateRet(c);
  std::string text = PrintFunction(*f);
  EXPECT_NE(text.find("%x = add"), std::string::npos);
  EXPECT_NE(text.find("%x.1 = add"), std::string::npos);
}

TEST(PrinterTest, PrintsGlobalsAsStringsOrBytes) {
  Module m("t");
  IRContext& ctx = m.context();
  m.CreateStringGlobal("s", "a\nb");
  std::vector<uint8_t> bytes = {1, 0, 0, 0, 2, 0, 0, 0};
  m.CreateGlobal("arr", ctx.ArrayTy(ctx.I32(), 2), false, bytes);
  std::string text = PrintModule(m);
  EXPECT_NE(text.find("global @s : [4 x i8] const = \"a\\nb\\0\""), std::string::npos);
  EXPECT_NE(text.find("global @arr : [2 x i32] = [1, 0, 0, 0, 2, 0, 0, 0]"), std::string::npos);
}

TEST(CloneTest, CloneIsDetachedButSharesOperands) {
  auto m = MakeAddModule();
  Function* f = m->GetFunction("f");
  Instruction* sum = Cast<Instruction>(f->Arg(0)->uses()[0].user);
  auto clone = sum->Clone(m->context());
  EXPECT_EQ(clone->opcode(), Opcode::kAdd);
  EXPECT_EQ(clone->Operand(0), f->Arg(0));
  EXPECT_EQ(clone->parent(), nullptr);
  EXPECT_EQ(f->Arg(0)->NumUses(), 2u);  // original + clone
  clone.reset();
  EXPECT_EQ(f->Arg(0)->NumUses(), 1u);
}

}  // namespace
}  // namespace overify
