// The constraint-preprocessing pipeline and the prefix-aware counterexample
// cache (src/symex/preprocess.h, docs/engine.md):
//  - property tests that preprocessing preserves satisfiability and model
//    validity against the unpreprocessed solver on randomized constraint
//    sets,
//  - regression tests that prefix-cache hits never change verdicts or bug
//    reports.
#include <gtest/gtest.h>

#include "src/driver/compiler.h"
#include "src/frontend/codegen.h"
#include "src/support/rng.h"
#include "src/symex/executor.h"
#include "src/symex/solver.h"

namespace overify {
namespace {

// ---- Substitution over hash-consed nodes.

TEST(SubstituteTest, ReplacesBoundSymbolsAndRefolds) {
  ExprContext ctx;
  std::vector<int16_t> binding = {7, -1};
  SupportSet bound;
  bound.Add(0);

  // s0 + s1 with s0 := 7 folds the constant to the canonical (right) side.
  const Expr* sum = ctx.Binary(ExprKind::kAdd, ctx.ZExt(ctx.Symbol(0), 32),
                               ctx.ZExt(ctx.Symbol(1), 32));
  const Expr* substituted = ctx.Substitute(sum, binding, bound);
  EXPECT_EQ(substituted,
            ctx.Binary(ExprKind::kAdd, ctx.ZExt(ctx.Symbol(1), 32), ctx.Constant(7, 32)));

  // A constraint entirely over bound symbols folds to a constant.
  const Expr* cmp =
      ctx.Compare(ICmpPredicate::kULT, ctx.Symbol(0), ctx.Constant(10, 8));
  EXPECT_TRUE(ctx.Substitute(cmp, binding, bound)->IsTrue());

  // Subtrees disjoint from the bound set pass through untouched.
  const Expr* other = ctx.Compare(ICmpPredicate::kEq, ctx.Symbol(1), ctx.Constant(3, 8));
  EXPECT_EQ(ctx.Substitute(other, binding, bound), other);
}

TEST(SubstituteTest, GuardsTrappingConstantFolds) {
  // Substituting a zero divisor must not crash the builder; the raw node is
  // interned and Evaluate defines it as 0 (the enclosing constraint set is
  // contradictory or guarded in real runs).
  ExprContext ctx;
  std::vector<int16_t> binding = {0};
  SupportSet bound;
  bound.Add(0);
  const Expr* div = ctx.Binary(ExprKind::kUDiv, ctx.Constant(8, 8), ctx.Symbol(0));
  const Expr* substituted = ctx.Substitute(div, binding, bound);
  ctx.NewEvaluation();
  EXPECT_EQ(ctx.Evaluate(substituted, {0}), 0u);
}

// ---- Negation canonicalization feeding the range extractor.

TEST(NotCanonicalizationTest, ComparisonDualsRoundTrip) {
  ExprContext ctx;
  const Expr* ult = ctx.Compare(ICmpPredicate::kULT, ctx.Symbol(0), ctx.Symbol(1));
  const Expr* not_ult = ctx.Not(ult);
  EXPECT_EQ(not_ult->kind(), ExprKind::kUle);  // ¬(a < b) == b <= a
  EXPECT_EQ(ctx.Not(not_ult), ult);
  const Expr* sle = ctx.Compare(ICmpPredicate::kSLE, ctx.Symbol(0), ctx.Symbol(1));
  EXPECT_EQ(ctx.Not(sle)->kind(), ExprKind::kSlt);
  EXPECT_EQ(ctx.Not(ctx.Not(sle)), sle);
}

// ---- Randomized equivalence: preprocessed chain vs. raw core solver.

// Random constraints over a handful of byte symbols, biased toward the
// shapes the preprocessor rewrites (equalities and bounds) but including
// arbitrary arithmetic comparisons.
const Expr* RandomConstraint(ExprContext& ctx, Rng& rng, unsigned num_syms) {
  auto sym = [&] { return ctx.Symbol(static_cast<unsigned>(rng.NextBelow(num_syms))); };
  auto byte = [&] { return ctx.Constant(rng.NextBelow(256), 8); };
  switch (rng.NextBelow(6)) {
    case 0:  // byte equality (substitution fodder)
      return ctx.Compare(ICmpPredicate::kEq, sym(), byte());
    case 1:  // upper bound (range fodder)
      return ctx.Compare(rng.NextBool() ? ICmpPredicate::kULT : ICmpPredicate::kULE, sym(),
                         byte());
    case 2:  // lower bound
      return ctx.Compare(rng.NextBool() ? ICmpPredicate::kUGT : ICmpPredicate::kUGE, sym(),
                         byte());
    case 3:  // symbol-symbol comparison
      return ctx.Compare(rng.NextBool() ? ICmpPredicate::kULT : ICmpPredicate::kEq, sym(),
                         sym());
    case 4: {  // arithmetic relation over widened bytes
      const Expr* a = ctx.ZExt(sym(), 32);
      const Expr* b = ctx.ZExt(sym(), 32);
      const Expr* lhs = ctx.Binary(rng.NextBool() ? ExprKind::kAdd : ExprKind::kXor, a, b);
      return ctx.Compare(ICmpPredicate::kULE, lhs, ctx.Constant(rng.NextBelow(600), 32));
    }
    default: {  // negated form of a simple comparison
      const Expr* inner =
          ctx.Compare(rng.NextBool() ? ICmpPredicate::kULT : ICmpPredicate::kEq, sym(),
                      byte());
      return ctx.Not(inner);
    }
  }
}

TEST(PreprocessPropertyTest, PreservesSatisfiabilityAndModels) {
  Rng rng(0xfeedbead);
  const unsigned kNumSyms = 4;
  for (int round = 0; round < 300; ++round) {
    ExprContext ctx;
    std::vector<const Expr*> constraints;
    const size_t n = 1 + rng.NextBelow(7);
    for (size_t i = 0; i < n; ++i) {
      constraints.push_back(RandomConstraint(ctx, rng, kNumSyms));
    }

    // Ground truth: the raw core solver on the untouched set. Random
    // multi-symbol UNSAT sets can exhaust the candidate budget; only
    // definite verdicts are comparable.
    CoreSolver core;
    SatResult expected = core.CheckSat(ctx, constraints, nullptr);
    if (expected == SatResult::kUnknown) {
      continue;
    }

    // Preprocessed chain, with and without a reusable per-path handle.
    SolverChain chain(ctx);
    std::vector<uint8_t> model;
    PathPrefix handle;
    ASSERT_EQ(chain.CheckSat(constraints, &model, &handle), expected)
        << "round " << round;
    ASSERT_EQ(chain.CheckSat(constraints, nullptr, nullptr), expected)
        << "round " << round << " (one-shot)";
    if (expected == SatResult::kSat) {
      // The model must satisfy every ORIGINAL constraint.
      model.resize(kNumSyms, 0);
      ctx.NewEvaluation();
      for (const Expr* c : constraints) {
        EXPECT_NE(ctx.Evaluate(c, model), 0u) << "round " << round;
      }
    }
  }
}

TEST(PreprocessPropertyTest, IncrementalPrefixMatchesFromScratch) {
  // Growing a constraint sequence one element at a time through a reused
  // handle must answer exactly like a fresh chain at every length — the
  // determinism contract behind work-steal handle invalidation.
  Rng rng(0xabad1dea);
  const unsigned kNumSyms = 4;
  for (int round = 0; round < 60; ++round) {
    ExprContext ctx;
    SolverChain incremental(ctx);
    PathPrefix handle;
    std::vector<const Expr*> constraints;
    for (size_t len = 1; len <= 6; ++len) {
      constraints.push_back(RandomConstraint(ctx, rng, kNumSyms));
      SolverChain fresh(ctx);
      SatResult a = incremental.CheckSat(constraints, nullptr, &handle);
      SatResult b = fresh.CheckSat(constraints, nullptr, nullptr);
      ASSERT_EQ(a, b) << "round " << round << " len " << len;
      if (a == SatResult::kUnsat) {
        break;  // a dead path never grows in the engine
      }
    }
  }
}

TEST(PreprocessPropertyTest, MayBeTrueAgreesWithUnpreprocessedChain) {
  Rng rng(0x5eed5eed);
  const unsigned kNumSyms = 4;
  for (int round = 0; round < 200; ++round) {
    ExprContext ctx;
    std::vector<const Expr*> path;
    const size_t n = rng.NextBelow(5);
    for (size_t i = 0; i < n; ++i) {
      path.push_back(RandomConstraint(ctx, rng, kNumSyms));
    }
    // MayBeTrue's contract assumes a satisfiable path.
    CoreSolver core;
    if (core.CheckSat(ctx, path, nullptr) != SatResult::kSat) {
      continue;
    }
    const Expr* cond = RandomConstraint(ctx, rng, kNumSyms);
    SolverChain with(ctx);
    SolverChain without(ctx);
    without.set_preprocessing(false);
    EXPECT_EQ(with.MayBeTrue(path, cond, nullptr), without.MayBeTrue(path, cond, nullptr))
        << "round " << round;
  }
}

// ---- Prefix-cache behavior.

TEST(PrefixCacheTest, SubsetSupersetAndExtensionHits) {
  ExprContext ctx;
  SolverChain chain(ctx);
  auto ult = [&](unsigned s, uint64_t c) {
    return ctx.Compare(ICmpPredicate::kULT, ctx.Symbol(s), ctx.Constant(c, 8));
  };
  // Symbol-symbol constraints are opaque to the range extractor, so these
  // exercise the cache rather than the presolver.
  const Expr* rel01 = ctx.Compare(ICmpPredicate::kULT, ctx.Symbol(0), ctx.Symbol(1));
  const Expr* rel10 = ctx.Compare(ICmpPredicate::kULT, ctx.Symbol(1), ctx.Symbol(0));
  const Expr* rel12 = ctx.Compare(ICmpPredicate::kULT, ctx.Symbol(1), ctx.Symbol(2));

  // UNSAT set cached; a superset query must be answered from the subset.
  std::vector<const Expr*> pair = {rel01, rel10};
  ASSERT_EQ(chain.CheckSat(pair, nullptr), SatResult::kUnsat);
  std::vector<const Expr*> wider = {rel01, rel10, ult(3, 100)};
  EXPECT_EQ(chain.CheckSat(wider, nullptr), SatResult::kUnsat);
  EXPECT_GE(chain.stats().prefix_subset_hits, 1u);

  // SAT prefix cached; the depth-k+1 extension reuses/extends its model.
  std::vector<const Expr*> grow = {rel01};
  std::vector<uint8_t> model;
  ASSERT_EQ(chain.CheckSat(grow, &model, nullptr), SatResult::kSat);
  uint64_t core_before = chain.stats().core_queries;
  grow.push_back(rel12);
  ASSERT_EQ(chain.CheckSat(grow, &model, nullptr), SatResult::kSat);
  EXPECT_GE(chain.stats().prefix_model_hits + chain.stats().prefix_superset_hits +
                chain.stats().core_queries - core_before,
            1u);
  // SAT superset cached ({rel01, rel12}); its subset is answered with the
  // superset's model without a core search.
  core_before = chain.stats().core_queries;
  std::vector<const Expr*> sub = {rel12};
  ASSERT_EQ(chain.CheckSat(sub, &model, nullptr), SatResult::kSat);
  EXPECT_EQ(chain.stats().core_queries, core_before);
  EXPECT_GE(chain.stats().prefix_superset_hits, 1u);
  ctx.NewEvaluation();
  EXPECT_NE(ctx.Evaluate(rel12, model), 0u);
}

// ---- Regression: prefix-cache hits never change bug reports.

std::unique_ptr<Module> CompileOrDie(const std::string& source) {
  DiagnosticEngine diags;
  auto m = CompileMiniC(source, "preprocess_test", diags);
  EXPECT_NE(m, nullptr) << diags.ToString();
  return m;
}

void ExpectSameOutcome(const SymexResult& a, const SymexResult& b, const std::string& label) {
  EXPECT_EQ(a.exhausted, b.exhausted) << label;
  EXPECT_EQ(a.paths_completed, b.paths_completed) << label;
  EXPECT_EQ(a.paths_infeasible, b.paths_infeasible) << label;
  EXPECT_EQ(a.paths_bug, b.paths_bug) << label;
  ASSERT_EQ(a.bugs.size(), b.bugs.size()) << label;
  for (size_t i = 0; i < a.bugs.size(); ++i) {
    EXPECT_EQ(a.bugs[i].kind, b.bugs[i].kind) << label << " bug " << i;
    EXPECT_EQ(a.bugs[i].site, b.bugs[i].site) << label << " bug " << i;
    EXPECT_EQ(a.bugs[i].message, b.bugs[i].message) << label << " bug " << i;
    EXPECT_EQ(a.bugs[i].example_input, b.bugs[i].example_input) << label << " bug " << i;
  }
}

TEST(PreprocessRegressionTest, BugReportsIdenticalWithAndWithoutPreprocessing) {
  const char* kPrograms[] = {
      // Division guarded behind byte equalities (substitution territory).
      R"(
        int umain(unsigned char *in, int n) {
          int d = in[0] - 'a';
          if (in[1] == 'q') { return in[2] / d; }
          return 0;
        }
      )",
      // Bounds bug reached through range-constrained loop walking.
      R"(
        int umain(unsigned char *in, int n) {
          unsigned char buf[4];
          int i = 0;
          for (; in[i]; i++) {
            buf[i] = in[i];
          }
          if (in[0] == 'd') { return 10 / (in[1] - 'x'); }
          __check(in[2] != '!', "bang rejected");
          return buf[0] + i;
        }
      )",
      // Deep comparisons: every branch is a range fact.
      R"(
        int umain(unsigned char *in, int n) {
          int score = 0;
          if (in[0] > 'm') { score += 1; }
          if (in[0] > 'p') { score += 2; }
          if (in[0] < 'c') { score += 4; }
          if (in[1] >= '0' && in[1] <= '9') { score += 8; }
          if (in[0] == in[2]) { score += 16; }
          return score;
        }
      )",
  };
  SymexLimits limits;
  for (const char* source : kPrograms) {
    auto m = CompileOrDie(source);
    SymexOptions on;
    SymexOptions off;
    off.solver_preprocess = false;
    SymexResult with = SymbolicExecutor(*m, on).Run("umain", 3, limits);
    SymexResult without = SymbolicExecutor(*m, off).Run("umain", 3, limits);
    EXPECT_TRUE(with.exhausted);
    ExpectSameOutcome(with, without, source);
    // Rerunning with preprocessing (warm caches inside a fresh executor,
    // same module) must also be stable.
    SymexResult again = SymbolicExecutor(*m, on).Run("umain", 3, limits);
    ExpectSameOutcome(with, again, "rerun");
  }
}

}  // namespace
}  // namespace overify
