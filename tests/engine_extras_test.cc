// Engine behaviours beyond the happy path: search order, fork isolation,
// limits, the memory model's copy-on-write discipline, and output capture.
#include <gtest/gtest.h>

#include "src/frontend/codegen.h"
#include "src/symex/executor.h"
#include "src/symex/memory.h"

namespace overify {
namespace {

std::unique_ptr<Module> CompileOrDie(const std::string& source) {
  DiagnosticEngine diags;
  auto m = CompileMiniC(source, "engine_extras", diags);
  EXPECT_NE(m, nullptr) << diags.ToString();
  return m;
}

TEST(SearchOrderTest, BfsAndDfsExploreTheSamePathSet) {
  auto m = CompileOrDie(R"(
    int umain(unsigned char *in, int n) {
      int score = 0;
      if (in[0] > 'm') { score += 1; }
      if (in[1] > 'm') { score += 2; }
      if (in[2] > 'm') { score += 4; }
      return score;
    }
  )");
  SymexLimits limits;
  SymexOptions dfs;
  dfs.depth_first = true;
  SymexOptions bfs;
  bfs.depth_first = false;
  SymexResult dfs_result = SymbolicExecutor(*m, dfs).Run("umain", 3, limits);
  SymexResult bfs_result = SymbolicExecutor(*m, bfs).Run("umain", 3, limits);
  EXPECT_TRUE(dfs_result.exhausted);
  EXPECT_TRUE(bfs_result.exhausted);
  EXPECT_EQ(dfs_result.paths_completed, 8u);
  EXPECT_EQ(bfs_result.paths_completed, 8u);
  EXPECT_EQ(dfs_result.forks, bfs_result.forks);
}

TEST(ForkIsolationTest, SiblingPathsDoNotShareMemoryWrites) {
  // Each branch writes a different value into the same buffer slot; if forked
  // states leaked object state, the check would fire on some path.
  auto m = CompileOrDie(R"(
    int umain(unsigned char *in, int n) {
      unsigned char tag[1];
      if (in[0] == 'A') { tag[0] = 1; } else { tag[0] = 2; }
      if (in[0] == 'A') { __check(tag[0] == 1, "lost write on A path"); }
      else { __check(tag[0] == 2, "lost write on other path"); }
      return tag[0];
    }
  )");
  SymexLimits limits;
  SymexResult result = SymbolicExecutor(*m).Run("umain", 1, limits);
  EXPECT_TRUE(result.exhausted);
  EXPECT_TRUE(result.bugs.empty()) << result.bugs[0].message;
  EXPECT_EQ(result.paths_completed, 2u);
}

TEST(ForkIsolationTest, PointerSlotsArePathLocal) {
  auto m = CompileOrDie(R"(
    int umain(unsigned char *in, int n) {
      unsigned char *p;   /* pointer variable spilled to memory at -O0 */
      unsigned char a[1];
      unsigned char b[1];
      a[0] = 10;
      b[0] = 20;
      if (in[0] == 'x') { p = a; } else { p = b; }
      if (in[0] == 'x') { __check(*p == 10, "pointer slot leaked: a"); }
      else { __check(*p == 20, "pointer slot leaked: b"); }
      return *p;
    }
  )");
  SymexLimits limits;
  SymexResult result = SymbolicExecutor(*m).Run("umain", 1, limits);
  EXPECT_TRUE(result.exhausted);
  EXPECT_TRUE(result.bugs.empty()) << result.bugs[0].message;
}

TEST(LimitsTest, MaxForksStopsExploration) {
  auto m = CompileOrDie(R"(
    int umain(unsigned char *in, int n) {
      int c = 0;
      for (int i = 0; i < n; i++) {
        if (in[i] == 'q') { c++; }
      }
      return c;
    }
  )");
  SymexLimits limits;
  limits.max_forks = 3;
  SymexResult result = SymbolicExecutor(*m).Run("umain", 8, limits);
  EXPECT_FALSE(result.exhausted);
  EXPECT_LE(result.forks, 4u);  // one in-flight fork may complete the step
  EXPECT_EQ(result.paths_terminated, result.paths_infeasible + result.paths_bug +
                                         result.paths_limit + result.paths_unexplored);
}

TEST(LimitsTest, MaxInstructionsStopsExploration) {
  auto m = CompileOrDie(R"(
    int umain(unsigned char *in, int n) {
      int x = 0;
      while (1) { x = x + 1; }
      return x;
    }
  )");
  SymexLimits limits;
  limits.max_instructions = 500;
  SymexResult result = SymbolicExecutor(*m).Run("umain", 1, limits);
  EXPECT_FALSE(result.exhausted);
  EXPECT_EQ(result.paths_completed, 0u);
  EXPECT_GE(result.instructions, 500u);
  EXPECT_LE(result.instructions, 600u);
  // The looping state was killed mid-flight by the limit stop.
  EXPECT_EQ(result.paths_limit, 1u);
  EXPECT_EQ(result.paths_terminated, result.paths_infeasible + result.paths_bug +
                                         result.paths_limit + result.paths_unexplored);
}

TEST(MemoryModelTest, CopyOnWriteSharesUntilMutation) {
  ExprContext ctx;
  AddressSpace space_a;
  uint64_t id = space_a.Allocate(ctx, 4, false, false, "buf");
  space_a.Write(id).SetByte(0, ctx.Constant(7, 8));

  AddressSpace space_b = space_a;  // fork
  // Reads agree and share the same object.
  EXPECT_EQ(&space_a.Read(id), &space_b.Read(id));
  // Mutating the copy detaches it.
  space_b.Write(id).SetByte(0, ctx.Constant(9, 8));
  EXPECT_NE(&space_a.Read(id), &space_b.Read(id));
  EXPECT_EQ(space_a.Read(id).Byte(0)->constant_value(), 7u);
  EXPECT_EQ(space_b.Read(id).Byte(0)->constant_value(), 9u);
}

TEST(MemoryModelTest, FreeRemovesObject) {
  ExprContext ctx;
  AddressSpace space;
  uint64_t id = space.Allocate(ctx, 8, false, true, "frame");
  EXPECT_TRUE(space.Exists(id));
  EXPECT_EQ(space.Meta(id).size, 8u);
  space.Free(id);
  EXPECT_FALSE(space.Exists(id));
}

TEST(DeadStackObjectTest, EscapedFrameAddressIsReportedOnUse) {
  // A function stores the address of its local into a global slot; using it
  // after return is a classic stack-escape bug the engine flags.
  auto m = CompileOrDie(R"(
    unsigned char *saved;
    void leak(void) {
      unsigned char local[2];
      local[0] = 5;
      saved = local;
    }
    int umain(unsigned char *in, int n) {
      leak();
      return *saved;
    }
  )");
  SymexLimits limits;
  SymexResult result = SymbolicExecutor(*m).Run("umain", 1, limits);
  EXPECT_TRUE(result.FoundBug(BugKind::kOutOfBounds));
}

// ---- SupportSet overflow: symbol indices >= 64 leave the one-word bitmask
// and live in the sorted overflow vector (src/symex/expr.h). Drive that
// path end to end through the engine: constraints over bytes 65/68/70 flow
// through FilterIndependent's overflow-aware intersection tests, the core
// solver's support walks, and bug-model extraction.

TEST(SupportOverflowTest, WorkloadWithMoreThan64SymbolicBytesIsExplored) {
  auto m = CompileOrDie(R"(
    int umain(unsigned char *in, int n) {
      if (in[65] == 'A' && in[70] == 'B') {
        __check(in[2] != '!', "bang past the bitmask");
        return 1;
      }
      if (in[0] == in[68]) { return 2; }
      return 0;
    }
  )");
  constexpr unsigned kBytes = 72;
  SymexLimits limits;
  SymexResult result = SymbolicExecutor(*m).Run("umain", kBytes, limits);
  EXPECT_TRUE(result.exhausted);
  // The high-byte constraints must actually prune: byte 2's check only
  // fires on the path where bytes 65 and 70 matched.
  ASSERT_TRUE(result.FoundBug(BugKind::kCheckFailed));
  for (const BugReport& bug : result.bugs) {
    if (bug.kind != BugKind::kCheckFailed) {
      continue;
    }
    // The model spans every symbolic byte and satisfies the overflow-path
    // constraints that guard the bug.
    ASSERT_EQ(bug.example_input.size(), kBytes);
    EXPECT_EQ(bug.example_input[65], 'A');
    EXPECT_EQ(bug.example_input[70], 'B');
    EXPECT_EQ(bug.example_input[2], '!');
  }
  // Independence filtering keeps overflow-support constraints when they
  // share a high symbol: the in[0] == in[68] branch forks on both sides.
  EXPECT_GE(result.paths_completed, 4u);
}

TEST(SupportOverflowTest, HighSymbolResultsAreWorkerCountIndependent) {
  auto m = CompileOrDie(R"(
    int umain(unsigned char *in, int n) {
      int score = 0;
      if (in[66] > 'm') { score += 1; }
      if (in[1] == in[67]) { score += 2; }
      if (in[71] == in[66]) { score += 4; }
      return score;
    }
  )");
  SymexLimits limits;
  SymexOptions one_opts;
  one_opts.jobs = 1;
  SymexResult one = SymbolicExecutor(*m, one_opts).Run("umain", 72, limits);
  EXPECT_TRUE(one.exhausted);
  SymexOptions four_opts;
  four_opts.jobs = 4;
  SymexResult four = SymbolicExecutor(*m, four_opts).Run("umain", 72, limits);
  EXPECT_EQ(one.paths_completed, four.paths_completed);
  EXPECT_EQ(one.forks, four.forks);
  EXPECT_EQ(one.instructions, four.instructions);
  EXPECT_EQ(four.steal_reintern, 0u);
}

TEST(OutputCaptureTest, SymbolicOutputBytesAreTracked) {
  auto m = CompileOrDie(R"(
    int umain(unsigned char *in, int n) {
      putchar(in[0] + 1);   /* symbolic byte flows to output */
      putchar('!');
      return 0;
    }
  )");
  SymexLimits limits;
  SymexResult result = SymbolicExecutor(*m).Run("umain", 1, limits);
  EXPECT_TRUE(result.exhausted);
  EXPECT_EQ(result.paths_completed, 1u);  // output does not fork
}

}  // namespace
}  // namespace overify
