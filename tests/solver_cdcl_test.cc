// CDCL machinery in the core backtracking solver (src/symex/solver.cc,
// docs/solver.md): clause learning, conflict-directed backjumping, Luby
// restarts, caller-supplied domain facts, and cross-query clause reuse.
//
// The load-bearing property throughout is docs/solver.md#determinism:
// learning and every tuning knob may only ever skip NON-models, so the
// verdict and the first model in the fixed (level, value) order are
// invariant across learning on/off, restart schedules, decay rates, and
// clause-store sizes. The randomized suites check that invariance directly
// and against an exhaustive reference; CMakeLists labels this binary
// "tier1;solver" so the solver CI job can sweep it alone under
// OVERIFY_CDCL_* parameter overrides.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "src/support/rng.h"
#include "src/symex/solver.h"
#include "src/testing/diff_harness.h"
#include "src/workloads/workloads.h"

namespace overify {
namespace {

class CdclTest : public ::testing::Test {
 protected:
  ExprContext ctx;

  const Expr* Sym(unsigned i) { return ctx.Symbol(i); }
  const Expr* C(uint64_t v, unsigned w = 8) { return ctx.Constant(v, w); }
  const Expr* W(unsigned i) { return ctx.ZExt(Sym(i), 32); }

  // True iff `bytes` satisfies every constraint.
  bool Satisfies(const std::vector<const Expr*>& constraints,
                 const std::vector<uint8_t>& bytes) {
    ctx.NewEvaluation();
    for (const Expr* c : constraints) {
      if (ctx.Evaluate(c, bytes) == 0) {
        return false;
      }
    }
    return true;
  }
};

// Random constraints over two byte symbols, weighted toward the shapes the
// core search's pruning layers act on: unary bounds (domain sweep), byte
// equalities, and non-unary arithmetic relations (clause learning fodder).
const Expr* RandomConstraint2(ExprContext& ctx, Rng& rng) {
  auto sym = [&] { return ctx.Symbol(static_cast<unsigned>(rng.NextBelow(2))); };
  auto wide = [&](const Expr* e) { return ctx.ZExt(e, 32); };
  auto byte = [&] { return ctx.Constant(rng.NextBelow(256), 8); };
  switch (rng.NextBelow(6)) {
    case 0:
      return ctx.Compare(ICmpPredicate::kEq, sym(), byte());
    case 1:
      return ctx.Compare(rng.NextBool() ? ICmpPredicate::kULT : ICmpPredicate::kULE, sym(),
                         byte());
    case 2:
      return ctx.Compare(rng.NextBool() ? ICmpPredicate::kUGT : ICmpPredicate::kUGE, sym(),
                         byte());
    case 3: {  // sum / xor relation (support spans both symbols)
      const Expr* lhs = ctx.Binary(rng.NextBool() ? ExprKind::kAdd : ExprKind::kXor,
                                   wide(ctx.Symbol(0)), wide(ctx.Symbol(1)));
      return ctx.Compare(rng.NextBool() ? ICmpPredicate::kEq : ICmpPredicate::kULE, lhs,
                         ctx.Constant(rng.NextBelow(520), 32));
    }
    case 4: {  // product relation (conflict-heavy)
      const Expr* lhs =
          ctx.Binary(ExprKind::kMul, wide(ctx.Symbol(0)), wide(ctx.Symbol(1)));
      return ctx.Compare(ICmpPredicate::kEq, lhs, ctx.Constant(rng.NextBelow(1024), 32));
    }
    default:
      return ctx.Not(ctx.Compare(rng.NextBool() ? ICmpPredicate::kULT : ICmpPredicate::kEq,
                                 sym(), byte()));
  }
}

// ---- Soundness against an exhaustive reference.

// The CDCL core's verdict must match brute-force enumeration of all 256^2
// assignments, and every SAT model must actually satisfy the original set.
TEST_F(CdclTest, RandomizedVerdictsMatchExhaustiveReference) {
  Rng rng(0xcdc1cdc1);
  for (int round = 0; round < 120; ++round) {
    std::vector<const Expr*> constraints;
    const size_t n = 1 + rng.NextBelow(4);
    for (size_t i = 0; i < n; ++i) {
      constraints.push_back(RandomConstraint2(ctx, rng));
    }

    bool reference_sat = false;
    std::vector<uint8_t> bytes(2);
    for (unsigned a = 0; a < 256 && !reference_sat; ++a) {
      for (unsigned b = 0; b < 256; ++b) {
        bytes[0] = static_cast<uint8_t>(a);
        bytes[1] = static_cast<uint8_t>(b);
        if (Satisfies(constraints, bytes)) {
          reference_sat = true;
          break;
        }
      }
    }

    CoreSolver core;
    std::vector<uint8_t> model;
    SatResult got = core.CheckSat(ctx, constraints, &model);
    ASSERT_NE(got, SatResult::kUnknown) << "round " << round;
    EXPECT_EQ(got == SatResult::kSat, reference_sat) << "round " << round;
    if (got == SatResult::kSat) {
      model.resize(2, 0);
      EXPECT_TRUE(Satisfies(constraints, model)) << "round " << round;
    }
  }
}

// ---- docs/solver.md#determinism: results are a pure function of the set.

// Learning on and off must return the same verdict AND the same model —
// clause pruning only skips assignments that cannot be models, so the
// first model in the fixed search order is reached either way.
TEST_F(CdclTest, LearningToggleKeepsVerdictAndCanonicalModel) {
  Rng rng(0xab1e5eed);
  for (int round = 0; round < 80; ++round) {
    std::vector<const Expr*> constraints;
    const size_t n = 1 + rng.NextBelow(4);
    for (size_t i = 0; i < n; ++i) {
      constraints.push_back(RandomConstraint2(ctx, rng));
    }

    CoreSolver with, without;
    CdclConfig off;
    off.learning = false;
    without.set_config(off);
    std::vector<uint8_t> model_with, model_without;
    SatResult a = with.CheckSat(ctx, constraints, &model_with);
    SatResult b = without.CheckSat(ctx, constraints, &model_without);
    ASSERT_EQ(a, b) << "round " << round;
    if (a == SatResult::kSat) {
      EXPECT_EQ(model_with, model_without) << "round " << round;
    }
  }
}

// Restart schedule, activity decay, and clause-store size are performance
// knobs only: every parameter point returns the default config's verdict
// and model. This is the in-process version of the CI solver job's
// OVERIFY_CDCL_* environment sweep.
TEST_F(CdclTest, RestartAndDecayParametersAreResultInvariant) {
  Rng rng(0x1b9f00d5);
  struct Point {
    uint64_t restart_base;
    double decay;
    size_t capacity;
  };
  const Point points[] = {
      {1, 0.5, 16}, {8, 0.999, 64}, {1ull << 30, 0.95, 512},
  };
  for (int round = 0; round < 40; ++round) {
    std::vector<const Expr*> constraints;
    const size_t n = 1 + rng.NextBelow(4);
    for (size_t i = 0; i < n; ++i) {
      constraints.push_back(RandomConstraint2(ctx, rng));
    }

    CoreSolver reference;
    std::vector<uint8_t> expected_model;
    SatResult expected = reference.CheckSat(ctx, constraints, &expected_model);
    for (const Point& p : points) {
      CdclConfig config;
      config.restart_base = p.restart_base;
      config.activity_decay = p.decay;
      config.clause_capacity = p.capacity;
      CoreSolver solver;
      solver.set_config(config);
      std::vector<uint8_t> model;
      ASSERT_EQ(solver.CheckSat(ctx, constraints, &model), expected)
          << "round " << round << " restart_base " << p.restart_base;
      if (expected == SatResult::kSat) {
        EXPECT_EQ(model, expected_model)
            << "round " << round << " restart_base " << p.restart_base;
      }
    }
  }
}

// ---- Backjumping.

// s0 >= 200, s1 unconstrained, s2 == s0 with s2 < 100: every s2 value
// conflicts through constraints whose support is {s0, s2} only, so
// exhausting the s2 level must jump straight over the s1 level back to s0
// (a non-chronological jump, counted once per skipped-level unwind).
TEST_F(CdclTest, BackjumpSkipsAnUnconstrainedMiddleLevel) {
  std::vector<const Expr*> constraints = {
      ctx.Compare(ICmpPredicate::kUGE, Sym(0), C(200)),
      ctx.Compare(ICmpPredicate::kULE, Sym(1), C(255)),  // keeps s1 in support
      ctx.Compare(ICmpPredicate::kEq, Sym(2), Sym(0)),
      ctx.Compare(ICmpPredicate::kULT, Sym(2), C(100)),
  };
  CoreSolver core;
  EXPECT_EQ(core.CheckSat(ctx, constraints, nullptr), SatResult::kUnsat);
  EXPECT_GT(core.conflicts(), 0u);
  EXPECT_GT(core.backjumps(), 0u);
}

// ---- Clause store bounds and export.

TEST_F(CdclTest, ExportedClausesRespectTheConfiguredBounds) {
  // s0 * s1 == 397 (prime, > 255) is UNSAT only after refuting every pair:
  // a conflict per candidate, so the store sees heavy traffic.
  std::vector<const Expr*> constraints = {
      ctx.Compare(ICmpPredicate::kEq, ctx.Binary(ExprKind::kMul, W(0), W(1)), C(397, 32)),
  };
  CoreSolver core;
  std::vector<LearnedClause> exported;
  CoreSolver::SearchExtras extras;
  extras.learned = &exported;
  EXPECT_EQ(core.CheckSat(ctx, constraints, nullptr, 1 << 22, nullptr, nullptr, &extras),
            SatResult::kUnsat);
  EXPECT_GT(core.conflicts(), 0u);
  EXPECT_GT(core.learned(), 0u);
  EXPECT_LE(exported.size(), core.config().max_export_clauses);
  for (const LearnedClause& clause : exported) {
    EXPECT_LE(clause.lits.size(), core.config().max_clause_literals);
    EXPECT_TRUE(std::is_sorted(clause.lits.begin(), clause.lits.end()))
        << "clause literals must ascend by symbol for cross-query matching";
  }
}

// ---- Caller-supplied domain facts (docs/solver.md#domains).

// Range facts from SearchExtras excise values from the per-level domains
// before any candidate is evaluated. The constraint here is non-unary, so
// the in-core unary sweep cannot discover the bounds on its own — the
// candidate-count gap isolates the caller-fact path. (In production the
// preprocessor only passes facts implied by the constraint set; this test
// supplies them directly and checks the mechanics.)
TEST_F(CdclTest, CallerRangeFactsNarrowTheSearchDomains) {
  std::vector<const Expr*> constraints = {
      ctx.Compare(ICmpPredicate::kEq, ctx.Binary(ExprKind::kAdd, W(0), W(1)), C(210, 32)),
  };
  std::vector<UInterval> ranges = {{100, 110}, {100, 110}};
  CoreSolver::SearchExtras extras;
  extras.ranges = &ranges;

  CoreSolver narrowed, blind;
  std::vector<uint8_t> model;
  ASSERT_EQ(narrowed.CheckSat(ctx, constraints, &model, 1 << 22, nullptr, nullptr, &extras),
            SatResult::kSat);
  model.resize(2, 0);
  EXPECT_TRUE(Satisfies(constraints, model));
  EXPECT_GE(model[0], 100);
  EXPECT_LE(model[0], 110);

  ASSERT_EQ(blind.CheckSat(ctx, constraints, nullptr), SatResult::kSat);
  EXPECT_LT(narrowed.candidates_tried(), blind.candidates_tried());
}

// The unary-constraint sweep narrows domains before the search proper:
// with s0 < 10 the product enumeration is bounded by the narrowed domain,
// nowhere near the naive 256 x 256.
TEST_F(CdclTest, UnaryConstraintSweepNarrowsDomainsBeforeSearch) {
  std::vector<const Expr*> constraints = {
      ctx.Compare(ICmpPredicate::kULT, Sym(0), C(10)),
      ctx.Compare(ICmpPredicate::kEq, ctx.Binary(ExprKind::kAdd, W(0), W(1)), C(264, 32)),
  };
  CoreSolver core;
  std::vector<uint8_t> model;
  ASSERT_EQ(core.CheckSat(ctx, constraints, &model), SatResult::kSat);
  model.resize(2, 0);
  EXPECT_TRUE(Satisfies(constraints, model));
  EXPECT_LT(core.candidates_tried(), 600u) << "unary sweep failed to narrow s0";
}

// ---- Clause consultation and seeding (docs/solver.md#reuse).

// A seed clause matching the search's would-be first model forces the
// solver to skip it and land on the next model in the fixed order, with the
// skip counted as a learned-clause hit. (The seed here is deliberately
// false as a nogood — seeds only ever PRUNE, so an unsound seed changes the
// model but exercises exactly the consultation path.)
TEST_F(CdclTest, SeededClauseSkipsItsAssignment) {
  std::vector<const Expr*> constraints = {
      ctx.Compare(ICmpPredicate::kEq, ctx.Binary(ExprKind::kAdd, W(0), W(1)), C(10, 32)),
  };
  CoreSolver plain;
  std::vector<uint8_t> first;
  ASSERT_EQ(plain.CheckSat(ctx, constraints, &first), SatResult::kSat);
  first.resize(2, 0);

  LearnedClause veto;
  veto.lits = {{0, first[0]}, {1, first[1]}};
  std::vector<const LearnedClause*> seeds = {&veto};
  CoreSolver::SearchExtras extras;
  extras.seeds = &seeds;

  CoreSolver seeded;
  std::vector<uint8_t> second;
  ASSERT_EQ(seeded.CheckSat(ctx, constraints, &second, 1 << 22, nullptr, nullptr, &extras),
            SatResult::kSat);
  second.resize(2, 0);
  EXPECT_NE(second, first);
  EXPECT_TRUE(Satisfies(constraints, second));
  EXPECT_GE(seeded.learned_hits(), 1u);
}

// Cross-query reuse through the chain: a follow-up query over a superset
// of an earlier SAT query's constraints starts from the cached entry's
// clauses. Verdicts are identical with learning on and off, and clause
// pruning alone never does more core work. (Restarts are pinned off here:
// they deliberately trade bounded replay for fresh blame masks, so the
// candidate count is only comparable with the schedule out of the way —
// docs/solver.md#restarts.)
TEST_F(CdclTest, ChainClauseReuseKeepsVerdictsAndNeverAddsWork) {
  const Expr* product =
      ctx.Compare(ICmpPredicate::kEq, ctx.Binary(ExprKind::kMul, W(0), W(1)), C(391, 32));
  const Expr* cap = ctx.Compare(ICmpPredicate::kULT, Sym(0), C(17));  // kills 17 * 23

  SolverChain learning(ctx), frozen(ctx);
  CdclConfig no_restarts;
  no_restarts.restart_base = 1ull << 30;
  learning.set_cdcl_config(no_restarts);
  frozen.set_learning(false);

  std::vector<const Expr*> q1 = {product};
  std::vector<const Expr*> q2 = {product, cap};
  std::vector<uint8_t> m1, m2;
  ASSERT_EQ(learning.CheckSat(q1, &m1), SatResult::kSat);
  ASSERT_EQ(frozen.CheckSat(q1, &m2), SatResult::kSat);
  EXPECT_EQ(m1, m2);
  EXPECT_EQ(learning.CheckSat(q2, nullptr), SatResult::kUnsat);
  EXPECT_EQ(frozen.CheckSat(q2, nullptr), SatResult::kUnsat);

  EXPECT_GT(learning.stats().core_conflicts, 0u);
  EXPECT_GT(learning.stats().core_learned, 0u);
  EXPECT_EQ(frozen.stats().core_learned, 0u);
  EXPECT_LE(learning.stats().core_candidates, frozen.stats().core_candidates);
}

// ---- Engine-level determinism with learning enabled.

// 1-vs-4-worker runs must be bit-identical with learning on: per-worker
// clause stores and cross-query seeding are schedule-dependent, so this
// holds only because pruning cannot change verdicts and bug-report models
// come from CheckSatCanonical (no seeds, no ranges). The full lattice
// sweeps this axis suite-wide; this is the focused solver-level slice.
TEST(CdclEngineTest, WorkersAgreeBitIdenticalWithLearningEnabled) {
  difftest::DiffOptions options;
  options.levels = {OptLevel::kOverify};
  options.jobs = {1, 4};
  options.interners = {true};
  options.preprocess = {true};
  options.learning = {true};
  options.strategies = {SearchStrategy::kDfs};
  options.limits.max_seconds = 60;
  difftest::DiffReport report = difftest::RunDifferential("cdcl_workers", R"(
    int umain(unsigned char *in, int n) {
      int d = in[0] - 'a';
      if (in[1] == 'q') { return in[2] / d; }   /* d == 0 when in[0] == 'a' */
      return 0;
    }
  )",
                                                          3, options);
  EXPECT_TRUE(report.ok) << report.diff;
  ASSERT_EQ(report.cells.size(), 2u);
  for (const auto& cell : report.cells) {
    ASSERT_FALSE(cell.signature.bugs.empty()) << cell.cell.Name();
    EXPECT_TRUE(cell.signature.bugs.front().confirmed) << cell.cell.Name();
  }
}

// ---- Canary (registered separately in CMakeLists: label `solver` only).

// The solver-hostile workload that motivated the CDCL core: factor at its
// full default width runs trial-division srem queries whose UNSAT cores
// span several bytes. The run must exhaust under a wall ceiling — a
// regression in learning, domain seeding, or restart gating shows up here
// as a blown deadline long before the full lattice job notices.
TEST(CdclCanaryTest, FactorStyleDivisionAtFullWidthExhausts) {
  const Workload* workload = FindWorkload("factor");
  ASSERT_NE(workload, nullptr);
  difftest::DiffOptions options;
  options.levels = {OptLevel::kOverify};
  options.jobs = {1};
  options.interners = {true};
  options.preprocess = {true};
  options.learning = {true};
  options.strategies = {SearchStrategy::kDfs};
  options.limits.max_paths = 400000;
  options.limits.max_seconds = 300;  // wall ceiling; Release exhausts far under
  difftest::DiffReport report = difftest::RunDifferential(*workload, /*sym_bytes=*/0, options);
  EXPECT_TRUE(report.ok) << report.diff;
  for (const auto& cell : report.cells) {
    EXPECT_TRUE(cell.signature.exhausted) << cell.cell.Name();
  }
}

}  // namespace
}  // namespace overify
