// The metrics registry (src/support/metrics.h): histogram bucket geometry
// and percentiles, merge algebra (associative + commutative, the property
// the pool's deterministic aggregation rests on), shard merging, name-table
// integrity, and the engine-level contract that order-independent counters
// merge identically across worker counts on exhausted runs
// (docs/observability.md).
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "src/driver/compiler.h"
#include "src/support/metrics.h"
#include "src/symex/executor.h"
#include "src/workloads/workloads.h"

namespace overify {
namespace {

TEST(LatencyHistogramTest, SmallValuesAreExact) {
  LatencyHistogram h;
  for (uint64_t ns = 0; ns < 4; ++ns) {
    EXPECT_EQ(LatencyHistogram::BucketFor(ns), ns);
    EXPECT_EQ(LatencyHistogram::BucketLow(LatencyHistogram::BucketFor(ns)), ns);
  }
}

TEST(LatencyHistogramTest, BucketBoundsCoverEveryValue) {
  // Every value lands in a bucket whose [low, high] range contains it, and
  // consecutive buckets tile the axis without gaps.
  for (uint64_t ns : {uint64_t{4}, uint64_t{5}, uint64_t{7}, uint64_t{8}, uint64_t{100},
                      uint64_t{1000}, uint64_t{123456}, uint64_t{1} << 40,
                      ~uint64_t{0} >> 1}) {
    size_t b = LatencyHistogram::BucketFor(ns);
    EXPECT_LE(LatencyHistogram::BucketLow(b), ns) << ns;
    EXPECT_GE(LatencyHistogram::BucketHigh(b), ns) << ns;
  }
  for (size_t b = 0; b + 1 < LatencyHistogram::kNumBuckets; ++b) {
    EXPECT_EQ(LatencyHistogram::BucketHigh(b) + 1, LatencyHistogram::BucketLow(b + 1)) << b;
  }
}

TEST(LatencyHistogramTest, RelativeErrorBounded) {
  // Two mantissa bits give a worst-case quantization error of 12.5% of the
  // value; the midpoint estimate halves that. Allow a slack factor.
  for (uint64_t ns = 4; ns < (uint64_t{1} << 30); ns = ns * 3 / 2 + 1) {
    size_t b = LatencyHistogram::BucketFor(ns);
    uint64_t lo = LatencyHistogram::BucketLow(b);
    uint64_t hi = LatencyHistogram::BucketHigh(b);
    EXPECT_LE(hi - lo, lo / 4 + 1) << "bucket too wide at " << ns;
  }
}

TEST(LatencyHistogramTest, PercentilesOfKnownDistribution) {
  LatencyHistogram h;
  for (uint64_t i = 1; i <= 100; ++i) {
    h.Record(i * 1000);  // 1us .. 100us
  }
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.max_ns(), 100000u);
  // Log-linear buckets quantize at ~12.5%; accept that band around the
  // exact percentile values.
  EXPECT_NEAR(static_cast<double>(h.P50()), 50000.0, 50000.0 * 0.15);
  EXPECT_NEAR(static_cast<double>(h.P95()), 95000.0, 95000.0 * 0.15);
  EXPECT_LE(h.ValueAt(1.0), h.max_ns());
}

TEST(LatencyHistogramTest, EmptyHistogramIsZero) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.P50(), 0u);
  EXPECT_EQ(h.P95(), 0u);
  EXPECT_EQ(h.max_ns(), 0u);
}

// Deterministic pseudo-random latencies for the merge-algebra properties.
uint64_t NextLcg(uint64_t& s) {
  s = s * 6364136223846793005ull + 1442695040888963407ull;
  return (s >> 33) % 1000000;
}

TEST(LatencyHistogramTest, MergeIsAssociativeAndCommutative) {
  LatencyHistogram a;
  LatencyHistogram b;
  LatencyHistogram c;
  uint64_t seed = 42;
  for (int i = 0; i < 500; ++i) a.Record(NextLcg(seed));
  for (int i = 0; i < 300; ++i) b.Record(NextLcg(seed));
  for (int i = 0; i < 700; ++i) c.Record(NextLcg(seed));

  auto equal = [](const LatencyHistogram& x, const LatencyHistogram& y) {
    if (x.count() != y.count() || x.sum_ns() != y.sum_ns() || x.max_ns() != y.max_ns()) {
      return false;
    }
    for (size_t i = 0; i < LatencyHistogram::kNumBuckets; ++i) {
      if (x.bucket(i) != y.bucket(i)) {
        return false;
      }
    }
    return true;
  };

  // (a + b) + c == a + (b + c)
  LatencyHistogram ab = a;
  ab.Merge(b);
  LatencyHistogram ab_c = ab;
  ab_c.Merge(c);
  LatencyHistogram bc = b;
  bc.Merge(c);
  LatencyHistogram a_bc = a;
  a_bc.Merge(bc);
  EXPECT_TRUE(equal(ab_c, a_bc));

  // a + b == b + a
  LatencyHistogram ba = b;
  ba.Merge(a);
  EXPECT_TRUE(equal(ab, ba));
}

TEST(MetricsShardTest, MergeSumsCountersAndHistograms) {
  MetricsShard a;
  MetricsShard b;
  a.Inc(Counter::kSolverQueries);
  a.Add(Counter::kInstructions, 100);
  a.Record(Hist::kSolverQueryNs, 500);
  b.Add(Counter::kSolverQueries, 4);
  b.Record(Hist::kSolverQueryNs, 700);
  b.Record(Hist::kCoreSearchNs, 50);
  a.Merge(b);
  EXPECT_EQ(a.Get(Counter::kSolverQueries), 5u);
  EXPECT_EQ(a.Get(Counter::kInstructions), 100u);
  EXPECT_EQ(a.hist(Hist::kSolverQueryNs).count(), 2u);
  EXPECT_EQ(a.hist(Hist::kSolverQueryNs).sum_ns(), 1200u);
  EXPECT_EQ(a.hist(Hist::kCoreSearchNs).count(), 1u);
  EXPECT_EQ(b.Get(Counter::kSolverQueries), 4u) << "merge must not mutate the source";
}

TEST(MetricsShardTest, CounterAndHistNamesAreUniqueAndNonEmpty) {
  std::set<std::string> names;
  for (size_t i = 0; i < kNumCounters; ++i) {
    std::string name = CounterName(static_cast<Counter>(i));
    EXPECT_FALSE(name.empty());
    EXPECT_TRUE(names.insert(name).second) << "duplicate counter name: " << name;
  }
  for (size_t i = 0; i < kNumHists; ++i) {
    std::string name = HistName(static_cast<Hist>(i));
    EXPECT_FALSE(name.empty());
    EXPECT_TRUE(names.insert(name).second) << "duplicate histogram name: " << name;
  }
}

TEST(MetricsShardTest, DeterministicFlagsMatchContract) {
  // The determinism contract (docs/scheduler.md): path counts, instruction
  // and fork totals, and annotation hits merge identically across worker
  // counts on exhausted runs; solver/steal/fault counters are
  // schedule-dependent.
  EXPECT_TRUE(CounterIsDeterministic(Counter::kPathsCompleted));
  EXPECT_TRUE(CounterIsDeterministic(Counter::kInstructions));
  EXPECT_TRUE(CounterIsDeterministic(Counter::kForks));
  EXPECT_FALSE(CounterIsDeterministic(Counter::kSolverQueries));
  EXPECT_FALSE(CounterIsDeterministic(Counter::kSteals));
  EXPECT_FALSE(CounterIsDeterministic(Counter::kFaultDraws));
}

TEST(MetricsShardTest, RenderTableShowsNonZeroCountersAndHists) {
  MetricsShard m;
  m.Add(Counter::kSolverQueries, 7);
  m.Record(Hist::kSolverQueryNs, 1000);
  std::string table = RenderMetricsTable(m).ToString();
  EXPECT_NE(table.find("solver.queries"), std::string::npos) << table;
  EXPECT_NE(table.find("7"), std::string::npos) << table;
  EXPECT_NE(table.find(HistName(Hist::kSolverQueryNs)), std::string::npos) << table;
  // Zero counters stay out of the default rendering.
  EXPECT_EQ(table.find(CounterName(Counter::kStealReintern)), std::string::npos) << table;
}

// ---- Engine-level properties ----

CompileResult CompileWc() {
  Compiler compiler;
  CompileResult compiled =
      compiler.Compile(FindWorkload("wc")->source, OptLevel::kOverify, "wc");
  EXPECT_TRUE(compiled.ok) << compiled.errors;
  return compiled;
}

SymexResult RunWithOptions(CompileResult& compiled, const SymexOptions& options) {
  SymexLimits limits;
  limits.max_seconds = 60;
  return Analyze(compiled, "umain", 5, limits, options);
}

SymexResult RunWithJobs(CompileResult& compiled, unsigned jobs) {
  SymexOptions options;
  options.jobs = jobs;
  return RunWithOptions(compiled, options);
}

TEST(MetricsEngineTest, MergedDeterministicCountersIdenticalAcrossWorkerCounts) {
  CompileResult m = CompileWc();
  SymexResult one = RunWithJobs(m, 1);
  ASSERT_TRUE(one.ok);
  ASSERT_TRUE(one.exhausted);
  for (unsigned jobs : {2u, 4u, 8u}) {
    SymexResult many = RunWithJobs(m, jobs);
    ASSERT_TRUE(many.ok);
    ASSERT_TRUE(many.exhausted) << jobs << " workers";
    for (size_t i = 0; i < kNumCounters; ++i) {
      Counter c = static_cast<Counter>(i);
      if (!CounterIsDeterministic(c)) {
        continue;
      }
      EXPECT_EQ(one.metrics.Get(c), many.metrics.Get(c))
          << CounterName(c) << " diverged at " << jobs << " workers";
    }
  }
}

TEST(MetricsEngineTest, LegacyViewsMatchRegistry) {
  CompileResult m = CompileWc();
  SymexResult r = RunWithJobs(m, 2);
  ASSERT_TRUE(r.ok);
  // FinalizeFromMetrics filled every legacy field from the registry; spot
  // checks across the counter families.
  EXPECT_EQ(r.paths_completed, r.metrics.Get(Counter::kPathsCompleted));
  EXPECT_EQ(r.instructions, r.metrics.Get(Counter::kInstructions));
  EXPECT_EQ(r.forks, r.metrics.Get(Counter::kForks));
  EXPECT_EQ(r.solver.queries, r.metrics.Get(Counter::kSolverQueries));
  EXPECT_EQ(r.solver.presolve_shortcuts, r.metrics.Get(Counter::kPresolveShortcuts));
  EXPECT_EQ(r.steals, r.metrics.Get(Counter::kSteals));
  EXPECT_EQ(r.paths_terminated, r.paths_infeasible + r.paths_bug + r.paths_limit +
                                    r.paths_unexplored + r.paths_unknown);
  EXPECT_GT(r.solver.queries, 0u);
}

TEST(MetricsEngineTest, TimingOnRecordsLatencies) {
  CompileResult m = CompileWc();
  SymexResult r = RunWithJobs(m, 1);  // metrics_timing defaults on
  ASSERT_TRUE(r.ok);
  const LatencyHistogram& h = r.metrics.hist(Hist::kSolverQueryNs);
  EXPECT_EQ(h.count(), r.solver.queries);
  EXPECT_GT(h.P95(), 0u);
  EXPECT_GE(h.max_ns(), h.P50());
  EXPECT_GT(r.metrics.hist(Hist::kPathRunNs).count(), 0u);
}

TEST(MetricsEngineTest, TimingOffLeavesHistogramsEmptyAndCountersIntact) {
  CompileResult m = CompileWc();
  SymexOptions options;
  options.metrics_timing = false;
  SymexResult off = RunWithOptions(m, options);
  ASSERT_TRUE(off.ok);
  for (size_t i = 0; i < kNumHists; ++i) {
    EXPECT_EQ(off.metrics.hist(static_cast<Hist>(i)).count(), 0u)
        << HistName(static_cast<Hist>(i));
  }
  SymexResult on = RunWithJobs(m, 1);
  EXPECT_EQ(off.paths_completed, on.paths_completed);
  EXPECT_EQ(off.solver.queries, on.solver.queries);
  EXPECT_EQ(off.instructions, on.instructions);
}

}  // namespace
}  // namespace overify
