// Tests for the textual IR parser and printer round-trip.
#include <gtest/gtest.h>

#include "src/ir/parser.h"
#include "src/ir/printer.h"
#include "src/ir/verifier.h"

namespace overify {
namespace {

TEST(ParserTest, ParsesSimpleFunction) {
  auto m = ParseModuleOrDie(R"(
    func @f(%a: i32, %b: i32) -> i32 {
    entry:
      %sum = add %a, %b
      ret %sum
    }
  )");
  Function* f = m->GetFunction("f");
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->NumArgs(), 2u);
  EXPECT_EQ(f->entry()->size(), 2u);
  EXPECT_TRUE(VerifyModule(*m).empty());
}

TEST(ParserTest, ParsesControlFlowAndPhis) {
  auto m = ParseModuleOrDie(R"(
    func @abs(%x: i32) -> i32 {
    entry:
      %neg = icmp slt %x, i32 0
      br %neg, label %flip, label %done
    flip:
      %m = sub i32 0, %x
      br label %done
    done:
      %r = phi i32 [ %x, %entry ], [ %m, %flip ]
      ret %r
    }
  )");
  EXPECT_TRUE(VerifyModule(*m).empty());
  Function* f = m->GetFunction("abs");
  EXPECT_EQ(f->NumBlocks(), 3u);
}

TEST(ParserTest, ForwardReferenceInPhiAcrossBackEdge) {
  auto m = ParseModuleOrDie(R"(
    func @count(%n: i32) -> i32 {
    entry:
      br label %loop
    loop:
      %i = phi i32 [ i32 0, %entry ], [ %next, %loop ]
      %next = add %i, i32 1
      %done = icmp sge %next, %n
      br %done, label %exit, label %loop
    exit:
      ret %next
    }
  )");
  EXPECT_TRUE(VerifyModule(*m).empty());
}

TEST(ParserTest, ParsesGlobalsCallsAndGep) {
  auto m = ParseModuleOrDie(R"(
    global @msg : [3 x i8] const = "hi\0"
    declare @use(i8) -> void
    func @f() -> i8 {
    entry:
      %p = gep [3 x i8], @msg, i64 0, i64 1
      %c = load %p
      call @use(%c)
      ret %c
    }
  )");
  EXPECT_TRUE(VerifyModule(*m).empty());
  EXPECT_NE(m->GetGlobal("msg"), nullptr);
  EXPECT_TRUE(m->GetFunction("use")->IsDeclaration());
}

TEST(ParserTest, ParsesAllOperations) {
  auto m = ParseModuleOrDie(R"(
    func @ops(%a: i32, %p: i32*) -> i32 {
    entry:
      %s = alloca i32
      store %a, %s
      %v = load %s
      %b1 = sub %v, i32 1
      %b2 = mul %b1, i32 3
      %b3 = udiv %b2, i32 2
      %b4 = sdiv %b3, i32 2
      %b5 = urem %b4, i32 7
      %b6 = srem %b5, i32 5
      %b7 = and %b6, i32 255
      %b8 = or %b7, i32 1
      %b9 = xor %b8, i32 15
      %b10 = shl %b9, i32 1
      %b11 = lshr %b10, i32 1
      %b12 = ashr %b11, i32 1
      %w = zext %b12 to i64
      %t = trunc %w to i8
      %x = sext %t to i32
      %c = icmp ne %x, i32 0
      %sel = select %c, %x, i32 42
      check %c, assert, "x must be nonzero"
      ret %sel
    }
  )");
  EXPECT_TRUE(VerifyModule(*m).empty());
  EXPECT_EQ(m->GetFunction("ops")->InstructionCount(), 22u);
}

TEST(ParserTest, RoundTripIsStable) {
  auto m1 = ParseModuleOrDie(R"(
    global @tab : [2 x i32] = [1, 0, 0, 0, 2, 0, 0, 0]
    func @f(%n: i32) -> i32 {
    entry:
      br label %loop
    loop:
      %i = phi i32 [ i32 0, %entry ], [ %ni, %loop ]
      %acc = phi i32 [ i32 0, %entry ], [ %nacc, %loop ]
      %ix = zext %i to i64
      %p = gep [2 x i32], @tab, i64 0, %ix
      %v = load %p
      %nacc = add %acc, %v
      %ni = add %i, i32 1
      %done = icmp uge %ni, %n
      br %done, label %exit, label %loop
    exit:
      ret %nacc
    }
  )");
  std::string printed1 = PrintModule(*m1);
  auto m2 = ParseModuleOrDie(printed1);
  std::string printed2 = PrintModule(*m2);
  EXPECT_EQ(printed1, printed2);
  EXPECT_TRUE(VerifyModule(*m2).empty());
}

TEST(ParserTest, ReportsUnknownValue) {
  DiagnosticEngine diags;
  auto m = ParseModule(R"(
    func @f() -> i32 {
    entry:
      ret %nope
    }
  )",
                       diags);
  EXPECT_EQ(m, nullptr);
  EXPECT_TRUE(diags.HasErrors());
}

TEST(ParserTest, ReportsUnresolvedForwardReference) {
  DiagnosticEngine diags;
  auto m = ParseModule(R"(
    func @f(%c: i1) -> i32 {
    entry:
      br label %loop
    loop:
      %x = phi i32 [ i32 0, %entry ], [ %missing, %loop ]
      br %c, label %loop, label %out
    out:
      ret %x
    }
  )",
                       diags);
  EXPECT_EQ(m, nullptr);
  EXPECT_TRUE(diags.HasErrors());
}

TEST(ParserTest, ReportsUndefinedLabel) {
  DiagnosticEngine diags;
  auto m = ParseModule(R"(
    func @f() -> void {
    entry:
      br label %nowhere
    }
  )",
                       diags);
  EXPECT_EQ(m, nullptr);
  EXPECT_TRUE(diags.HasErrors());
}

TEST(ParserTest, ReportsTypeMismatch) {
  DiagnosticEngine diags;
  auto m = ParseModule(R"(
    func @f(%a: i32, %b: i8) -> i32 {
    entry:
      %x = add %a, %b
      ret %x
    }
  )",
                       diags);
  EXPECT_EQ(m, nullptr);
  EXPECT_TRUE(diags.HasErrors());
}

TEST(ParserTest, ReportsDuplicateDefinition) {
  DiagnosticEngine diags;
  auto m = ParseModule(R"(
    func @f(%a: i32) -> i32 {
    entry:
      %x = add %a, i32 1
      %x = add %a, i32 2
      ret %x
    }
  )",
                       diags);
  EXPECT_EQ(m, nullptr);
  EXPECT_TRUE(diags.HasErrors());
}

TEST(ParserTest, ParsesCommentsAndNegativeNumbers) {
  auto m = ParseModuleOrDie(R"(
    ; leading comment
    func @f() -> i32 {
    entry:            ; trailing comment
      %x = add i32 -3, i32 -4
      ret %x
    }
  )");
  EXPECT_TRUE(VerifyModule(*m).empty());
}

TEST(ParserTest, ParsesVoidFunctionAndUnreachable) {
  auto m = ParseModuleOrDie(R"(
    func @f(%c: i1) -> void {
    entry:
      br %c, label %a, label %b
    a:
      ret
    b:
      unreachable
    }
  )");
  EXPECT_TRUE(VerifyModule(*m).empty());
}

TEST(ParserTest, BlockOrderFollowsLabels) {
  auto m = ParseModuleOrDie(R"(
    func @f(%c: i1) -> void {
    entry:
      br %c, label %second, label %third
    second:
      ret
    third:
      ret
    }
  )");
  Function* f = m->GetFunction("f");
  std::vector<std::string> names;
  for (BasicBlock& bb : *f) {
    names.push_back(bb.name());
  }
  ASSERT_EQ(names.size(), 3u);
  EXPECT_EQ(names[0], "entry");
  EXPECT_EQ(names[1], "second");
  EXPECT_EQ(names[2], "third");
}

}  // namespace
}  // namespace overify
