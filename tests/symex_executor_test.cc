// End-to-end tests for the symbolic-execution engine on MiniC programs.
#include <gtest/gtest.h>

#include "src/frontend/codegen.h"
#include "src/ir/verifier.h"
#include "src/symex/executor.h"

namespace overify {
namespace {

std::unique_ptr<Module> CompileOrDie(const std::string& source) {
  DiagnosticEngine diags;
  auto m = CompileMiniC(source, "symex_test", diags);
  EXPECT_NE(m, nullptr) << diags.ToString();
  if (m != nullptr) {
    EXPECT_TRUE(VerifyModule(*m).empty());
  }
  return m;
}

SymexResult RunOn(Module& m, const std::string& entry, unsigned bytes,
                  uint64_t max_paths = 100000) {
  SymbolicExecutor engine(m);
  SymexLimits limits;
  limits.max_paths = max_paths;
  limits.max_seconds = 60;
  return engine.Run(entry, bytes, limits);
}

TEST(ExecutorTest, StraightLineSinglePath) {
  auto m = CompileOrDie(R"(
    int umain(unsigned char *in, int n) {
      int x = in[0];
      int y = x * 2 + 1;
      return y;
    }
  )");
  SymexResult result = RunOn(*m, "umain", 2);
  EXPECT_TRUE(result.exhausted);
  EXPECT_EQ(result.paths_completed, 1u);
  EXPECT_EQ(result.forks, 0u);
  EXPECT_TRUE(result.bugs.empty());
}

TEST(ExecutorTest, OneBranchTwoPaths) {
  auto m = CompileOrDie(R"(
    int umain(unsigned char *in, int n) {
      if (in[0] == 'x') { return 1; }
      return 0;
    }
  )");
  SymexResult result = RunOn(*m, "umain", 1);
  EXPECT_TRUE(result.exhausted);
  EXPECT_EQ(result.paths_completed, 2u);
  EXPECT_EQ(result.forks, 1u);
}

TEST(ExecutorTest, InfeasiblePathNotExplored) {
  auto m = CompileOrDie(R"(
    int umain(unsigned char *in, int n) {
      if (in[0] > 100) {
        if (in[0] < 50) {
          return 99;  // unreachable: contradictory conditions
        }
        return 1;
      }
      return 0;
    }
  )");
  SymexResult result = RunOn(*m, "umain", 1);
  EXPECT_TRUE(result.exhausted);
  EXPECT_EQ(result.paths_completed, 2u);  // not 3
}

TEST(ExecutorTest, LoopOverInputPathsScaleWithLength) {
  // One path per possible string length: n+1 paths for n symbolic bytes.
  auto m = CompileOrDie(R"(
    int umain(unsigned char *in, int n) {
      int len = 0;
      while (in[len]) { len++; }
      return len;
    }
  )");
  SymexResult result = RunOn(*m, "umain", 4);
  EXPECT_TRUE(result.exhausted);
  EXPECT_EQ(result.paths_completed, 5u);
}

TEST(ExecutorTest, FindsDivisionByZero) {
  auto m = CompileOrDie(R"(
    int umain(unsigned char *in, int n) {
      int d = in[0] - 'a';
      return 100 / d;
    }
  )");
  SymexResult result = RunOn(*m, "umain", 1);
  ASSERT_TRUE(result.FoundBug(BugKind::kDivByZero));
  // The reproducing input is 'a'.
  for (const BugReport& bug : result.bugs) {
    if (bug.kind == BugKind::kDivByZero) {
      ASSERT_FALSE(bug.example_input.empty());
      EXPECT_EQ(bug.example_input[0], 'a');
    }
  }
  // The non-crashing continuation still completes.
  EXPECT_GE(result.paths_completed, 1u);
}

TEST(ExecutorTest, FindsOutOfBoundsAccess) {
  auto m = CompileOrDie(R"(
    int umain(unsigned char *in, int n) {
      int table[4] = {10, 20, 30, 40};
      int i = in[0];
      return table[i];  // OOB whenever in[0] > 3
    }
  )");
  SymexResult result = RunOn(*m, "umain", 1);
  EXPECT_TRUE(result.FoundBug(BugKind::kOutOfBounds));
}

TEST(ExecutorTest, BoundsRespectedWhenMasked) {
  auto m = CompileOrDie(R"(
    int umain(unsigned char *in, int n) {
      int table[4] = {10, 20, 30, 40};
      int i = in[0] & 3;
      return table[i];
    }
  )");
  SymexResult result = RunOn(*m, "umain", 1);
  EXPECT_FALSE(result.FoundBug(BugKind::kOutOfBounds));
  EXPECT_TRUE(result.exhausted);
}

TEST(ExecutorTest, FindsFailedCheck) {
  auto m = CompileOrDie(R"(
    int umain(unsigned char *in, int n) {
      __check(in[0] != 'Q', "Q is forbidden");
      return 0;
    }
  )");
  SymexResult result = RunOn(*m, "umain", 1);
  ASSERT_TRUE(result.FoundBug(BugKind::kCheckFailed));
  for (const BugReport& bug : result.bugs) {
    if (bug.kind == BugKind::kCheckFailed) {
      ASSERT_FALSE(bug.example_input.empty());
      EXPECT_EQ(bug.example_input[0], 'Q');
      EXPECT_NE(bug.message.find("Q is forbidden"), std::string::npos);
    }
  }
}

TEST(ExecutorTest, NullDereferenceDetected) {
  auto m = CompileOrDie(R"(
    int umain(unsigned char *in, int n) {
      unsigned char *p = 0;
      if (in[0] == 'z') { p = in; }
      return *p;
    }
  )");
  SymexResult result = RunOn(*m, "umain", 1);
  EXPECT_TRUE(result.FoundBug(BugKind::kNullDeref));
  EXPECT_GE(result.paths_completed, 1u);  // the 'z' path survives
}

TEST(ExecutorTest, FunctionCallsWork) {
  auto m = CompileOrDie(R"(
    int square(int x) { return x * x; }
    int umain(unsigned char *in, int n) {
      int v = square(in[0]);
      if (v == 49) { return 1; }  // in[0] == 7 or 249 (mod 2^32 arithmetics)
      return 0;
    }
  )");
  SymexResult result = RunOn(*m, "umain", 1);
  EXPECT_TRUE(result.exhausted);
  EXPECT_EQ(result.paths_completed, 2u);
}

TEST(ExecutorTest, RecursionExecutes) {
  auto m = CompileOrDie(R"(
    int fact(int x) { return x <= 1 ? 1 : x * fact(x - 1); }
    int umain(unsigned char *in, int n) {
      return fact(in[0] & 7);
    }
  )");
  SymexResult result = RunOn(*m, "umain", 1);
  EXPECT_TRUE(result.exhausted);
  // Depth of recursion forks on x <= 1 per level: several paths complete.
  EXPECT_GE(result.paths_completed, 2u);
  EXPECT_TRUE(result.bugs.empty());
}

TEST(ExecutorTest, GlobalTablesReadable) {
  auto m = CompileOrDie(R"(
    const unsigned char key[4] = {1, 2, 3, 4};
    int umain(unsigned char *in, int n) {
      int i = 0;
      while (i < 4) {
        if (in[i] != key[i]) { return 0; }
        i++;
      }
      return 1;
    }
  )");
  SymexResult result = RunOn(*m, "umain", 4);
  EXPECT_TRUE(result.exhausted);
  // Paths: fail at position 0..3 plus full match.
  EXPECT_EQ(result.paths_completed, 5u);
}

TEST(ExecutorTest, WriteToReadOnlyGlobalIsBug) {
  auto m = CompileOrDie(R"(
    const char msg[3] = "ab";
    int umain(unsigned char *in, int n) {
      char *p = (char*)0;
      p = p;  // silence unused
      *(char*)msg = 'x';
      return 0;
    }
  )");
  // The cast of msg (const char[3] decays via index) — simpler: direct store.
  (void)m;
  auto m2 = CompileOrDie(R"(
    char buf[3] = "ab";
    int umain(unsigned char *in, int n) {
      buf[0] = in[0];
      return buf[0];
    }
  )");
  SymexResult result = RunOn(*m2, "umain", 1);
  EXPECT_TRUE(result.bugs.empty());
  EXPECT_EQ(result.paths_completed, 1u);
}

TEST(ExecutorTest, PutcharCollectsOutput) {
  auto m = CompileOrDie(R"(
    int umain(unsigned char *in, int n) {
      putchar('h');
      putchar('i');
      return 0;
    }
  )");
  SymexResult result = RunOn(*m, "umain", 1);
  EXPECT_TRUE(result.exhausted);
  EXPECT_TRUE(result.bugs.empty());
}

TEST(ExecutorTest, SymbolicStoreThenLoad) {
  auto m = CompileOrDie(R"(
    int umain(unsigned char *in, int n) {
      unsigned char buf[8];
      int i = in[0] & 7;
      int j = in[1] & 7;
      buf[i] = 42;
      if (buf[j] == 42 && i != j) { return 2; }
      return 1;
    }
  )");
  SymexResult result = RunOn(*m, "umain", 2);
  EXPECT_TRUE(result.exhausted);
  // Both outcomes must be reachable: j == i gives 42 trivially; j != i can
  // read uninitialized (0) or... uninitialized stack reads are 0 here, so
  // returning 2 requires buf[j]==42 with i!=j, impossible. Expect paths for
  // both branch outcomes of the compound condition but only return 1 paths.
  EXPECT_GE(result.paths_completed, 1u);
  EXPECT_TRUE(result.bugs.empty());
}

TEST(ExecutorTest, PathLimitRespected) {
  auto m = CompileOrDie(R"(
    int umain(unsigned char *in, int n) {
      int count = 0;
      for (int i = 0; i < n; i++) {
        if (in[i] == 'a') { count++; }
      }
      return count;
    }
  )");
  SymbolicExecutor engine(*m);
  SymexLimits limits;
  limits.max_paths = 4;  // far fewer than 2^6
  limits.max_seconds = 60;
  SymexResult result = engine.Run("umain", 6, limits);
  EXPECT_FALSE(result.exhausted);
  EXPECT_EQ(result.paths_completed, 4u);
}

TEST(ExecutorTest, ExhaustiveBranchingCount) {
  // Classic 2^n paths: one branch per input byte.
  auto m = CompileOrDie(R"(
    int umain(unsigned char *in, int n) {
      int count = 0;
      for (int i = 0; i < n; i++) {
        if (in[i] == 'a') { count++; }
      }
      return count;
    }
  )");
  SymexResult result = RunOn(*m, "umain", 5);
  EXPECT_TRUE(result.exhausted);
  EXPECT_EQ(result.paths_completed, 32u);  // 2^5
}

}  // namespace
}  // namespace overify
