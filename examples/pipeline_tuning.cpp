// Pipeline tuning: sweep the if-conversion branch-cost parameter and watch
// the paper's central tension appear as a curve — verification cost falls as
// branches are priced higher, while (CPU-modeled) execution cost rises.
//
//   $ ./pipeline_tuning
//
// §3: "compilers can help by providing access to built-in heuristics"; this
// example is exactly that knob, exposed through PipelineOptions.
#include <cstdio>

#include "src/driver/compiler.h"
#include "src/exec/interpreter.h"
#include "src/support/string_utils.h"
#include "src/support/table.h"
#include "src/workloads/textgen.h"

using namespace overify;

namespace {

const char* kProgram = R"(
int score(unsigned char *s) {
  int total = 0;
  for (long i = 0; s[i]; i++) {
    int c = s[i];
    if (isalpha(c)) { total += 2; }
    else if (isdigit(c)) { total += 1; }
    if (c == '!') { total += 5; }
  }
  return total;
}
int umain(unsigned char *in, int n) { return score(in); }
)";

}  // namespace

int main() {
  std::printf("== pipeline_tuning: the branch-cost knob ==\n\n");

  TextGenOptions text_options;
  text_options.approx_words = 500;
  std::string text = GenerateText(text_options);

  TextTable table({"branch cost", "branches converted", "paths (5 bytes)", "verif instrs",
                   "exec cost units"});

  for (int branch_cost : {0, 2, 4, 8, 32, 1 << 20}) {
    PipelineOptions options = PipelineOptions::For(OptLevel::kOverify);
    options.if_converter.branch_cost = branch_cost;
    options.if_convert = branch_cost > 0;

    Compiler compiler;
    CompileResult compiled = compiler.CompileWithOptions(kProgram, options);
    if (!compiled.ok) {
      std::fprintf(stderr, "compile failed:\n%s\n", compiled.errors.c_str());
      return 1;
    }
    auto stat_it = compiled.pass_stats.find("ifconvert.branches_converted");
    int64_t converted = stat_it == compiled.pass_stats.end() ? 0 : stat_it->second;

    SymexLimits limits;
    limits.max_paths = 300000;
    limits.max_seconds = 20;
    SymexResult analysis = Analyze(compiled, "umain", 5, limits);

    Interpreter interp(*compiled.module);
    InterpResult run = interp.Run("umain", text);

    table.AddRow({branch_cost == (1 << 20) ? "infinite (-OVERIFY)" : std::to_string(branch_cost),
                  std::to_string(converted),
                  std::to_string(analysis.paths_completed) +
                      (analysis.exhausted ? "" : " (capped)"),
                  std::to_string(analysis.instructions),
                  std::to_string(run.cost_units)});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("reading: raising the modeled branch cost converts more branches, shrinking\n"
              "the path count (verification wins) while execution cost creeps up — the\n"
              "conflicting requirements the paper's -OVERIFY switch resolves by build mode.\n");
  return 0;
}
