// Bug hunting: run the verification build of a small "config parser" and let
// the engine produce concrete crashing inputs.
//
//   $ ./find_bug
//
// The program contains two planted bugs (a fixed-size buffer overflow via
// strcpy and a division by a parsed value that can be zero). Both are found
// with reproducing inputs, and the verify-flavor libc reports the strcpy
// misuse at its precondition — "closer to the root cause" (§3 of the paper)
// — rather than as a raw memory fault deep inside a copy loop.
#include <cstdio>

#include "src/driver/compiler.h"
#include "src/exec/interpreter.h"

using namespace overify;

namespace {

// Parses "<name>=<digit>" and computes 100/<digit>; both steps are buggy.
const char* kParser = R"(
int parse_and_divide(unsigned char *text) {
  char name[4];
  long eq = 0;
  while (text[eq] && text[eq] != '=') { eq++; }
  if (!text[eq]) { return -1; }

  /* BUG 1: name can be longer than 3 characters. */
  long i = 0;
  while (i < eq) { name[i] = (char)text[i]; i++; }
  name[i] = 0;

  int value = atoi((char*)text + eq + 1);
  /* BUG 2: value may be zero. */
  return 100 / value;
}
int umain(unsigned char *in, int n) { return parse_and_divide(in); }
)";

}  // namespace

int main() {
  std::printf("== find_bug ==\n\n");
  Compiler compiler;
  CompileResult compiled = compiler.Compile(kParser, OptLevel::kOverify);
  if (!compiled.ok) {
    std::fprintf(stderr, "compile error:\n%s\n", compiled.errors.c_str());
    return 1;
  }

  SymexLimits limits;
  limits.max_paths = 100000;
  limits.max_seconds = 30;
  SymexResult result = Analyze(compiled, "umain", 6, limits);

  std::printf("explored %llu paths (%s); %zu distinct bugs found:\n\n",
              static_cast<unsigned long long>(result.paths_completed),
              result.exhausted ? "exhausted" : "budget hit", result.bugs.size());

  for (const BugReport& bug : result.bugs) {
    std::printf("  [%s] %s\n", BugKindName(bug.kind), bug.message.c_str());
    std::printf("    reproducing input: \"");
    for (uint8_t byte : bug.example_input) {
      if (byte >= 32 && byte < 127) {
        std::printf("%c", byte);
      } else {
        std::printf("\\x%02x", byte);
      }
    }
    std::printf("\"\n");

    // Validate the witness end-to-end on the concrete interpreter.
    Interpreter interp(*compiled.module);
    InterpResult run = interp.Run(compiled.module->GetFunction("umain"), bug.example_input);
    std::printf("    interpreter confirms: %s\n\n",
                run.ok ? "no trap (latent path)" : run.error.c_str());
  }
  return 0;
}
