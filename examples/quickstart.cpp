// Quickstart: compile the paper's wc with -OVERIFY and symbolically verify
// it — the 60-second tour of the toolkit.
//
//   $ ./quickstart
//
// Walks through: (1) compiling a MiniC program at two optimization levels,
// (2) printing the branch-free -OVERIFY loop body (Listing 2 of the paper),
// (3) exhaustively exploring all paths, and (4) comparing the exploration
// cost between the levels.
#include <cstdio>

#include "src/driver/compiler.h"
#include "src/ir/printer.h"

using namespace overify;

namespace {

const char* kProgram = R"(
int wc(unsigned char *str, int any) {
  int res = 0;
  int new_word = 1;
  for (unsigned char *p = str; *p; ++p) {
    if (isspace((int)*p) || (any && !isalpha((int)*p))) {
      new_word = 1;
    } else {
      if (new_word) {
        ++res;
        new_word = 0;
      }
    }
  }
  return res;
}
int umain(unsigned char *in, int n) { return wc(in, 1); }
)";

}  // namespace

int main() {
  std::printf("== overify quickstart ==\n\n");
  std::printf("Program: Listing 1 of the paper (word count).\n\n");

  // 1. Compile at -O0 (what the frontend emits) and at -OVERIFY.
  Compiler compiler;
  CompileResult debug_build = compiler.Compile(kProgram, OptLevel::kO0);
  CompileResult verify_build = compiler.Compile(kProgram, OptLevel::kOverify);
  if (!debug_build.ok || !verify_build.ok) {
    std::fprintf(stderr, "compile error:\n%s%s\n", debug_build.errors.c_str(),
                 verify_build.errors.c_str());
    return 1;
  }
  std::printf("compiled: %zu instructions at -O0, %zu at -OVERIFY\n\n",
              debug_build.instruction_count, verify_build.instruction_count);

  // 2. The -OVERIFY loop body is branch-free (the paper's Listing 2).
  std::printf("-OVERIFY code for umain (note the selects where Listing 1 branched):\n\n%s\n",
              PrintFunction(*verify_build.module->GetFunction("umain")).c_str());

  // 3. Exhaustively explore all paths for 6 symbolic input bytes.
  SymexLimits limits;
  limits.max_paths = 200000;
  limits.max_seconds = 30;
  SymexResult verify_result = Analyze(verify_build, "umain", 6, limits);
  std::printf("-OVERIFY exploration: %llu paths (exhausted=%s), %llu interpreted "
              "instructions, %llu solver queries, %.1f ms\n",
              static_cast<unsigned long long>(verify_result.paths_completed),
              verify_result.exhausted ? "yes" : "no",
              static_cast<unsigned long long>(verify_result.instructions),
              static_cast<unsigned long long>(verify_result.solver.queries),
              verify_result.wall_seconds * 1e3);

  // 4. The same exploration against the -O0 build (capped — it explodes).
  limits.max_paths = 20000;
  SymexResult debug_result = Analyze(debug_build, "umain", 6, limits);
  std::printf("-O0 exploration:      %llu paths (exhausted=%s) before hitting the cap\n\n",
              static_cast<unsigned long long>(debug_result.paths_completed),
              debug_result.exhausted ? "yes" : "no");

  std::printf("-OVERIFY explored every path of wc with %u symbolic bytes in %llu paths;\n"
              "the -O0 build of the same source exceeds %llu paths (Theta(3^n)).\n",
              6u, static_cast<unsigned long long>(verify_result.paths_completed),
              static_cast<unsigned long long>(debug_result.paths_completed));
  return 0;
}
