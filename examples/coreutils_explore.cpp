// Explore the Coreutils-style workload suite (Figure 3 of the paper: debug
// / release / -OVERIFY side by side).
//
//   $ ./coreutils_explore                      # whole suite, one row each
//   $ ./coreutils_explore <workload> [bytes]   # one utility, every level
//
// With no arguments, iterates the full expanded suite and prints
// per-workload stats: symbolic width, static size and exploration outcome
// at -O3 and -OVERIFY, and the concrete run of the sample input (whose
// result must agree across levels). Naming a workload prints the detailed
// per-level table for it instead.
#include <cstdio>
#include <cstdlib>

#include "src/driver/compiler.h"
#include "src/exec/interpreter.h"
#include "src/support/string_utils.h"
#include "src/support/table.h"
#include "src/workloads/workloads.h"

using namespace overify;

namespace {

struct LevelStats {
  size_t instructions = 0;
  uint64_t paths = 0;
  bool exhausted = false;
  double analysis_ms = 0;
  int64_t sample_result = 0;
  bool sample_ok = false;
};

LevelStats ExploreAt(const Workload& workload, OptLevel level, unsigned sym_bytes) {
  LevelStats stats;
  Compiler compiler;
  CompileResult compiled = compiler.Compile(workload.source, level, workload.name);
  if (!compiled.ok) {
    std::fprintf(stderr, "compile failed for %s at %s:\n%s\n", workload.name.c_str(),
                 OptLevelName(level), compiled.errors.c_str());
    std::exit(1);
  }
  SymexLimits limits;
  limits.max_paths = 100000;
  limits.max_seconds = 10;
  SymexResult analysis = Analyze(compiled, "umain", sym_bytes, limits);
  stats.instructions = compiled.instruction_count;
  stats.paths = analysis.paths_completed;
  stats.exhausted = analysis.exhausted;
  stats.analysis_ms = analysis.wall_seconds * 1e3;

  Interpreter interp(*compiled.module);
  InterpResult run = interp.Run("umain", workload.sample_input);
  stats.sample_ok = run.ok;
  stats.sample_result = run.return_value;
  return stats;
}

int ExploreSuite() {
  TextTable table({"workload", "bytes", "instrs O3/OVERIFY", "paths O3", "paths OVERIFY",
                   "analysis ms O3/OVERIFY", "sample result"});
  for (const Workload& workload : CoreutilsSuite()) {
    LevelStats o3 = ExploreAt(workload, OptLevel::kO3, workload.default_sym_bytes);
    LevelStats overify = ExploreAt(workload, OptLevel::kOverify, workload.default_sym_bytes);
    if (o3.sample_ok != overify.sample_ok ||
        (o3.sample_ok && o3.sample_result != overify.sample_result)) {
      std::fprintf(stderr, "%s: sample result diverged between levels!\n",
                   workload.name.c_str());
      return 1;
    }
    table.AddRow({workload.name, std::to_string(workload.default_sym_bytes),
                  std::to_string(o3.instructions) + "/" + std::to_string(overify.instructions),
                  std::to_string(o3.paths) + (o3.exhausted ? "" : " (capped)"),
                  std::to_string(overify.paths) + (overify.exhausted ? "" : " (capped)"),
                  FormatDouble(o3.analysis_ms, 1) + "/" + FormatDouble(overify.analysis_ms, 1),
                  overify.sample_ok ? std::to_string(overify.sample_result) : "trap"});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("%zu workloads; paths/analysis at each workload's default symbolic width\n",
              CoreutilsSuite().size());
  return 0;
}

int ExploreOne(const Workload& workload, unsigned sym_bytes) {
  std::printf("== %s with %u symbolic bytes ==\n\n", workload.name.c_str(), sym_bytes);
  TextTable table({"level", "instrs", "compile ms", "paths", "exhausted", "analysis ms",
                   "sample result"});

  for (OptLevel level :
       {OptLevel::kO0, OptLevel::kO1, OptLevel::kO2, OptLevel::kO3, OptLevel::kOverify}) {
    Compiler compiler;
    CompileResult compiled = compiler.Compile(workload.source, level, workload.name);
    if (!compiled.ok) {
      std::fprintf(stderr, "compile failed at %s:\n%s\n", OptLevelName(level),
                   compiled.errors.c_str());
      return 1;
    }
    SymexLimits limits;
    limits.max_paths = 100000;
    limits.max_seconds = 10;
    SymexResult analysis = Analyze(compiled, "umain", sym_bytes, limits);

    Interpreter interp(*compiled.module);
    InterpResult run = interp.Run("umain", workload.sample_input);

    table.AddRow({OptLevelName(level), std::to_string(compiled.instruction_count),
                  FormatDouble(compiled.compile_seconds * 1e3, 1),
                  std::to_string(analysis.paths_completed),
                  analysis.exhausted ? "yes" : "NO (capped)",
                  FormatDouble(analysis.wall_seconds * 1e3, 1),
                  run.ok ? std::to_string(run.return_value) : ("trap: " + run.error)});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("sample input: \"%s\"\n", workload.sample_input.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 1) {
    return ExploreSuite();
  }
  const char* name = argv[1];
  const Workload* workload = FindWorkload(name);
  if (workload == nullptr) {
    std::fprintf(stderr, "unknown workload '%s'; available:\n", name);
    for (const Workload& w : CoreutilsSuite()) {
      std::fprintf(stderr, "  %s\n", w.name.c_str());
    }
    return 1;
  }
  unsigned sym_bytes = argc > 2 ? static_cast<unsigned>(std::atoi(argv[2]))
                                : workload->default_sym_bytes;
  return ExploreOne(*workload, sym_bytes);
}
