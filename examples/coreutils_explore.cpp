// Explore the Coreutils-style workload suite (Figure 3 of the paper: debug
// / release / -OVERIFY side by side).
//
//   $ ./coreutils_explore                      # whole suite, one row each
//   $ ./coreutils_explore <workload> [bytes]   # one utility, every level
//
// Flags (anywhere on the command line):
//   --stats        render the metrics registry (counters + latency
//                  histograms, docs/observability.md) after the summary —
//                  O3 vs -OVERIFY side by side per workload
//   --trace=FILE   write a Chrome-trace-event JSON timeline of the
//                  -OVERIFY exploration to FILE (load it in Perfetto); in
//                  suite mode each workload writes FILE.<workload>.json
//   --jobs=N       explore with N worker threads (0 = one per core)
//   --slice        verify per-check slices instead of the whole program
//                  (docs/slicing.md) and print per-workload slice
//                  statistics: checks found, slices built, and the mean/max
//                  cone size as a percentage of the entry function
//
// With no arguments, iterates the full expanded suite and prints
// per-workload stats: symbolic width, static size and exploration outcome
// at -O3 and -OVERIFY, and the concrete run of the sample input (whose
// result must agree across levels). Naming a workload prints the detailed
// per-level table for it instead.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/driver/compiler.h"
#include "src/exec/interpreter.h"
#include "src/support/metrics.h"
#include "src/support/string_utils.h"
#include "src/support/table.h"
#include "src/workloads/workloads.h"

using namespace overify;

namespace {

struct CliOptions {
  bool stats = false;
  std::string trace;  // empty = no tracing
  unsigned jobs = 1;
  bool slice = false;  // per-check slice verification (docs/slicing.md)
};

struct LevelStats {
  size_t instructions = 0;
  uint64_t paths = 0;
  bool exhausted = false;
  double analysis_ms = 0;
  int64_t sample_result = 0;
  bool sample_ok = false;
  MetricsShard metrics;
};

// `trace_path` non-empty routes the run's trace there (only the -OVERIFY
// level gets one; tracing every level would overwrite the file per level
// and quintuple the overhead for timelines nobody asked for).
LevelStats ExploreAt(const Workload& workload, OptLevel level, unsigned sym_bytes,
                     const CliOptions& cli, const std::string& trace_path) {
  LevelStats stats;
  Compiler compiler;
  CompileResult compiled = compiler.Compile(workload.source, level, workload.name);
  if (!compiled.ok) {
    std::fprintf(stderr, "compile failed for %s at %s:\n%s\n", workload.name.c_str(),
                 OptLevelName(level), compiled.errors.c_str());
    std::exit(1);
  }
  SymexLimits limits;
  limits.max_paths = 100000;
  limits.max_seconds = 10;
  SymexOptions options;
  options.jobs = cli.jobs;
  options.trace_path = trace_path;
  options.slice_checks = cli.slice;
  SymexResult analysis = Analyze(compiled, "umain", sym_bytes, limits, options);
  stats.instructions = compiled.instruction_count;
  stats.paths = analysis.paths_completed;
  stats.exhausted = analysis.exhausted;
  stats.analysis_ms = analysis.wall_seconds * 1e3;
  stats.metrics = analysis.metrics;

  Interpreter interp(*compiled.module);
  InterpResult run = interp.Run("umain", workload.sample_input);
  stats.sample_ok = run.ok;
  stats.sample_result = run.return_value;
  return stats;
}

void PrintStats(const std::string& title, const MetricsShard& metrics) {
  std::printf("-- metrics: %s --\n%s\n", title.c_str(),
              RenderMetricsTable(metrics).ToString().c_str());
}

// One slice-statistics row from a run's merged metrics (docs/slicing.md):
// checks found, slices built after keep-set grouping, and the cone-size
// histogram's mean/max as percentages of the entry function. "fallback"
// marks runs where slicing bailed to whole-program mode.
void AddSliceRow(TextTable& table, const std::string& label, const MetricsShard& metrics) {
  if (metrics.Get(Counter::kSliceFallbacks) > 0) {
    table.AddRow({label, std::to_string(metrics.Get(Counter::kSliceChecksFound)),
                  "fallback", "-", "-"});
    return;
  }
  const LatencyHistogram& ratio = metrics.hist(Hist::kSliceConeRatioPct);
  double mean = ratio.count() > 0
                    ? static_cast<double>(ratio.sum_ns()) / static_cast<double>(ratio.count())
                    : 0;
  table.AddRow({label, std::to_string(metrics.Get(Counter::kSliceChecksFound)),
                std::to_string(metrics.Get(Counter::kSlicesBuilt)),
                FormatDouble(mean, 1) + "%", std::to_string(ratio.max_ns()) + "%"});
}

TextTable SliceTableHeader() {
  return TextTable({"workload", "checks", "slices", "mean cone", "max cone"});
}

// Suite mode derives one trace file per workload from the flag value, so
// runs don't clobber each other: --trace=out.json -> out.json.wc.json.
std::string SuiteTracePath(const CliOptions& cli, const Workload& workload) {
  if (cli.trace.empty()) {
    return "";
  }
  return cli.trace + "." + workload.name + ".json";
}

int ExploreSuite(const CliOptions& cli) {
  TextTable table({"workload", "bytes", "instrs O3/OVERIFY", "paths O3", "paths OVERIFY",
                   "analysis ms O3/OVERIFY", "sample result"});
  TextTable slice_table = SliceTableHeader();
  for (const Workload& workload : CoreutilsSuite()) {
    LevelStats o3 = ExploreAt(workload, OptLevel::kO3, workload.default_sym_bytes, cli, "");
    LevelStats overify = ExploreAt(workload, OptLevel::kOverify, workload.default_sym_bytes,
                                   cli, SuiteTracePath(cli, workload));
    if (o3.sample_ok != overify.sample_ok ||
        (o3.sample_ok && o3.sample_result != overify.sample_result)) {
      std::fprintf(stderr, "%s: sample result diverged between levels!\n",
                   workload.name.c_str());
      return 1;
    }
    table.AddRow({workload.name, std::to_string(workload.default_sym_bytes),
                  std::to_string(o3.instructions) + "/" + std::to_string(overify.instructions),
                  std::to_string(o3.paths) + (o3.exhausted ? "" : " (capped)"),
                  std::to_string(overify.paths) + (overify.exhausted ? "" : " (capped)"),
                  FormatDouble(o3.analysis_ms, 1) + "/" + FormatDouble(overify.analysis_ms, 1),
                  overify.sample_ok ? std::to_string(overify.sample_result) : "trap"});
    if (cli.slice) {
      AddSliceRow(slice_table, workload.name, overify.metrics);
    }
    if (cli.stats) {
      PrintStats(workload.name + " @ -O3", o3.metrics);
      PrintStats(workload.name + " @ -OVERIFY", overify.metrics);
    }
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("%zu workloads; paths/analysis at each workload's default symbolic width\n",
              CoreutilsSuite().size());
  if (cli.slice) {
    std::printf("\n-- slice statistics @ -OVERIFY (cone sizes as %% of entry) --\n%s\n",
                slice_table.ToString().c_str());
  }
  return 0;
}

int ExploreOne(const Workload& workload, unsigned sym_bytes, const CliOptions& cli) {
  std::printf("== %s with %u symbolic bytes ==\n\n", workload.name.c_str(), sym_bytes);
  TextTable table({"level", "instrs", "compile ms", "paths", "exhausted", "analysis ms",
                   "sample result"});

  MetricsShard o3_metrics;
  MetricsShard overify_metrics;
  for (OptLevel level :
       {OptLevel::kO0, OptLevel::kO1, OptLevel::kO2, OptLevel::kO3, OptLevel::kOverify}) {
    Compiler compiler;
    CompileResult compiled = compiler.Compile(workload.source, level, workload.name);
    if (!compiled.ok) {
      std::fprintf(stderr, "compile failed at %s:\n%s\n", OptLevelName(level),
                   compiled.errors.c_str());
      return 1;
    }
    SymexLimits limits;
    limits.max_paths = 100000;
    limits.max_seconds = 10;
    SymexOptions options;
    options.jobs = cli.jobs;
    options.slice_checks = cli.slice;
    if (level == OptLevel::kOverify) {
      options.trace_path = cli.trace;
    }
    SymexResult analysis = Analyze(compiled, "umain", sym_bytes, limits, options);
    if (level == OptLevel::kO3) {
      o3_metrics = analysis.metrics;
    } else if (level == OptLevel::kOverify) {
      overify_metrics = analysis.metrics;
    }

    Interpreter interp(*compiled.module);
    InterpResult run = interp.Run("umain", workload.sample_input);

    table.AddRow({OptLevelName(level), std::to_string(compiled.instruction_count),
                  FormatDouble(compiled.compile_seconds * 1e3, 1),
                  std::to_string(analysis.paths_completed),
                  analysis.exhausted ? "yes" : "NO (capped)",
                  FormatDouble(analysis.wall_seconds * 1e3, 1),
                  run.ok ? std::to_string(run.return_value) : ("trap: " + run.error)});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("sample input: \"%s\"\n", workload.sample_input.c_str());
  if (cli.slice) {
    TextTable slice_table = SliceTableHeader();
    AddSliceRow(slice_table, workload.name + " @ -O3", o3_metrics);
    AddSliceRow(slice_table, workload.name + " @ -OVERIFY", overify_metrics);
    std::printf("\n-- slice statistics (cone sizes as %% of entry) --\n%s\n",
                slice_table.ToString().c_str());
  }
  if (cli.stats) {
    std::printf("\n");
    PrintStats(workload.name + " @ -O3", o3_metrics);
    PrintStats(workload.name + " @ -OVERIFY", overify_metrics);
  }
  if (!cli.trace.empty()) {
    std::printf("trace (-OVERIFY level): %s\n", cli.trace.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions cli;
  const char* name = nullptr;
  const char* bytes_arg = nullptr;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--stats") == 0) {
      cli.stats = true;
    } else if (std::strcmp(arg, "--slice") == 0) {
      cli.slice = true;
    } else if (std::strncmp(arg, "--trace=", 8) == 0) {
      cli.trace = arg + 8;
    } else if (std::strncmp(arg, "--jobs=", 7) == 0) {
      cli.jobs = static_cast<unsigned>(std::atoi(arg + 7));
    } else if (arg[0] == '-' && arg[1] == '-') {
      std::fprintf(stderr,
                   "unknown flag '%s'; supported: --stats --slice --trace=FILE --jobs=N\n", arg);
      return 1;
    } else if (name == nullptr) {
      name = arg;
    } else {
      bytes_arg = arg;
    }
  }
  if (name == nullptr) {
    return ExploreSuite(cli);
  }
  const Workload* workload = FindWorkload(name);
  if (workload == nullptr) {
    std::fprintf(stderr, "unknown workload '%s'; available:\n", name);
    for (const Workload& w : CoreutilsSuite()) {
      std::fprintf(stderr, "  %s\n", w.name.c_str());
    }
    return 1;
  }
  unsigned sym_bytes = bytes_arg != nullptr ? static_cast<unsigned>(std::atoi(bytes_arg))
                                            : workload->default_sym_bytes;
  return ExploreOne(*workload, sym_bytes, cli);
}
