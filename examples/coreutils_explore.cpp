// Explore one utility of the workload suite under every build configuration
// (Figure 3 of the paper: debug / release / -OVERIFY side by side).
//
//   $ ./coreutils_explore [workload] [sym_bytes]
//
// Defaults to `trim` with 5 symbolic bytes. Prints, per optimization level:
// static size, compile time, exploration outcome, and the concrete run of
// the workload's sample input (whose result must agree across levels).
#include <cstdio>
#include <cstdlib>

#include "src/driver/compiler.h"
#include "src/exec/interpreter.h"
#include "src/support/string_utils.h"
#include "src/support/table.h"
#include "src/workloads/workloads.h"

using namespace overify;

int main(int argc, char** argv) {
  const char* name = argc > 1 ? argv[1] : "trim";
  unsigned sym_bytes = argc > 2 ? static_cast<unsigned>(std::atoi(argv[2])) : 5;

  const Workload* workload = FindWorkload(name);
  if (workload == nullptr) {
    std::fprintf(stderr, "unknown workload '%s'; available:\n", name);
    for (const Workload& w : CoreutilsSuite()) {
      std::fprintf(stderr, "  %s\n", w.name.c_str());
    }
    return 1;
  }

  std::printf("== %s with %u symbolic bytes ==\n\n", workload->name.c_str(), sym_bytes);
  TextTable table({"level", "instrs", "compile ms", "paths", "exhausted", "analysis ms",
                   "sample result"});

  for (OptLevel level :
       {OptLevel::kO0, OptLevel::kO1, OptLevel::kO2, OptLevel::kO3, OptLevel::kOverify}) {
    Compiler compiler;
    CompileResult compiled = compiler.Compile(workload->source, level, workload->name);
    if (!compiled.ok) {
      std::fprintf(stderr, "compile failed at %s:\n%s\n", OptLevelName(level),
                   compiled.errors.c_str());
      return 1;
    }
    SymexLimits limits;
    limits.max_paths = 100000;
    limits.max_seconds = 10;
    SymexResult analysis = Analyze(compiled, "umain", sym_bytes, limits);

    Interpreter interp(*compiled.module);
    InterpResult run = interp.Run("umain", workload->sample_input);

    table.AddRow({OptLevelName(level), std::to_string(compiled.instruction_count),
                  FormatDouble(compiled.compile_seconds * 1e3, 1),
                  std::to_string(analysis.paths_completed),
                  analysis.exhausted ? "yes" : "NO (capped)",
                  FormatDouble(analysis.wall_seconds * 1e3, 1),
                  run.ok ? std::to_string(run.return_value) : ("trap: " + run.error)});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("sample input: \"%s\"\n", workload->sample_input.c_str());
  return 0;
}
