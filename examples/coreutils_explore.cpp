// Explore the Coreutils-style workload suite (Figure 3 of the paper: debug
// / release / -OVERIFY side by side).
//
//   $ ./coreutils_explore                      # whole suite, one row each
//   $ ./coreutils_explore <workload> [bytes]   # one utility, every level
//
// Flags (anywhere on the command line):
//   --stats        render the metrics registry (counters + latency
//                  histograms, docs/observability.md) after the summary —
//                  O3 vs -OVERIFY side by side per workload
//   --trace=FILE   write a Chrome-trace-event JSON timeline of the
//                  -OVERIFY exploration to FILE (load it in Perfetto); in
//                  suite mode each workload writes FILE.<workload>.json
//   --jobs=N       explore with N worker threads (0 = one per core)
//   --slice        verify per-check slices instead of the whole program
//                  (docs/slicing.md) and print per-workload slice
//                  statistics: checks found, slices built, and the mean/max
//                  cone size as a percentage of the entry function
//
// Daemon mode (docs/daemon.md):
//   --daemon=SOCK  serve verification requests on the Unix socket SOCK
//                  instead of exploring; runs until a shutdown request
//   --store=FILE   with --daemon: load/save the persistent cache store
//   --connect=SOCK send the run(s) to the daemon at SOCK instead of
//                  verifying in-process; prints the daemon's verdict and
//                  warm-cache counters
//   --force-run    with --connect: skip the daemon's run-level signature
//                  cache (the solver-level persisted cache still seeds)
//   --shutdown     with --connect: ask the daemon to save its store + exit
//                  (alone: shutdown only; with a workload: analyze, then stop)
//   --signature    verify in-process (daemon request parameters: -OVERIFY,
//                  default width, jobs=1) and print one "signature <name>
//                  <sig>" line per workload — the reference the CI smoke
//                  test compares daemon replies against bit-for-bit
//
// With no arguments, iterates the full expanded suite and prints
// per-workload stats: symbolic width, static size and exploration outcome
// at -O3 and -OVERIFY, and the concrete run of the sample input (whose
// result must agree across levels). Naming a workload prints the detailed
// per-level table for it instead.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/daemon/client.h"
#include "src/daemon/server.h"
#include "src/driver/compiler.h"
#include "src/exec/interpreter.h"
#include "src/support/metrics.h"
#include "src/support/string_utils.h"
#include "src/support/table.h"
#include "src/testing/diff_harness.h"
#include "src/workloads/workloads.h"

using namespace overify;

namespace {

struct CliOptions {
  bool stats = false;
  std::string trace;  // empty = no tracing
  unsigned jobs = 1;
  bool slice = false;  // per-check slice verification (docs/slicing.md)
  std::string daemon_socket;   // --daemon=SOCK: serve instead of exploring
  std::string connect_socket;  // --connect=SOCK: delegate runs to a daemon
  std::string store;           // --store=FILE: daemon's persistent cache
  bool force_run = false;      // --connect: bypass the run-signature cache
  bool shutdown = false;       // --connect: stop the daemon
  bool signature = false;      // print in-process RunSignatures and exit
};

struct LevelStats {
  size_t instructions = 0;
  uint64_t paths = 0;
  bool exhausted = false;
  double analysis_ms = 0;
  int64_t sample_result = 0;
  bool sample_ok = false;
  MetricsShard metrics;
};

// `trace_path` non-empty routes the run's trace there (only the -OVERIFY
// level gets one; tracing every level would overwrite the file per level
// and quintuple the overhead for timelines nobody asked for).
LevelStats ExploreAt(const Workload& workload, OptLevel level, unsigned sym_bytes,
                     const CliOptions& cli, const std::string& trace_path) {
  LevelStats stats;
  Compiler compiler;
  CompileResult compiled = compiler.Compile(workload.source, level, workload.name);
  if (!compiled.ok) {
    std::fprintf(stderr, "compile failed for %s at %s:\n%s\n", workload.name.c_str(),
                 OptLevelName(level), compiled.errors.c_str());
    std::exit(1);
  }
  SymexLimits limits;
  limits.max_paths = 100000;
  limits.max_seconds = 10;
  SymexOptions options;
  options.jobs = cli.jobs;
  options.trace_path = trace_path;
  options.slice_checks = cli.slice;
  SymexResult analysis = Analyze(compiled, "umain", sym_bytes, limits, options);
  stats.instructions = compiled.instruction_count;
  stats.paths = analysis.paths_completed;
  stats.exhausted = analysis.exhausted;
  stats.analysis_ms = analysis.wall_seconds * 1e3;
  stats.metrics = analysis.metrics;

  Interpreter interp(*compiled.module);
  InterpResult run = interp.Run("umain", workload.sample_input);
  stats.sample_ok = run.ok;
  stats.sample_result = run.return_value;
  return stats;
}

void PrintStats(const std::string& title, const MetricsShard& metrics) {
  std::printf("-- metrics: %s --\n%s\n", title.c_str(),
              RenderMetricsTable(metrics).ToString().c_str());
}

// One slice-statistics row from a run's merged metrics (docs/slicing.md):
// checks found, slices built after keep-set grouping, and the cone-size
// histogram's mean/max as percentages of the entry function. "fallback"
// marks runs where slicing bailed to whole-program mode.
void AddSliceRow(TextTable& table, const std::string& label, const MetricsShard& metrics) {
  if (metrics.Get(Counter::kSliceFallbacks) > 0) {
    table.AddRow({label, std::to_string(metrics.Get(Counter::kSliceChecksFound)),
                  "fallback", "-", "-"});
    return;
  }
  const LatencyHistogram& ratio = metrics.hist(Hist::kSliceConeRatioPct);
  double mean = ratio.count() > 0
                    ? static_cast<double>(ratio.sum_ns()) / static_cast<double>(ratio.count())
                    : 0;
  table.AddRow({label, std::to_string(metrics.Get(Counter::kSliceChecksFound)),
                std::to_string(metrics.Get(Counter::kSlicesBuilt)),
                FormatDouble(mean, 1) + "%", std::to_string(ratio.max_ns()) + "%"});
}

TextTable SliceTableHeader() {
  return TextTable({"workload", "checks", "slices", "mean cone", "max cone"});
}

// Suite mode derives one trace file per workload from the flag value, so
// runs don't clobber each other: --trace=out.json -> out.json.wc.json.
std::string SuiteTracePath(const CliOptions& cli, const Workload& workload) {
  if (cli.trace.empty()) {
    return "";
  }
  return cli.trace + "." + workload.name + ".json";
}

int ExploreSuite(const CliOptions& cli) {
  TextTable table({"workload", "bytes", "instrs O3/OVERIFY", "paths O3", "paths OVERIFY",
                   "analysis ms O3/OVERIFY", "sample result"});
  TextTable slice_table = SliceTableHeader();
  for (const Workload& workload : CoreutilsSuite()) {
    LevelStats o3 = ExploreAt(workload, OptLevel::kO3, workload.default_sym_bytes, cli, "");
    LevelStats overify = ExploreAt(workload, OptLevel::kOverify, workload.default_sym_bytes,
                                   cli, SuiteTracePath(cli, workload));
    if (o3.sample_ok != overify.sample_ok ||
        (o3.sample_ok && o3.sample_result != overify.sample_result)) {
      std::fprintf(stderr, "%s: sample result diverged between levels!\n",
                   workload.name.c_str());
      return 1;
    }
    table.AddRow({workload.name, std::to_string(workload.default_sym_bytes),
                  std::to_string(o3.instructions) + "/" + std::to_string(overify.instructions),
                  std::to_string(o3.paths) + (o3.exhausted ? "" : " (capped)"),
                  std::to_string(overify.paths) + (overify.exhausted ? "" : " (capped)"),
                  FormatDouble(o3.analysis_ms, 1) + "/" + FormatDouble(overify.analysis_ms, 1),
                  overify.sample_ok ? std::to_string(overify.sample_result) : "trap"});
    if (cli.slice) {
      AddSliceRow(slice_table, workload.name, overify.metrics);
    }
    if (cli.stats) {
      PrintStats(workload.name + " @ -O3", o3.metrics);
      PrintStats(workload.name + " @ -OVERIFY", overify.metrics);
    }
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("%zu workloads; paths/analysis at each workload's default symbolic width\n",
              CoreutilsSuite().size());
  if (cli.slice) {
    std::printf("\n-- slice statistics @ -OVERIFY (cone sizes as %% of entry) --\n%s\n",
                slice_table.ToString().c_str());
  }
  return 0;
}

int ExploreOne(const Workload& workload, unsigned sym_bytes, const CliOptions& cli) {
  std::printf("== %s with %u symbolic bytes ==\n\n", workload.name.c_str(), sym_bytes);
  TextTable table({"level", "instrs", "compile ms", "paths", "exhausted", "analysis ms",
                   "sample result"});

  MetricsShard o3_metrics;
  MetricsShard overify_metrics;
  for (OptLevel level :
       {OptLevel::kO0, OptLevel::kO1, OptLevel::kO2, OptLevel::kO3, OptLevel::kOverify}) {
    Compiler compiler;
    CompileResult compiled = compiler.Compile(workload.source, level, workload.name);
    if (!compiled.ok) {
      std::fprintf(stderr, "compile failed at %s:\n%s\n", OptLevelName(level),
                   compiled.errors.c_str());
      return 1;
    }
    SymexLimits limits;
    limits.max_paths = 100000;
    limits.max_seconds = 10;
    SymexOptions options;
    options.jobs = cli.jobs;
    options.slice_checks = cli.slice;
    if (level == OptLevel::kOverify) {
      options.trace_path = cli.trace;
    }
    SymexResult analysis = Analyze(compiled, "umain", sym_bytes, limits, options);
    if (level == OptLevel::kO3) {
      o3_metrics = analysis.metrics;
    } else if (level == OptLevel::kOverify) {
      overify_metrics = analysis.metrics;
    }

    Interpreter interp(*compiled.module);
    InterpResult run = interp.Run("umain", workload.sample_input);

    table.AddRow({OptLevelName(level), std::to_string(compiled.instruction_count),
                  FormatDouble(compiled.compile_seconds * 1e3, 1),
                  std::to_string(analysis.paths_completed),
                  analysis.exhausted ? "yes" : "NO (capped)",
                  FormatDouble(analysis.wall_seconds * 1e3, 1),
                  run.ok ? std::to_string(run.return_value) : ("trap: " + run.error)});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("sample input: \"%s\"\n", workload.sample_input.c_str());
  if (cli.slice) {
    TextTable slice_table = SliceTableHeader();
    AddSliceRow(slice_table, workload.name + " @ -O3", o3_metrics);
    AddSliceRow(slice_table, workload.name + " @ -OVERIFY", overify_metrics);
    std::printf("\n-- slice statistics (cone sizes as %% of entry) --\n%s\n",
                slice_table.ToString().c_str());
  }
  if (cli.stats) {
    std::printf("\n");
    PrintStats(workload.name + " @ -O3", o3_metrics);
    PrintStats(workload.name + " @ -OVERIFY", overify_metrics);
  }
  if (!cli.trace.empty()) {
    std::printf("trace (-OVERIFY level): %s\n", cli.trace.c_str());
  }
  return 0;
}

// --signature mode: the in-process reference for the daemon smoke test.
// Runs each workload exactly the way the daemon's Analyze handler does
// (same level, width, limits, worker count) and prints the RunSignature;
// the smoke test asserts the daemon's replies match these bit-for-bit.
int PrintSignatures(const CliOptions& cli, const char* name) {
  std::vector<const Workload*> targets;
  if (name != nullptr) {
    targets.push_back(FindWorkload(name));
  } else {
    for (const Workload& w : CoreutilsSuite()) {
      targets.push_back(&w);
    }
  }
  for (const Workload* workload : targets) {
    Compiler compiler;
    CompileResult compiled =
        compiler.Compile(workload->source, OptLevel::kOverify, workload->name);
    if (!compiled.ok) {
      std::fprintf(stderr, "compile failed for %s:\n%s\n", workload->name.c_str(),
                   compiled.errors.c_str());
      return 1;
    }
    SymexLimits limits;
    limits.max_paths = 100000;
    limits.max_seconds = 10;
    SymexOptions options;
    options.jobs = cli.jobs;
    options.slice_checks = cli.slice;
    SymexResult result =
        Analyze(compiled, "umain", workload->default_sym_bytes, limits, options);
    if (!result.ok) {
      std::fprintf(stderr, "analyze failed for %s: %s\n", workload->name.c_str(),
                   result.error.c_str());
      return 1;
    }
    const difftest::RunSignature sig = difftest::SignatureOf(
        result, *compiled.module, "umain", /*confirm_models=*/true);
    std::printf("signature %s %s\n", workload->name.c_str(), sig.ToString().c_str());
  }
  return 0;
}

// --connect mode: ship the run(s) to a warm daemon instead of verifying
// in-process. The table shows which layer answered: "run cache" when the
// daemon had the signature memoized, otherwise the solver-level persisted
// hit counters of the actual execution.
int ExploreViaDaemon(const CliOptions& cli, const char* name, unsigned sym_bytes) {
  daemon::Client client;
  if (!client.Connect(cli.connect_socket) || !client.Ping()) {
    std::fprintf(stderr, "daemon: %s\n", client.error().c_str());
    return 1;
  }
  std::vector<const Workload*> targets;
  if (name != nullptr) {
    targets.push_back(FindWorkload(name));  // validated by the caller
  } else if (!cli.shutdown) {
    // A bare `--connect SOCK --shutdown` stops the daemon without first
    // pushing the whole suite through it; name a workload to do both.
    for (const Workload& w : CoreutilsSuite()) {
      targets.push_back(&w);
    }
  }
  TextTable table({"workload", "answered by", "exhausted", "paths", "bugs",
                   "persist hits/queries", "signature"});
  for (const Workload* workload : targets) {
    daemon::AnalyzeRequest request;
    request.workload = workload->name;
    request.opt_level = static_cast<uint8_t>(OptLevel::kOverify);
    request.sym_bytes = name != nullptr ? sym_bytes : 0;
    request.force_run = cli.force_run ? 1 : 0;
    request.slice_checks = cli.slice ? 1 : 0;
    request.jobs = cli.jobs;
    daemon::AnalyzeReply reply;
    if (!client.Analyze(request, reply)) {
      std::fprintf(stderr, "daemon: %s\n", client.error().c_str());
      return 1;
    }
    if (!reply.ok) {
      std::fprintf(stderr, "daemon rejected %s: %s\n", workload->name.c_str(),
                   reply.error.c_str());
      return 1;
    }
    // The signature digest is long; the first 16 chars identify it in logs.
    const std::string sig_prefix = reply.signature.substr(0, 16);
    if (reply.run_hit) {
      table.AddRow({workload->name, "run cache", "-", "-", "-", "-", sig_prefix});
    } else {
      table.AddRow({workload->name, "executed", reply.exhausted ? "yes" : "NO",
                    std::to_string(reply.paths), std::to_string(reply.bugs),
                    std::to_string(reply.persist_hits) + "/" +
                        std::to_string(reply.core_queries + reply.persist_hits),
                    sig_prefix});
    }
    // Full signature on its own line, same format as --signature mode, so
    // the smoke test can diff daemon-vs-in-process output directly.
    std::printf("signature %s %s\n", workload->name.c_str(), reply.signature.c_str());
  }
  if (!targets.empty()) {
    std::printf("%s\n", table.ToString().c_str());
  }
  if (cli.stats) {
    daemon::StatsReply stats;
    if (client.Stats(stats) && stats.ok) {
      TextTable stats_table({"daemon counter", "value"});
      stats_table.AddRow({"requests", std::to_string(stats.requests)});
      stats_table.AddRow({"run hits", std::to_string(stats.run_hits)});
      stats_table.AddRow({"run misses", std::to_string(stats.run_misses)});
      stats_table.AddRow({"run evictions", std::to_string(stats.run_evictions)});
      stats_table.AddRow({"store rejects", std::to_string(stats.store_rejects)});
      stats_table.AddRow({"store runs", std::to_string(stats.store_runs)});
      stats_table.AddRow({"store entries", std::to_string(stats.store_entries)});
      std::printf("%s\n", stats_table.ToString().c_str());
    }
  }
  if (cli.shutdown) {
    if (!client.Shutdown()) {
      std::fprintf(stderr, "daemon shutdown failed: %s\n", client.error().c_str());
      return 1;
    }
    std::printf("daemon asked to shut down (store saved on exit)\n");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions cli;
  const char* name = nullptr;
  const char* bytes_arg = nullptr;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--stats") == 0) {
      cli.stats = true;
    } else if (std::strcmp(arg, "--slice") == 0) {
      cli.slice = true;
    } else if (std::strncmp(arg, "--trace=", 8) == 0) {
      cli.trace = arg + 8;
    } else if (std::strncmp(arg, "--jobs=", 7) == 0) {
      cli.jobs = static_cast<unsigned>(std::atoi(arg + 7));
    } else if (std::strncmp(arg, "--daemon=", 9) == 0) {
      cli.daemon_socket = arg + 9;
    } else if (std::strncmp(arg, "--connect=", 10) == 0) {
      cli.connect_socket = arg + 10;
    } else if (std::strncmp(arg, "--store=", 8) == 0) {
      cli.store = arg + 8;
    } else if (std::strcmp(arg, "--force-run") == 0) {
      cli.force_run = true;
    } else if (std::strcmp(arg, "--shutdown") == 0) {
      cli.shutdown = true;
    } else if (std::strcmp(arg, "--signature") == 0) {
      cli.signature = true;
    } else if (arg[0] == '-' && arg[1] == '-') {
      std::fprintf(stderr,
                   "unknown flag '%s'; supported: --stats --slice --trace=FILE --jobs=N "
                   "--daemon=SOCK --connect=SOCK --store=FILE --force-run --shutdown "
                   "--signature\n",
                   arg);
      return 1;
    } else if (name == nullptr) {
      name = arg;
    } else {
      bytes_arg = arg;
    }
  }
  if (!cli.daemon_socket.empty()) {
    daemon::ServerOptions server_options;
    server_options.socket_path = cli.daemon_socket;
    server_options.store_path = cli.store;
    server_options.verbose = cli.stats;
    daemon::DaemonServer server(std::move(server_options));
    return server.Run();
  }
  if (cli.signature) {
    if (name != nullptr && FindWorkload(name) == nullptr) {
      std::fprintf(stderr, "unknown workload '%s'\n", name);
      return 1;
    }
    return PrintSignatures(cli, name);
  }
  if (!cli.connect_socket.empty()) {
    if (name != nullptr && FindWorkload(name) == nullptr) {
      std::fprintf(stderr, "unknown workload '%s'\n", name);
      return 1;
    }
    const unsigned sym_bytes =
        bytes_arg != nullptr ? static_cast<unsigned>(std::atoi(bytes_arg)) : 0;
    return ExploreViaDaemon(cli, name, sym_bytes);
  }
  if (name == nullptr) {
    return ExploreSuite(cli);
  }
  const Workload* workload = FindWorkload(name);
  if (workload == nullptr) {
    std::fprintf(stderr, "unknown workload '%s'; available:\n", name);
    for (const Workload& w : CoreutilsSuite()) {
      std::fprintf(stderr, "  %s\n", w.name.c_str());
    }
    return 1;
  }
  unsigned sym_bytes = bytes_arg != nullptr ? static_cast<unsigned>(std::atoi(bytes_arg))
                                            : workload->default_sym_bytes;
  return ExploreOne(*workload, sym_bytes, cli);
}
