#!/usr/bin/env bash
# clang-tidy gate over src/ (ci job: tidy).
#
# Usage: ci/check_clang_tidy.sh [--prune] <build-dir> [baseline]
#
# Runs clang-tidy (checks from the committed .clang-tidy) over every
# src/**/*.cc translation unit using the build tree's compile_commands.json,
# reduces the findings to distinct "<file>:<check>" pairs, and compares them
# against the committed baseline (ci/clang-tidy-baseline.txt by default):
#
#  - a pair not in the baseline fails the gate (new debt);
#  - a baseline entry that no longer fires is stale: without --prune it
#    FAILS the gate too (CI keeps the baseline honest — paid-down debt must
#    be pruned in the same change that paid it); with --prune the script
#    rewrites the baseline in place, dropping the stale entries, and exits 0
#    if that was the only problem. Run `ci/check_clang_tidy.sh --prune
#    build` locally and commit the result.
#
# The baseline may be empty: the gate then requires a fully clean run.
set -u -o pipefail

prune=0
if [ "${1:-}" = "--prune" ]; then
  prune=1
  shift
fi
build_dir="${1:?usage: ci/check_clang_tidy.sh [--prune] <build-dir> [baseline]}"
baseline="${2:-ci/clang-tidy-baseline.txt}"
repo_root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo_root"

tidy="$(command -v clang-tidy || true)"
if [ -z "$tidy" ]; then
  echo "error: clang-tidy not found on PATH (the CI job apt-installs it)" >&2
  exit 2
fi
if [ ! -f "$build_dir/compile_commands.json" ]; then
  echo "error: $build_dir/compile_commands.json missing — configure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON" >&2
  exit 2
fi

mapfile -t sources < <(find src -name '*.cc' | sort)
echo "clang-tidy ($($tidy --version | head -n1)) over ${#sources[@]} files"

log="$(mktemp)"
trap 'rm -f "$log"' EXIT
# clang-tidy exits non-zero on warnings; the gate's verdict comes from the
# baseline comparison, so tolerate the exit code and parse the output.
"$tidy" -p "$build_dir" --quiet "${sources[@]}" >"$log" 2>/dev/null || true

# "path/file.cc:LINE:COL: warning: ... [check-name]" -> "path/file.cc:check-name"
found="$(sed -n -E 's|^([^:]+):[0-9]+:[0-9]+: warning: .* \[([A-Za-z0-9.,-]+)\]$|\1:\2|p' "$log" \
  | sed -E "s|^$repo_root/||" \
  | grep '^src/' | sort -u)"
allowed="$(grep -v '^#' "$baseline" 2>/dev/null | sed '/^[[:space:]]*$/d' | sort -u || true)"

new="$(comm -23 <(printf '%s\n' "$found" | sed '/^$/d') <(printf '%s\n' "$allowed" | sed '/^$/d'))"
stale="$(comm -13 <(printf '%s\n' "$found" | sed '/^$/d') <(printf '%s\n' "$allowed" | sed '/^$/d'))"

stale_failed=0
if [ -n "$stale" ]; then
  if [ "$prune" = 1 ]; then
    echo "pruning stale baseline entries from $baseline:"
    printf '  %s\n' $stale
    # Keep comments and blank lines (the file documents its own format);
    # drop only the entries that no longer fire.
    pruned="$(mktemp)"
    while IFS= read -r line; do
      case "$line" in
        ''|'#'*) printf '%s\n' "$line" >>"$pruned"; continue ;;
      esac
      if printf '%s\n' "$found" | grep -qxF "$line"; then
        printf '%s\n' "$line" >>"$pruned"
      fi
    done <"$baseline"
    mv "$pruned" "$baseline"
  else
    echo "stale baseline entries (no longer fire):"
    printf '  %s\n' $stale
    echo "run 'ci/check_clang_tidy.sh --prune $build_dir' and commit $baseline"
    stale_failed=1
  fi
fi

if [ -n "$new" ]; then
  echo "new clang-tidy findings not in $baseline:"
  printf '  %s\n' $new
  echo
  echo "full diagnostics for the new findings:"
  while IFS= read -r pair; do
    file="${pair%%:*}"
    check="${pair##*:}"
    grep -F "[$check]" "$log" | grep -F "$file" | head -n 5 || true
  done <<<"$new"
  echo
  echo "fix the findings or add deliberate suppressions to $baseline"
  exit 1
fi

if [ "$stale_failed" = 1 ]; then
  exit 1
fi

echo "clang-tidy gate clean ($(printf '%s\n' "$found" | sed '/^$/d' | wc -l) baselined findings)"
