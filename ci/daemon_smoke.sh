#!/usr/bin/env bash
# Warm-daemon smoke test (ci job: daemon).
#
# Usage: ci/daemon_smoke.sh <build-dir> [store-file]
#
# Boots the verification daemon from examples/coreutils_explore, then proves
# the three properties the persistent cache claims:
#
#  1. Soundness — every RunSignature the daemon returns is bit-identical to
#     an in-process run of the same workload (`--signature` is the reference).
#     Workloads that hit the wall-clock cap (signature starts with CAPPED,
#     e.g. factor) are excluded: where the deadline lands is timing-dependent
#     by construction, so their path counts legitimately differ between runs.
#  2. Warmth — a second client pass over the suite is answered from the
#     daemon's run cache (Stats must show run hits > 0 and zero store rejects).
#  3. Persistence — after a daemon restart over the saved store, a
#     --force-run re-execution of wc answers solver queries from the
#     persisted entries (persist hits > 0), still with the same signature.
#
# The store file is left behind for CI to upload as an artifact.
set -eu -o pipefail

build_dir="${1:?usage: ci/daemon_smoke.sh <build-dir> [store-file]}"
store="${2:-$build_dir/daemon-smoke-store.bin}"
repo_root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo_root"

explore="$build_dir/coreutils_explore"
if [ ! -x "$explore" ]; then
  echo "error: $explore missing — build the project first" >&2
  exit 2
fi

workdir="$(mktemp -d)"
sock="$workdir/daemon.sock"
daemon_pid=""
cleanup() {
  if [ -n "$daemon_pid" ] && kill -0 "$daemon_pid" 2>/dev/null; then
    kill "$daemon_pid" 2>/dev/null || true
    wait "$daemon_pid" 2>/dev/null || true
  fi
  rm -rf "$workdir"
}
trap cleanup EXIT

start_daemon() {
  "$explore" --daemon="$sock" --store="$store" &
  daemon_pid=$!
  # The daemon unlinks any stale socket, then binds; wait for the file.
  for _ in $(seq 1 100); do
    [ -S "$sock" ] && return 0
    kill -0 "$daemon_pid" 2>/dev/null || { echo "error: daemon died on startup" >&2; exit 1; }
    sleep 0.1
  done
  echo "error: daemon socket never appeared at $sock" >&2
  exit 1
}

stop_daemon() {
  "$explore" --connect="$sock" --shutdown >/dev/null
  wait "$daemon_pid"
  daemon_pid=""
}

rm -f "$store"

# "signature <name> exhausted ..." lines are deterministic; "CAPPED" ones
# stopped on the wall clock and are compared only by name.
stable_sigs() { awk '$1 == "signature" && $3 == "exhausted"' "$1" | sort; }

echo "== reference: in-process signatures over the suite =="
"$explore" --signature >"$workdir/reference.raw"
grep -c '^signature ' "$workdir/reference.raw" >"$workdir/total" || true
total="$(cat "$workdir/total")"
stable_sigs "$workdir/reference.raw" >"$workdir/reference.txt"
ref_count="$(wc -l <"$workdir/reference.txt")"
echo "   $total workloads, $ref_count with deterministic (exhausted) signatures"

echo "== pass 1: cold client through the daemon =="
start_daemon
"$explore" --connect="$sock" >"$workdir/pass1.txt"
stable_sigs "$workdir/pass1.txt" >"$workdir/pass1.sigs"

echo "== pass 2: warm client (same daemon, expects run-cache hits) =="
"$explore" --connect="$sock" --stats >"$workdir/pass2.txt"
stable_sigs "$workdir/pass2.txt" >"$workdir/pass2.sigs"

echo "== soundness: daemon signatures vs in-process reference =="
for pass in pass1 pass2; do
  if ! diff -u "$workdir/reference.txt" "$workdir/$pass.sigs"; then
    echo "FAIL: $pass daemon signatures differ from the in-process reference" >&2
    exit 1
  fi
done
echo "   all $ref_count exhausted-workload signatures bit-identical in both passes"

echo "== warmth: second pass must be answered from the run cache =="
run_hits="$(awk -F'|' '/run hits/ {gsub(/ /,"",$3); print $3}' "$workdir/pass2.txt")"
store_rejects="$(awk -F'|' '/store rejects/ {gsub(/ /,"",$3); print $3}' "$workdir/pass2.txt")"
if [ -z "$run_hits" ] || [ "$run_hits" -lt "$total" ]; then
  echo "FAIL: expected >= $total run-cache hits on the warm pass, got '${run_hits:-none}'" >&2
  exit 1
fi
if [ "${store_rejects:-0}" != 0 ]; then
  echo "FAIL: daemon rejected $store_rejects persisted entries" >&2
  exit 1
fi
echo "   $run_hits run-cache hits, 0 store rejects"

echo "== persistence: restart over the saved store, force re-execution =="
stop_daemon
[ -f "$store" ] || { echo "FAIL: daemon did not save its store to $store" >&2; exit 1; }
start_daemon
"$explore" --connect="$sock" --force-run wc >"$workdir/warm.txt"
grep '^signature wc ' "$workdir/warm.txt" >"$workdir/warm.sig"
if ! grep -qxF "$(cat "$workdir/warm.sig")" "$workdir/reference.txt"; then
  echo "FAIL: post-restart forced run of wc changed its signature" >&2
  diff -u <(grep '^signature wc ' "$workdir/reference.txt") "$workdir/warm.sig" >&2 || true
  exit 1
fi
# Table row: | wc | executed | yes | paths | bugs | hits/queries | ... — the
# persisted solver cache must answer at least one query on the forced rerun.
persist_hits="$(awk -F'|' '$2 ~ /^ wc / {gsub(/ /,"",$7); split($7, a, "/"); print a[1]}' "$workdir/warm.txt")"
if [ -z "$persist_hits" ] || [ "$persist_hits" -le 0 ]; then
  echo "FAIL: forced warm rerun of wc took ${persist_hits:-no} persisted solver hits" >&2
  cat "$workdir/warm.txt" >&2
  exit 1
fi
echo "   forced wc rerun: $persist_hits solver queries answered from the persisted store"

stop_daemon
echo "daemon smoke test passed (store artifact: $store)"
